"""Setup shim.

The execution environment has no network and no ``wheel`` package, so PEP
517 editable installs (which require ``bdist_wheel``) are unavailable;
this file enables the legacy ``pip install -e .`` path. All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
