"""Exception hierarchy for the repro package.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch library failures without catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every error raised by the repro package."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ProcessKilled(ReproError):
    """A simulated process was forcibly terminated."""


class ConfigurationError(ReproError):
    """A Damaris XML configuration file is invalid or incomplete."""


class ShmAllocationError(ReproError):
    """The shared-memory segment cannot satisfy an allocation request."""


class UnknownVariableError(ConfigurationError):
    """A client wrote a variable that the configuration does not declare."""


class UnknownEventError(ConfigurationError):
    """A client signalled an event that the configuration does not declare."""


class UnknownLayoutError(ConfigurationError):
    """A variable references a layout that the configuration does not declare."""


class PluginError(ReproError):
    """A user plugin failed to load or raised during execution."""


class StorageError(ReproError):
    """A simulated file-system operation failed."""


class FileExistsInFSError(StorageError):
    """Attempted to create a file that already exists (without overwrite)."""


class FileNotFoundInFSError(StorageError):
    """Attempted to open a file that does not exist."""


class MPIError(ReproError):
    """A simulated MPI operation was used incorrectly."""


class FormatError(ReproError):
    """An SHDF container or layout descriptor is malformed."""


class RuntimeShutdownError(ReproError):
    """The real (threaded) Damaris runtime was used after shutdown."""
