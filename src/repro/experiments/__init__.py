"""Experiment harness: platforms, measurement, figure drivers, reporting.

- :mod:`repro.experiments.platforms` — calibrated presets of the paper's
  three platforms (Kraken/Lustre, Grid'5000/PVFS, BluePrint/GPFS);
- :mod:`repro.experiments.harness` — run one (platform, strategy,
  workload) configuration and measure what the paper measures;
- :mod:`repro.experiments.figures` — one driver per table/figure of the
  evaluation section;
- :mod:`repro.experiments.executor` — process-parallel sweep fan-out
  (``REPRO_PARALLEL=N``) with bit-identical, seeded results;
- :mod:`repro.experiments.report` — paper-vs-measured table rendering.
"""

from repro.experiments.executor import (
    SweepTask,
    default_parallelism,
    run_sweep,
)
from repro.experiments.harness import ExperimentResult, run_experiment
from repro.experiments.platforms import (
    PlatformPreset,
    blueprint_preset,
    grid5000_preset,
    kraken_preset,
)

__all__ = [
    "ExperimentResult",
    "PlatformPreset",
    "SweepTask",
    "blueprint_preset",
    "default_parallelism",
    "grid5000_preset",
    "kraken_preset",
    "run_experiment",
    "run_sweep",
]
