"""Rendering experiment results as aligned text tables.

Every figure driver returns a :class:`FigureReport` (rows of dicts plus
the paper's reference values); ``render()`` produces the text that the
benches print and that EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["FigureReport", "render_table"]


def _format(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def render_table(rows: Sequence[Dict[str, Any]],
                 columns: Optional[Sequence[str]] = None) -> str:
    """Align rows of dicts into a text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    table = [[_format(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(line[i]) for line in table))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(w) for col, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.rjust(w) for cell, w in zip(line, widths))
        for line in table
    )
    return f"{header}\n{rule}\n{body}"


@dataclass
class FigureReport:
    """One reproduced table/figure: measured rows + paper reference."""

    figure: str
    title: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    paper_claims: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        parts = [f"== {self.figure}: {self.title} ==", ""]
        parts.append(render_table(self.rows))
        if self.paper_claims:
            parts.append("")
            parts.append("Paper reference:")
            parts.extend(f"  - {claim}" for claim in self.paper_claims)
        if self.notes:
            parts.append("")
            parts.append("Notes:")
            parts.extend(f"  - {note}" for note in self.notes)
        return "\n".join(parts)

    def add_note(self, note: str) -> None:
        self.notes.append(note)
