"""Per-figure experiment drivers.

Each function reproduces one table/figure of the paper's evaluation
(Section IV) from the calibrated platform presets and returns a
:class:`~repro.experiments.report.FigureReport`. The benches in
``benchmarks/`` call these and print the rendered tables; EXPERIMENTS.md
records paper-vs-measured.

``REPRO_FAST=1`` in the environment trims the sweeps (smaller scales,
fewer phases) for quick runs; the full sweeps match the paper.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.model import breakeven_io_fraction, dedication_benefit
from repro.analysis.scalability import scalability_factor
from repro.analysis.stats import jitter_stats
from repro.apps.workload import CM1Workload
from repro.core.server import DamarisOptions
from repro.experiments.harness import ExperimentResult, run_experiment
from repro.experiments.platforms import (
    PlatformPreset,
    blueprint_preset,
    grid5000_preset,
    kraken_preset,
)
from repro.experiments.report import FigureReport
from repro.formats.compression import GZIP16_MODEL, GZIP_MODEL
from repro.strategies import (
    CollectiveIOStrategy,
    DamarisStrategy,
    FilePerProcessStrategy,
    NoIOStrategy,
)
from repro.units import GB, MB, MiB

__all__ = [
    "fig2_write_phase_kraken",
    "fig3_blueprint_volume",
    "fig4_scalability_kraken",
    "fig5_spare_time",
    "fig6_throughput_kraken",
    "table1_grid5000",
    "fig7_spare_strategies",
    "model_breakeven",
    "fast_mode",
    "kraken_scales",
]


def fast_mode() -> bool:
    return os.environ.get("REPRO_FAST", "") not in ("", "0", "false")


def kraken_scales() -> Tuple[int, ...]:
    """Core counts for the Kraken sweeps (paper: 576 → 9216)."""
    if fast_mode():
        return (576, 1152)
    return (576, 2304, 9216)


def _phases() -> int:
    return 1 if fast_mode() else 2


def _collective_for(preset: PlatformPreset,
                    stripe_size: Optional[int] = None
                    ) -> CollectiveIOStrategy:
    return CollectiveIOStrategy(
        mode=preset.collective_mode,
        stripe_count=preset.collective_stripe_count,
        stripe_size=stripe_size)


def _run(preset: PlatformPreset, ncores: int, strategy,
         workload: Optional[CM1Workload] = None, seed: int = 42,
         write_phases: Optional[int] = None, **kwargs) -> ExperimentResult:
    machine, fs, default_workload = preset.build(ncores, seed=seed)
    return run_experiment(
        machine, fs, workload if workload is not None else default_workload,
        strategy, write_phases=write_phases if write_phases is not None
        else _phases(), **kwargs)


# ---------------------------------------------------------------------- #
# Fig. 2 — write-phase duration on Kraken
# ---------------------------------------------------------------------- #
def fig2_write_phase_kraken(scales: Optional[Sequence[int]] = None,
                            seed: int = 42) -> FigureReport:
    """Average and maximum duration of a write phase, seen by the
    simulation, for the three approaches on Kraken."""
    report = FigureReport(
        figure="Figure 2",
        title="Write-phase duration on Kraken (simulation's view)",
        paper_claims=[
            "Collective-I/O reaches ~481 s average / ~800 s max at 9216 "
            "cores (~70 % of run time)",
            "File-per-process is faster but unpredictable (spread ~±17 s)",
            "Damaris cuts the write phase to ~0.2 s (±~0.1 s), "
            "independent of scale",
            "32 MB Lustre stripes double the collective write time",
        ])
    scales = tuple(scales) if scales is not None else kraken_scales()
    preset = kraken_preset()
    for ncores in scales:
        for strategy_factory in (
            lambda: FilePerProcessStrategy(),
            lambda: _collective_for(preset),
            lambda: DamarisStrategy(),
        ):
            strategy = strategy_factory()
            result = _run(preset, ncores, strategy, seed=seed)
            stats = jitter_stats([p.duration for p in result.phases])
            report.rows.append({
                "strategy": strategy.name,
                "cores": ncores,
                "avg_s": stats.mean,
                "max_s": stats.maximum,
                "spread_s": stats.spread,
            })
    # The stripe-size misconfiguration experiment, at the largest scale.
    big = scales[-1]
    oversized = _run(preset, big, _collective_for(preset,
                                                  stripe_size=32 * MiB),
                     seed=seed, write_phases=1)
    report.rows.append({
        "strategy": "collective-io (32MB stripes)",
        "cores": big,
        "avg_s": oversized.avg_write_phase,
        "max_s": oversized.max_write_phase,
        "spread_s": 0.0,
    })
    return report


# ---------------------------------------------------------------------- #
# Fig. 3 — write-phase duration vs data volume on BluePrint
# ---------------------------------------------------------------------- #
def fig3_blueprint_volume(ncores: int = 1024,
                          variable_counts: Optional[Sequence[int]] = None,
                          seed: int = 42) -> FigureReport:
    """FPP vs Damaris on BluePrint (1024 cores) as the per-phase output
    volume grows (variables enabled/disabled; gzip enabled for FPP)."""
    report = FigureReport(
        figure="Figure 3",
        title="Write-phase duration vs data volume on BluePrint "
              "(1024 cores, GPFS)",
        paper_claims=[
            "File-per-process variability grows with the output volume",
            "Damaris stays at ~0.2 s (±0.1 s) for the largest volume",
        ])
    if variable_counts is None:
        variable_counts = (2, 4, 6) if not fast_mode() else (2, 6)
    if fast_mode():
        ncores = min(ncores, 256)
    preset = blueprint_preset()
    for nvars in variable_counts:
        workload = CM1Workload.blueprint(nvariables=nvars)
        volume = workload.total_bytes(
            ncores - ncores // preset.cores_per_node)
        fpp = _run(preset, ncores, FilePerProcessStrategy(compress=True),
                   workload=workload, seed=seed, compression=GZIP_MODEL)
        damaris = _run(preset, ncores, DamarisStrategy(
            compress_on_server=True,
            options=DamarisOptions(compression=GZIP_MODEL)),
            workload=workload, seed=seed)
        for label, result in (("file-per-process", fpp),
                              ("damaris", damaris)):
            stats = jitter_stats([p.duration for p in result.phases])
            report.rows.append({
                "strategy": label,
                "volume_GB": volume / GB,
                "avg_s": stats.mean,
                "max_s": stats.maximum,
                "min_s": stats.minimum,
            })
    return report


# ---------------------------------------------------------------------- #
# Fig. 4 — scalability factor and run time on Kraken
# ---------------------------------------------------------------------- #
def fig4_scalability_kraken(scales: Optional[Sequence[int]] = None,
                            seed: int = 42) -> FigureReport:
    """S = N·C576/T_N and the run time of 50 iterations + 1 write phase."""
    report = FigureReport(
        figure="Figure 4",
        title="Scalability factor (a) and run time (b) on Kraken, "
              "50 iterations + 1 write phase",
        paper_claims=[
            "Damaris scales nearly perfectly where the others fail",
            "At 9216 cores: execution time cut by ~35 % vs "
            "file-per-process, divided by ~3.5 vs collective-I/O",
        ])
    scales = tuple(scales) if scales is not None else kraken_scales()
    preset = kraken_preset()
    baseline_cores = scales[0]
    baseline = _run(preset, baseline_cores, NoIOStrategy(), seed=seed,
                    write_phases=1)
    c_base = baseline.run_time
    report.add_note(
        f"baseline C{baseline_cores} (no I/O, no dedicated core): "
        f"{c_base:.1f} s")
    for ncores in scales:
        for strategy_factory in (
            lambda: FilePerProcessStrategy(),
            lambda: _collective_for(preset),
            lambda: DamarisStrategy(),
        ):
            strategy = strategy_factory()
            result = _run(preset, ncores, strategy, seed=seed,
                          write_phases=1)
            factor = scalability_factor(ncores, c_base, result.run_time)
            report.rows.append({
                "strategy": strategy.name,
                "cores": ncores,
                "run_time_s": result.run_time,
                "scalability": factor,
                "perfect": float(ncores),
            })
    return report


# ---------------------------------------------------------------------- #
# Fig. 5 — dedicated-core write time vs spare time
# ---------------------------------------------------------------------- #
def fig5_spare_time(scales: Optional[Sequence[int]] = None,
                    variable_counts: Optional[Sequence[int]] = None,
                    seed: int = 42) -> FigureReport:
    """(a) Kraken: dedicated-core write time per iteration vs scale;
    (b) BluePrint: vs output volume."""
    report = FigureReport(
        figure="Figure 5",
        title="Dedicated-core write time and spare time per iteration",
        paper_claims=[
            "Write time grows with scale on Kraken (file-system "
            "contention) but dedicated cores stay 75-99 % idle",
            "On BluePrint write time grows with the output volume",
        ])
    preset = kraken_preset()
    scales = tuple(scales) if scales is not None else kraken_scales()
    for ncores in scales:
        result = _run(preset, ncores, DamarisStrategy(), seed=seed)
        write = float(np.mean(result.dedicated_write_times)) \
            if result.dedicated_write_times else 0.0
        report.rows.append({
            "platform": "kraken",
            "cores": ncores,
            "volume_GB": result.bytes_per_phase / GB,
            "write_s": write,
            "spare_fraction": result.spare_fraction,
        })
    if variable_counts is None:
        variable_counts = (2, 4, 6) if not fast_mode() else (2, 6)
    bp = blueprint_preset()
    bp_cores = 256 if fast_mode() else 1024
    for nvars in variable_counts:
        workload = CM1Workload.blueprint(nvariables=nvars)
        result = _run(bp, bp_cores, DamarisStrategy(), workload=workload,
                      seed=seed)
        write = float(np.mean(result.dedicated_write_times)) \
            if result.dedicated_write_times else 0.0
        report.rows.append({
            "platform": "blueprint",
            "cores": bp_cores,
            "volume_GB": result.bytes_per_phase / GB,
            "write_s": write,
            "spare_fraction": result.spare_fraction,
        })
    return report


# ---------------------------------------------------------------------- #
# Fig. 6 — aggregate throughput on Kraken
# ---------------------------------------------------------------------- #
def fig6_throughput_kraken(scales: Optional[Sequence[int]] = None,
                           seed: int = 42) -> FigureReport:
    report = FigureReport(
        figure="Figure 6",
        title="Average aggregate throughput on Kraken",
        paper_claims=[
            "Damaris ~6x over file-per-process and ~15x over "
            "collective-I/O at 9216 cores",
        ])
    scales = tuple(scales) if scales is not None else kraken_scales()
    preset = kraken_preset()
    for ncores in scales:
        throughputs = {}
        for strategy_factory in (
            lambda: FilePerProcessStrategy(),
            lambda: _collective_for(preset),
            lambda: DamarisStrategy(),
        ):
            strategy = strategy_factory()
            result = _run(preset, ncores, strategy, seed=seed)
            throughputs[strategy.name] = result.aggregate_throughput
            report.rows.append({
                "strategy": strategy.name,
                "cores": ncores,
                "throughput_GB_s": result.aggregate_throughput / GB,
            })
        damaris = throughputs.get("damaris", 0.0)
        fpp = throughputs.get("file-per-process", 1.0)
        coll = throughputs.get("collective-io", 1.0)
        report.add_note(
            f"{ncores} cores: damaris/fpp = {damaris / fpp:.1f}x, "
            f"damaris/collective = {damaris / coll:.1f}x")
    return report


# ---------------------------------------------------------------------- #
# Table I — aggregate throughput on Grid'5000 (672 cores)
# ---------------------------------------------------------------------- #
def table1_grid5000(ncores: int = 672, seed: int = 42) -> FigureReport:
    report = FigureReport(
        figure="Table I",
        title="Average aggregate throughput on Grid'5000 (CM1, 672 cores)",
        paper_claims=[
            "File-per-process 695 MB/s, Collective-I/O 636 MB/s, "
            "Damaris 4.32 GB/s (>6x)",
            "FPP: ~4.22 % of run time in I/O; fastest processes <1 s, "
            "slowest >25 s",
        ])
    if fast_mode():
        ncores = 240
    preset = grid5000_preset()
    for strategy_factory in (
        lambda: FilePerProcessStrategy(),
        lambda: _collective_for(preset),
        lambda: DamarisStrategy(),
    ):
        strategy = strategy_factory()
        result = _run(preset, ncores, strategy, seed=seed)
        report.rows.append({
            "strategy": strategy.name,
            "cores": ncores,
            "throughput_MB_s": result.aggregate_throughput / MB,
            "write_phase_s": result.avg_write_phase,
        })
        if strategy.name == "file-per-process":
            ranks = np.concatenate([p.rank_times for p in result.phases])
            report.add_note(
                f"FPP: I/O fraction {100 * result.io_fraction:.2f} %, "
                f"fastest rank {ranks.min():.2f} s, slowest rank "
                f"{ranks.max():.2f} s")
    return report


# ---------------------------------------------------------------------- #
# Fig. 7 — leveraging spare time: compression + transfer scheduling
# ---------------------------------------------------------------------- #
def fig7_spare_strategies(kraken_cores: int = 2304,
                          grid5000_cores: int = 912,
                          seed: int = 42) -> FigureReport:
    report = FigureReport(
        figure="Figure 7",
        title="Dedicated-core write time with compression and transfer "
              "scheduling",
        paper_claims=[
            "Scheduling lowers the dedicated-core write time on both "
            "platforms (13.1 GB/s vs 9.7 GB/s at 2304 cores on Kraken)",
            "Compression adds dedicated-core overhead on Kraken "
            "(storage-vs-spare-time tradeoff)",
        ],
        notes=[
            "In the model the compression tradeoff appears on whichever "
            "platform is CPU-bound relative to its file system (here "
            "Grid'5000); on the contention-bound platform the smaller "
            "output can even win. Same tradeoff, platform-dependent sign.",
        ])
    if fast_mode():
        kraken_cores, grid5000_cores = 576, 240
    configs = [
        ("plain", dict()),
        ("scheduler", dict(options=DamarisOptions(use_scheduler=True))),
        ("gzip", dict(compress_on_server=True,
                      options=DamarisOptions(compression=GZIP_MODEL))),
        ("gzip+sched", dict(compress_on_server=True,
                            options=DamarisOptions(
                                compression=GZIP_MODEL,
                                use_scheduler=True))),
    ]
    for platform, preset, ncores in (
        ("kraken", kraken_preset(), kraken_cores),
        ("grid5000", grid5000_preset(), grid5000_cores),
    ):
        for label, kwargs in configs:
            result = _run(preset, ncores, DamarisStrategy(**kwargs),
                          seed=seed,
                          write_phases=max(2, _phases()))
            write = float(np.mean(result.dedicated_write_times)) \
                if result.dedicated_write_times else 0.0
            report.rows.append({
                "platform": platform,
                "cores": ncores,
                "variant": label,
                "write_s": write,
                "throughput_GB_s": result.aggregate_throughput / GB,
            })
    return report


# ---------------------------------------------------------------------- #
# Section V-A — the breakeven model
# ---------------------------------------------------------------------- #
def model_breakeven(core_counts: Sequence[int] = (4, 8, 12, 16, 24, 32, 48),
                    io_percent: float = 5.0) -> FigureReport:
    report = FigureReport(
        figure="Section V-A",
        title="When does dedicating one core pay off? "
              "(breakeven I/O fraction p = 100/(N-1))",
        paper_claims=[
            "p = 4.35 % for N = 24 — below the commonly-admitted 5 % "
            "I/O budget",
        ])
    for n in core_counts:
        breakeven = breakeven_io_fraction(n)
        benefit = dedication_benefit(n, compute_seconds=100.0,
                                     write_seconds=io_percent)
        report.rows.append({
            "cores_per_node": n,
            "breakeven_percent": breakeven,
            "pays_off_at_5pct": benefit.pays_off,
            "predicted_speedup": benefit.speedup,
        })
    return report
