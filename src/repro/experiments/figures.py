"""Per-figure experiment drivers.

Each function reproduces one table/figure of the paper's evaluation
(Section IV) from the calibrated platform presets and returns a
:class:`~repro.experiments.report.FigureReport`. The benches in
``benchmarks/`` call these and print the rendered tables; EXPERIMENTS.md
records paper-vs-measured.

``REPRO_FAST=1`` in the environment trims the sweeps (smaller scales,
fewer phases) for quick runs; the full sweeps match the paper.

Every driver expresses its sweep as a list of picklable *spec* dicts
(platform preset, core count, strategy description, seed) executed
through :func:`repro.experiments.executor.run_sweep`, so setting
``REPRO_PARALLEL=N`` fans independent configurations out over ``N``
worker processes with bit-identical results: each spec builds its own
simulator and machine from its explicit seed, and ``run_sweep`` returns
results in task order.

Because every spec is pure data and every run is seeded, the sweeps are
also memoizable: with ``REPRO_CACHE=1`` (or ``--cache`` on the figure
CLI) ``run_sweep`` serves previously computed points from the
content-addressed store in ``REPRO_CACHE_DIR`` and only computes what
changed — editing one platform preset re-runs that preset's points and
nothing else, since the store keys every result by (spec, model source
fingerprint). Warm results are bit-identical to cold ones.

``REPRO_SOLVER=global`` forces the reference whole-network bandwidth
solver inside every sweep point (see
:mod:`repro.des.bandwidth`) — slower, for debugging the default
component-partitioned solver; the mode is folded into cache keys.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.model import breakeven_io_fraction, dedication_benefit
from repro.analysis.scalability import scalability_factor
from repro.analysis.stats import jitter_stats
from repro.apps.workload import CM1Workload
from repro.experiments.executor import SweepTask, run_sweep
from repro.experiments.harness import ExperimentResult
from repro.experiments.platforms import blueprint_preset
from repro.experiments.report import FigureReport
from repro.experiments.specs import run_spec
from repro.units import GB, MB, MiB

__all__ = [
    "fig2_write_phase_kraken",
    "fig3_blueprint_volume",
    "fig4_scalability_kraken",
    "fig5_spare_time",
    "fig6_throughput_kraken",
    "table1_grid5000",
    "fig7_spare_strategies",
    "fig_fault_degradation",
    "model_breakeven",
    "default_fault_schedule",
    "fast_mode",
    "kraken_scales",
]


def fast_mode() -> bool:
    return os.environ.get("REPRO_FAST", "") not in ("", "0", "false")


def kraken_scales() -> Tuple[int, ...]:
    """Core counts for the Kraken sweeps (paper: 576 → 9216)."""
    if fast_mode():
        return (576, 1152)
    return (576, 2304, 9216)


def _phases() -> int:
    return 1 if fast_mode() else 2


# ---------------------------------------------------------------------- #
# Picklable sweep specs
# ---------------------------------------------------------------------- #
# A spec fully describes one experiment run as plain data so it can cross
# a process boundary: {"preset": ..., "ncores": ..., "strategy": {...},
# "seed": ..., optional "nvariables"/"write_phases"/"compression"}. The
# spec vocabulary (validation, strategy construction, execution) lives in
# :mod:`repro.experiments.specs`, shared with the repro.service job
# server — a spec submitted over the wire runs exactly the code path a
# figure driver fans out locally.


def _sweep(specs: Sequence[Dict[str, Any]],
           prefix: str) -> List[ExperimentResult]:
    tasks = []
    for i, spec in enumerate(specs):
        label = (f"{prefix}/{spec['preset']}/{spec['ncores']}"
                 f"/{spec['strategy']['kind']}")
        # The index keeps trace files apart when a sweep repeats the
        # same (preset, scale, strategy) with different parameters.
        spec = dict(spec, trace_label=f"{label}/{i:02d}")
        tasks.append(SweepTask(run_spec, (spec,), label=label))
    return run_sweep(tasks)


# The three paper strategies, in the order every Kraken sweep uses.
_KRAKEN_TRIO = ({"kind": "fpp"}, {"kind": "collective"}, {"kind": "damaris"})


# ---------------------------------------------------------------------- #
# Fig. 2 — write-phase duration on Kraken
# ---------------------------------------------------------------------- #
def fig2_write_phase_kraken(scales: Optional[Sequence[int]] = None,
                            seed: int = 42) -> FigureReport:
    """Average and maximum duration of a write phase, seen by the
    simulation, for the three approaches on Kraken."""
    report = FigureReport(
        figure="Figure 2",
        title="Write-phase duration on Kraken (simulation's view)",
        paper_claims=[
            "Collective-I/O reaches ~481 s average / ~800 s max at 9216 "
            "cores (~70 % of run time)",
            "File-per-process is faster but unpredictable (spread ~±17 s)",
            "Damaris cuts the write phase to ~0.2 s (±~0.1 s), "
            "independent of scale",
            "32 MB Lustre stripes double the collective write time",
        ])
    scales = tuple(scales) if scales is not None else kraken_scales()
    specs = [
        {"preset": "kraken", "ncores": ncores, "strategy": dict(strategy),
         "seed": seed}
        for ncores in scales
        for strategy in _KRAKEN_TRIO
    ]
    # The stripe-size misconfiguration experiment, at the largest scale.
    big = scales[-1]
    specs.append({"preset": "kraken", "ncores": big,
                  "strategy": {"kind": "collective",
                               "stripe_size": 32 * MiB},
                  "seed": seed, "write_phases": 1})
    results = _sweep(specs, "fig2")
    for result in results[:-1]:
        stats = jitter_stats([p.duration for p in result.phases])
        report.rows.append({
            "strategy": result.strategy,
            "cores": result.ncores,
            "avg_s": stats.mean,
            "max_s": stats.maximum,
            "spread_s": stats.spread,
        })
    oversized = results[-1]
    report.rows.append({
        "strategy": "collective-io (32MB stripes)",
        "cores": big,
        "avg_s": oversized.avg_write_phase,
        "max_s": oversized.max_write_phase,
        "spread_s": 0.0,
    })
    return report


# ---------------------------------------------------------------------- #
# Fig. 3 — write-phase duration vs data volume on BluePrint
# ---------------------------------------------------------------------- #
def fig3_blueprint_volume(ncores: int = 1024,
                          variable_counts: Optional[Sequence[int]] = None,
                          seed: int = 42) -> FigureReport:
    """FPP vs Damaris on BluePrint (1024 cores) as the per-phase output
    volume grows (variables enabled/disabled; gzip enabled for FPP)."""
    report = FigureReport(
        figure="Figure 3",
        title="Write-phase duration vs data volume on BluePrint "
              "(1024 cores, GPFS)",
        paper_claims=[
            "File-per-process variability grows with the output volume",
            "Damaris stays at ~0.2 s (±0.1 s) for the largest volume",
        ])
    if variable_counts is None:
        variable_counts = (2, 4, 6) if not fast_mode() else (2, 6)
    if fast_mode():
        ncores = min(ncores, 256)
    preset = blueprint_preset()
    specs: List[Dict[str, Any]] = []
    for nvars in variable_counts:
        specs.append({"preset": "blueprint", "ncores": ncores,
                      "strategy": {"kind": "fpp", "compress": True},
                      "seed": seed, "nvariables": nvars,
                      "run_compression": "gzip"})
        specs.append({"preset": "blueprint", "ncores": ncores,
                      "strategy": {"kind": "damaris",
                                   "compress_on_server": True,
                                   "compression": "gzip"},
                      "seed": seed, "nvariables": nvars})
    results = _sweep(specs, "fig3")
    for i, nvars in enumerate(variable_counts):
        workload = CM1Workload.blueprint(nvariables=nvars)
        volume = workload.total_bytes(
            ncores - ncores // preset.cores_per_node)
        fpp, damaris = results[2 * i], results[2 * i + 1]
        for label, result in (("file-per-process", fpp),
                              ("damaris", damaris)):
            stats = jitter_stats([p.duration for p in result.phases])
            report.rows.append({
                "strategy": label,
                "volume_GB": volume / GB,
                "avg_s": stats.mean,
                "max_s": stats.maximum,
                "min_s": stats.minimum,
            })
    return report


# ---------------------------------------------------------------------- #
# Fig. 4 — scalability factor and run time on Kraken
# ---------------------------------------------------------------------- #
def fig4_scalability_kraken(scales: Optional[Sequence[int]] = None,
                            seed: int = 42) -> FigureReport:
    """S = N·C576/T_N and the run time of 50 iterations + 1 write phase."""
    report = FigureReport(
        figure="Figure 4",
        title="Scalability factor (a) and run time (b) on Kraken, "
              "50 iterations + 1 write phase",
        paper_claims=[
            "Damaris scales nearly perfectly where the others fail",
            "At 9216 cores: execution time cut by ~35 % vs "
            "file-per-process, divided by ~3.5 vs collective-I/O",
        ])
    scales = tuple(scales) if scales is not None else kraken_scales()
    baseline_cores = scales[0]
    specs: List[Dict[str, Any]] = [
        {"preset": "kraken", "ncores": baseline_cores,
         "strategy": {"kind": "noio"}, "seed": seed, "write_phases": 1},
    ]
    specs.extend(
        {"preset": "kraken", "ncores": ncores, "strategy": dict(strategy),
         "seed": seed, "write_phases": 1}
        for ncores in scales
        for strategy in _KRAKEN_TRIO
    )
    results = _sweep(specs, "fig4")
    c_base = results[0].run_time
    report.add_note(
        f"baseline C{baseline_cores} (no I/O, no dedicated core): "
        f"{c_base:.1f} s")
    for result in results[1:]:
        factor = scalability_factor(result.ncores, c_base, result.run_time)
        report.rows.append({
            "strategy": result.strategy,
            "cores": result.ncores,
            "run_time_s": result.run_time,
            "scalability": factor,
            "perfect": float(result.ncores),
        })
    return report


# ---------------------------------------------------------------------- #
# Fig. 5 — dedicated-core write time vs spare time
# ---------------------------------------------------------------------- #
def fig5_spare_time(scales: Optional[Sequence[int]] = None,
                    variable_counts: Optional[Sequence[int]] = None,
                    seed: int = 42) -> FigureReport:
    """(a) Kraken: dedicated-core write time per iteration vs scale;
    (b) BluePrint: vs output volume."""
    report = FigureReport(
        figure="Figure 5",
        title="Dedicated-core write time and spare time per iteration",
        paper_claims=[
            "Write time grows with scale on Kraken (file-system "
            "contention) but dedicated cores stay 75-99 % idle",
            "On BluePrint write time grows with the output volume",
        ])
    scales = tuple(scales) if scales is not None else kraken_scales()
    if variable_counts is None:
        variable_counts = (2, 4, 6) if not fast_mode() else (2, 6)
    bp_cores = 256 if fast_mode() else 1024
    specs: List[Dict[str, Any]] = [
        {"preset": "kraken", "ncores": ncores,
         "strategy": {"kind": "damaris"}, "seed": seed}
        for ncores in scales
    ]
    specs.extend(
        {"preset": "blueprint", "ncores": bp_cores,
         "strategy": {"kind": "damaris"}, "seed": seed, "nvariables": nvars}
        for nvars in variable_counts
    )
    results = _sweep(specs, "fig5")
    for result in results[:len(scales)]:
        write = float(np.mean(result.dedicated_write_times)) \
            if result.dedicated_write_times else 0.0
        report.rows.append({
            "platform": "kraken",
            "cores": result.ncores,
            "volume_GB": result.bytes_per_phase / GB,
            "write_s": write,
            "spare_fraction": result.spare_fraction,
        })
    for result in results[len(scales):]:
        write = float(np.mean(result.dedicated_write_times)) \
            if result.dedicated_write_times else 0.0
        report.rows.append({
            "platform": "blueprint",
            "cores": bp_cores,
            "volume_GB": result.bytes_per_phase / GB,
            "write_s": write,
            "spare_fraction": result.spare_fraction,
        })
    return report


# ---------------------------------------------------------------------- #
# Fig. 6 — aggregate throughput on Kraken
# ---------------------------------------------------------------------- #
def fig6_throughput_kraken(scales: Optional[Sequence[int]] = None,
                           seed: int = 42) -> FigureReport:
    report = FigureReport(
        figure="Figure 6",
        title="Average aggregate throughput on Kraken",
        paper_claims=[
            "Damaris ~6x over file-per-process and ~15x over "
            "collective-I/O at 9216 cores",
        ])
    scales = tuple(scales) if scales is not None else kraken_scales()
    specs = [
        {"preset": "kraken", "ncores": ncores, "strategy": dict(strategy),
         "seed": seed}
        for ncores in scales
        for strategy in _KRAKEN_TRIO
    ]
    results = _sweep(specs, "fig6")
    per_scale = len(_KRAKEN_TRIO)
    for i, ncores in enumerate(scales):
        throughputs = {}
        for result in results[i * per_scale:(i + 1) * per_scale]:
            throughputs[result.strategy] = result.aggregate_throughput
            report.rows.append({
                "strategy": result.strategy,
                "cores": ncores,
                "throughput_GB_s": result.aggregate_throughput / GB,
            })
        damaris = throughputs.get("damaris", 0.0)
        fpp = throughputs.get("file-per-process", 1.0)
        coll = throughputs.get("collective-io", 1.0)
        report.add_note(
            f"{ncores} cores: damaris/fpp = {damaris / fpp:.1f}x, "
            f"damaris/collective = {damaris / coll:.1f}x")
    return report


# ---------------------------------------------------------------------- #
# Table I — aggregate throughput on Grid'5000 (672 cores)
# ---------------------------------------------------------------------- #
def table1_grid5000(ncores: int = 672, seed: int = 42) -> FigureReport:
    report = FigureReport(
        figure="Table I",
        title="Average aggregate throughput on Grid'5000 (CM1, 672 cores)",
        paper_claims=[
            "File-per-process 695 MB/s, Collective-I/O 636 MB/s, "
            "Damaris 4.32 GB/s (>6x)",
            "FPP: ~4.22 % of run time in I/O; fastest processes <1 s, "
            "slowest >25 s",
        ])
    if fast_mode():
        ncores = 240
    specs = [
        {"preset": "grid5000", "ncores": ncores, "strategy": dict(strategy),
         "seed": seed}
        for strategy in _KRAKEN_TRIO
    ]
    results = _sweep(specs, "table1")
    for result in results:
        report.rows.append({
            "strategy": result.strategy,
            "cores": ncores,
            "throughput_MB_s": result.aggregate_throughput / MB,
            "write_phase_s": result.avg_write_phase,
        })
        if result.strategy == "file-per-process":
            ranks = np.concatenate([p.rank_times for p in result.phases])
            report.add_note(
                f"FPP: I/O fraction {100 * result.io_fraction:.2f} %, "
                f"fastest rank {ranks.min():.2f} s, slowest rank "
                f"{ranks.max():.2f} s")
    return report


# ---------------------------------------------------------------------- #
# Fig. 7 — leveraging spare time: compression + transfer scheduling
# ---------------------------------------------------------------------- #
def fig7_spare_strategies(kraken_cores: int = 2304,
                          grid5000_cores: int = 912,
                          seed: int = 42) -> FigureReport:
    report = FigureReport(
        figure="Figure 7",
        title="Dedicated-core write time with compression and transfer "
              "scheduling",
        paper_claims=[
            "Scheduling lowers the dedicated-core write time on both "
            "platforms (13.1 GB/s vs 9.7 GB/s at 2304 cores on Kraken)",
            "Compression adds dedicated-core overhead on Kraken "
            "(storage-vs-spare-time tradeoff)",
        ],
        notes=[
            "In the model the compression tradeoff appears on whichever "
            "platform is CPU-bound relative to its file system (here "
            "Grid'5000); on the contention-bound platform the smaller "
            "output can even win. Same tradeoff, platform-dependent sign.",
        ])
    if fast_mode():
        kraken_cores, grid5000_cores = 576, 240
    configs = [
        ("plain", {"kind": "damaris"}),
        ("scheduler", {"kind": "damaris", "use_scheduler": True}),
        ("gzip", {"kind": "damaris", "compress_on_server": True,
                  "compression": "gzip"}),
        ("gzip+sched", {"kind": "damaris", "compress_on_server": True,
                        "compression": "gzip", "use_scheduler": True}),
    ]
    platforms = (("kraken", kraken_cores), ("grid5000", grid5000_cores))
    specs = [
        {"preset": platform, "ncores": ncores, "strategy": dict(strategy),
         "seed": seed, "write_phases": max(2, _phases())}
        for platform, ncores in platforms
        for _label, strategy in configs
    ]
    results = _sweep(specs, "fig7")
    i = 0
    for platform, ncores in platforms:
        for label, _strategy in configs:
            result = results[i]
            i += 1
            write = float(np.mean(result.dedicated_write_times)) \
                if result.dedicated_write_times else 0.0
            report.rows.append({
                "platform": platform,
                "cores": ncores,
                "variant": label,
                "write_s": write,
                "throughput_GB_s": result.aggregate_throughput / GB,
            })
    return report


# ---------------------------------------------------------------------- #
# Fault degradation — strategy behaviour under injected faults
# ---------------------------------------------------------------------- #
#: The committed example schedule (mirrored by
#: ``examples/fault_schedule.json``). Fault times are placed against the
#: kraken 48-core seed-42 two-phase timeline — compute ends ≈ 205 s,
#: phase-0 writes run ≈ 206-226 s, phase-1 writes ≈ 405-455 s — so every
#: class intersects real activity instead of idle compute time.
_DEFAULT_FAULTS: Dict[str, Any] = {
    "name": "example",
    "faults": [
        # Node 1 dies mid write phase 0 and reboots 30 s later.
        {"kind": "node_crash", "time": 225.0, "duration": 30.0,
         "nodes": [1], "label": "crash mid phase 0"},
        # Nodes 2 and 3 follow each other down (cascading PSU trip).
        {"kind": "correlated_crash", "time": 225.0, "duration": 30.0,
         "nodes": [2, 3], "stagger": 2.0,
         "label": "cascading double crash"},
        # Node 2 computes 25 % slower through phase 0 (thermal throttle).
        {"kind": "straggler", "time": 0.0, "duration": 60.0,
         "factor": 1.25, "nodes": [2], "label": "thermal throttle"},
        # Every NIC at a tenth of its bandwidth across phase-1 writes.
        {"kind": "nic_degrade", "time": 405.0, "duration": 55.0,
         "factor": 0.1, "label": "fabric degradation"},
        # All storage targets at 10 % capability across phase-0 writes.
        {"kind": "ost_brownout", "time": 200.0, "duration": 60.0,
         "factor": 0.1, "label": "OST brownout"},
        # Metadata service 50x slower across phase-0 creates.
        {"kind": "mds_brownout", "time": 200.0, "duration": 60.0,
         "factor": 50.0, "label": "MDS brownout"},
        # Two extra lock revocations per acquire during phase 0.
        {"kind": "lock_storm", "time": 200.0, "duration": 60.0,
         "extra_revokes": 2, "label": "lock revocation storm"},
    ],
}


def default_fault_schedule():
    """The example schedule the fault-degradation figure runs by default
    (identical to the committed ``examples/fault_schedule.json``)."""
    from repro.faults import FaultSchedule
    return FaultSchedule.from_dict(_DEFAULT_FAULTS)


def fig_fault_degradation(ncores: int = 48, seed: int = 42,
                          schedule=None) -> FigureReport:
    """Strategy degradation curves per fault class.

    For each strategy (the paper trio plus the failure-aware
    ``damaris_failover`` variant) runs one fault-free baseline and one
    run per fault class in the schedule, and reports data loss, recovery
    time and run-time dilation relative to the baseline. The schedule
    comes from ``REPRO_FAULTS=<path>`` (the ``--faults`` CLI flag) or
    falls back to :func:`default_fault_schedule`."""
    from repro.faults import FaultSchedule
    if schedule is None:
        path = os.environ.get("REPRO_FAULTS", "")
        schedule = (FaultSchedule.from_json(path) if path
                    else default_fault_schedule())
    report = FigureReport(
        figure="Fault degradation",
        title=f"Strategy degradation per fault class "
              f"(kraken, {ncores} cores, schedule '{schedule.name}')",
        paper_claims=[
            "Synchronous strategies lose nothing in a crash (no buffered "
            "state) but stall inside the write phase",
            "Plain Damaris trades the hidden write for crash exposure: "
            "buffered-but-unpersisted iterations die with the node",
            "The failover variant replays the surviving shm buffer: "
            "zero loss for a longer recovery",
        ])
    strategies = ({"kind": "fpp"}, {"kind": "collective"},
                  {"kind": "damaris"}, {"kind": "damaris_failover"})
    kinds = schedule.kinds
    specs: List[Dict[str, Any]] = []
    for strategy in strategies:
        specs.append({"preset": "kraken", "ncores": ncores,
                      "strategy": dict(strategy), "seed": seed,
                      "write_phases": 2})
        specs.extend(
            {"preset": "kraken", "ncores": ncores,
             "strategy": dict(strategy), "seed": seed, "write_phases": 2,
             "faults": schedule.of_kind(kind).to_dict()}
            for kind in kinds
        )
    results = _sweep(specs, "faults")
    per = 1 + len(kinds)
    for i in range(len(strategies)):
        base = results[i * per]
        report.rows.append({
            "strategy": base.strategy,
            "fault": "(none)",
            "loss_MB": 0.0,
            "lost_iters": 0,
            "replayed": 0,
            "recovery_s": 0.0,
            "run_x": 1.0,
            "drain_x": 1.0,
        })
        for j, kind in enumerate(kinds):
            result = results[i * per + 1 + j]
            report.rows.append({
                "strategy": result.strategy,
                "fault": kind,
                "loss_MB": result.data_loss_bytes / MB,
                "lost_iters": sum(r["iterations_lost"]
                                  for r in result.fault_records),
                "replayed": sum(r["iterations_replayed"]
                                for r in result.fault_records),
                "recovery_s": result.mean_recovery_time,
                "run_x": result.run_time / base.run_time,
                "drain_x": result.drain_time / base.drain_time,
            })
    report.add_note(
        f"schedule '{schedule.name}': {len(schedule)} faults over "
        f"{len(kinds)} classes; recovery_s is mean injection-to-"
        f"recovered; run_x/drain_x are relative to each strategy's "
        f"fault-free baseline")
    return report


# ---------------------------------------------------------------------- #
# Section V-A — the breakeven model
# ---------------------------------------------------------------------- #
def model_breakeven(core_counts: Sequence[int] = (4, 8, 12, 16, 24, 32, 48),
                    io_percent: float = 5.0) -> FigureReport:
    report = FigureReport(
        figure="Section V-A",
        title="When does dedicating one core pay off? "
              "(breakeven I/O fraction p = 100/(N-1))",
        paper_claims=[
            "p = 4.35 % for N = 24 — below the commonly-admitted 5 % "
            "I/O budget",
        ])
    for n in core_counts:
        breakeven = breakeven_io_fraction(n)
        benefit = dedication_benefit(n, compute_seconds=100.0,
                                     write_seconds=io_percent)
        report.rows.append({
            "cores_per_node": n,
            "breakeven_percent": breakeven,
            "pays_off_at_5pct": benefit.pays_off,
            "predicted_speedup": benefit.speedup,
        })
    return report
