"""Optional Dask backend: the same interface over ``distributed``.

This module imports lazily and degrades loudly: the package installs
with ``pip install -e .[dask]`` and the backend raises a clear
:class:`~repro.experiments.backends.base.BackendError` when
``distributed`` is missing, so the stdlib-only core never grows a hard
dependency. The integration pattern follows the modelops conftest
shape: connect to an external scheduler when an address is given
(``address=`` or ``REPRO_DASK_SCHEDULER``), otherwise spin up a local
``LocalCluster`` sized like the process backend.

Scheduling niceties (straggler speculation, fingerprint handshakes)
are Dask's own business here — the cluster operator already controls
worker provenance — so this backend is deliberately thin: submit one
future per task, stream with ``as_completed``, and let the executor's
index-keyed reassembly provide bit-identity exactly as it does for
every other backend.
"""

from __future__ import annotations

import os
import time
from typing import Any, Iterator, Optional, Sequence, Tuple

from repro.experiments.backends.base import Backend, BackendError, TaskOutcome

__all__ = ["DaskBackend", "dask_available"]


def dask_available() -> bool:
    """True when ``distributed`` is importable (``repro[dask]``)."""
    try:
        import distributed  # noqa: F401
    except Exception:
        return False
    return True


def _run_one(task: Any) -> Tuple[Any, float]:
    start = time.perf_counter()
    value = task.run()
    return value, time.perf_counter() - start


class DaskBackend(Backend):
    """Submit sweep tasks to a Dask ``distributed`` cluster.

    ``address=None`` checks ``REPRO_DASK_SCHEDULER``; with neither set
    a throwaway local cluster is created (and torn down in
    :meth:`close`). ``workers`` sizes the local cluster only.
    """

    name = "dask"

    def __init__(self, address: Optional[str] = None, *,
                 workers: Optional[int] = None) -> None:
        super().__init__()
        if not dask_available():
            raise BackendError(
                "the dask backend needs the 'distributed' package: "
                "install with `pip install -e .[dask]` or pick another "
                "backend (serial/process/remote are stdlib-only)")
        self.address = address or os.environ.get("REPRO_DASK_SCHEDULER") \
            or None
        self.workers = workers
        self._client = None
        self._cluster = None

    @property
    def client(self):
        """The live ``distributed.Client``, created on first use."""
        if self._client is None:
            from distributed import Client, LocalCluster
            if self.address:
                self._client = Client(self.address)
            else:
                self._cluster = LocalCluster(
                    n_workers=self.workers or os.cpu_count() or 1,
                    threads_per_worker=1, processes=True,
                    dashboard_address=None)
                self._client = Client(self._cluster)
        return self._client

    def run_tasks(self, tasks: Sequence[Tuple[int, Any]]
                  ) -> Iterator[TaskOutcome]:
        from distributed import as_completed
        tasks = list(tasks)
        if not tasks:
            return
        client = self.client
        futures = {}
        for index, task in tasks:
            self.counters_.dispatched += 1
            future = client.submit(_run_one, task, pure=False)
            futures[future] = index
        for future in as_completed(list(futures)):
            index = futures[future]
            value, duration = future.result()
            workers = client.who_has(future).get(future.key, ())
            worker = f"dask/{next(iter(workers), '?')}"
            self.counters_.completed += 1
            self.counters_.workers[worker] = \
                self.counters_.workers.get(worker, 0) + 1
            yield TaskOutcome(index, value, worker, duration)

    def close(self) -> None:
        client, self._client = self._client, None
        cluster, self._cluster = self._cluster, None
        if client is not None:
            client.close()
        if cluster is not None:
            cluster.close()
