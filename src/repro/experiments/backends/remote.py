"""The multi-machine sweep backend: a TCP coordinator over sweep workers.

``RemoteBackend`` dials workers launched with ``python -m
repro.tools.sweepworkerctl serve`` (addresses from the constructor or
``REPRO_WORKERS=host:port,host:port``) and speaks the length-prefixed
pickle protocol of :mod:`repro.experiments.backends.protocol`. The
design mirrors the paper's dedicated-core move one level up: sweep
computation is shipped to dedicated worker processes — possibly on
other machines — while the coordinator only schedules, so the figure
driver's process stays responsive however long individual points take.

Scheduling properties:

- **handshake** — a worker is admitted only when its protocol version
  matches and its source-tree fingerprint equals the coordinator's
  (the same :func:`~repro.cache.keys.model_fingerprint` that keys the
  result cache), so a stale checkout can never contribute results that
  the cache would file under the wrong key. The coordinator's run-mode
  environment rides along in the ``welcome`` so both sides resolve
  identical solver/kernel/scheduler modes.
- **dynamic chunking** — batch sizes shrink as the pending queue
  drains (~2 chunks in flight per worker, capped), so slow tails are
  spread instead of parked on one worker.
- **straggler re-dispatch** — when the pending queue is empty and a
  worker goes idle, the longest-in-flight task is speculatively
  duplicated there (at most two replicas; only after the first real
  completion, so a sweep smaller than the worker pool is not doubled).
  The first result wins by task id; the loser is discarded on arrival.
- **crash recovery** — a worker that disconnects mid-batch has its
  unacknowledged tasks requeued for the survivors; a task lost more
  than ``max_task_retries`` times fails the sweep with a typed error,
  as does losing every worker while tasks remain.

Determinism: results are yielded in completion order but tagged with
their task ids; :func:`~repro.experiments.executor.run_sweep`
reassembles by id, so remote sweeps are bit-identical to serial ones —
asserted by the determinism matrix in ``tests/test_remote_backend.py``.

A task that *raises* is not retried: sweep tasks are deterministic by
contract, so the failure is the task's, not the worker's, and it
surfaces immediately as :class:`RemoteTaskError` with the worker-side
traceback.
"""

from __future__ import annotations

import os
import socket
import threading
from collections import deque
from queue import Queue
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.experiments.backends.base import (
    Backend,
    BackendCounters,
    BackendError,
    TaskOutcome,
)
from repro.experiments.backends.protocol import (
    MODE_ENV_KEYS,
    PROTOCOL_VERSION,
    ProtocolError,
    recv_msg,
    send_msg,
)

__all__ = [
    "NoWorkersError",
    "RemoteBackend",
    "RemoteBackendError",
    "RemoteTaskError",
    "TaskRetryLimitError",
    "parse_workers",
]

#: Replica cap for speculative re-dispatch: the original plus one copy.
_MAX_REPLICAS = 2


class RemoteBackendError(BackendError):
    """Base class for remote-dispatch failures."""


class NoWorkersError(RemoteBackendError):
    """No admissible worker remains while tasks are still pending."""


class TaskRetryLimitError(RemoteBackendError):
    """One task was lost to worker crashes more times than allowed."""


class RemoteTaskError(RemoteBackendError):
    """A task raised on a worker; carries the remote traceback."""

    def __init__(self, message: str, worker: str = "",
                 remote_traceback: str = "") -> None:
        super().__init__(message)
        self.worker = worker
        self.remote_traceback = remote_traceback


def parse_workers(raw: Union[str, Sequence[Any], None]
                  ) -> List[Tuple[str, int]]:
    """Worker addresses from ``host:port`` specs.

    Accepts a comma/whitespace-separated string (the ``REPRO_WORKERS``
    format), a sequence of such strings, or ``(host, port)`` pairs. A
    bare ``:port`` or ``port`` means localhost.
    """
    if raw is None:
        return []
    if isinstance(raw, str):
        items: List[Any] = raw.replace(",", " ").split()
    else:
        items = list(raw)
    addrs: List[Tuple[str, int]] = []
    for item in items:
        if isinstance(item, tuple):
            host, port = item
        else:
            text = str(item).strip()
            host, _, port = text.rpartition(":")
            host = host or "127.0.0.1"
        try:
            port = int(port)
        except (TypeError, ValueError):
            raise RemoteBackendError(
                f"bad worker address {item!r}: expected host:port") from None
        if not 0 < port < 65536:
            raise RemoteBackendError(
                f"bad worker address {item!r}: port out of range")
        addrs.append((host, port))
    return addrs


class _Scheduler:
    """Shared dispatch state; every method is thread-safe.

    Task *ids* here are positions in the pending list handed to
    :meth:`RemoteBackend.run_tasks`; the backend maps them back to
    sweep indices. Results and failures flow to the consuming thread
    through ``events`` as ``("result", TaskOutcome)`` /
    ``("abort", exception)`` pairs.
    """

    def __init__(self, ntasks: int, nlinks: int, *,
                 max_task_retries: int = 3, speculate: bool = True,
                 chunk_cap: int = 8) -> None:
        self.ntasks = ntasks
        self.max_task_retries = max_task_retries
        self.speculate = speculate
        self.chunk_cap = max(1, int(chunk_cap))
        self.events: "Queue[Tuple[str, Any]]" = Queue()
        self.counters = BackendCounters()
        self._cond = threading.Condition()
        self._pending = deque(range(ntasks))
        self._inflight: Dict[int, set] = {}
        self._dispatch_seq: Dict[int, int] = {}
        self._seq = 0
        self._retries: Dict[int, int] = {}
        self._done: set = set()
        self._active: set = set()
        self._links_left = nlinks
        self._aborted = False
        self._finished = False

    # -- link lifecycle ------------------------------------------------- #
    def worker_ready(self, worker: str) -> None:
        with self._cond:
            self._active.add(worker)
            self._cond.notify_all()

    def link_dead(self, worker: Optional[str], reason: str,
                  *, rejected: bool = False) -> None:
        """A link ended while work may remain: requeue its tasks.

        ``rejected`` marks handshake rejections (fingerprint/protocol
        mismatch, unreachable host); a live worker dying mid-sweep
        counts as a crash instead.
        """
        with self._cond:
            self._links_left -= 1
            if rejected:
                self.counters.rejected += 1
            if worker is not None and worker in self._active:
                self._active.discard(worker)
                if not self._complete_locked() and not rejected:
                    self.counters.crashed += 1
                self._requeue_locked(worker)
            if self._links_left <= 0 and not self._active \
                    and not self._complete_locked():
                self._abort_locked(NoWorkersError(
                    f"no admissible sweep worker remains "
                    f"({self.ntasks - len(self._done)} task(s) "
                    f"unfinished); last link: {reason}"))
            self._cond.notify_all()

    def link_finished(self) -> None:
        """A link exited normally after the sweep completed."""
        with self._cond:
            self._links_left -= 1
            self._cond.notify_all()

    def _requeue_locked(self, worker: str) -> None:
        for task_id in list(self._inflight):
            replicas = self._inflight[task_id]
            replicas.discard(worker)
            if replicas or task_id in self._done:
                continue
            del self._inflight[task_id]
            retries = self._retries.get(task_id, 0) + 1
            self._retries[task_id] = retries
            if retries > self.max_task_retries:
                self._abort_locked(TaskRetryLimitError(
                    f"task {task_id} was lost to {retries} worker "
                    f"crashes (limit {self.max_task_retries}); giving "
                    f"up on the sweep"))
                return
            self.counters.requeued += 1
            self._pending.appendleft(task_id)

    # -- dispatch ------------------------------------------------------- #
    def next_batch(self, worker: str) -> Optional[List[int]]:
        """Task ids for ``worker``; blocks; ``None`` when all work ended."""
        with self._cond:
            while True:
                if self._aborted or self._finished \
                        or self._complete_locked():
                    return None
                if self._pending:
                    return self._pop_chunk_locked(worker)
                candidate = self._speculation_candidate_locked(worker)
                if candidate is not None:
                    self.counters.speculative += 1
                    self.counters.dispatched += 1
                    self._inflight[candidate].add(worker)
                    return [candidate]
                self._cond.wait()

    def _pop_chunk_locked(self, worker: str) -> List[int]:
        active = max(1, len(self._active))
        size = max(1, min(self.chunk_cap,
                          len(self._pending) // (2 * active)))
        batch = []
        for _ in range(min(size, len(self._pending))):
            task_id = self._pending.popleft()
            self._inflight[task_id] = {worker}
            if task_id not in self._dispatch_seq:
                self._dispatch_seq[task_id] = self._seq
                self._seq += 1
            self.counters.dispatched += 1
            batch.append(task_id)
        return batch

    def _speculation_candidate_locked(self, worker: str) -> Optional[int]:
        if not self.speculate or self.counters.completed == 0:
            return None
        best = None
        for task_id, replicas in self._inflight.items():
            if len(replicas) >= _MAX_REPLICAS or worker in replicas:
                continue
            if best is None or self._dispatch_seq.get(task_id, 0) \
                    < self._dispatch_seq.get(best, 0):
                best = task_id
        return best

    # -- results -------------------------------------------------------- #
    def record_result(self, worker: str, task_id: int, value: Any,
                      duration: float) -> None:
        with self._cond:
            if task_id in self._done:
                # A speculative replica lost the race; drop its result.
                self.counters.discarded += 1
                replicas = self._inflight.get(task_id)
                if replicas is not None:
                    replicas.discard(worker)
                    if not replicas:
                        self._inflight.pop(task_id, None)
                return
            self._done.add(task_id)
            self._inflight.pop(task_id, None)
            self.counters.completed += 1
            self.counters.workers[worker] = \
                self.counters.workers.get(worker, 0) + 1
            self.events.put(("result",
                             TaskOutcome(task_id, value, worker, duration)))
            self._cond.notify_all()

    def record_task_error(self, worker: str, task_id: int, message: str,
                          remote_traceback: str) -> None:
        with self._cond:
            if task_id in self._done:
                self.counters.discarded += 1
                return
            self._abort_locked(RemoteTaskError(
                f"task {task_id} raised on worker {worker}: {message}",
                worker=worker, remote_traceback=remote_traceback))

    # -- teardown ------------------------------------------------------- #
    def finish(self) -> None:
        """Consumer is done (or bailing): wake every waiting link."""
        with self._cond:
            self._finished = True
            self._cond.notify_all()

    def _abort_locked(self, exc: BaseException) -> None:
        if not self._aborted:
            self._aborted = True
            self.events.put(("abort", exc))
        self._cond.notify_all()

    def _complete_locked(self) -> bool:
        return len(self._done) >= self.ntasks


class _WorkerLink(threading.Thread):
    """One worker connection: handshake, then batch/result round-trips."""

    def __init__(self, addr: Tuple[str, int], scheduler: _Scheduler,
                 tasks: Sequence[Any], fingerprint: str,
                 env: Dict[str, str], connect_timeout: float) -> None:
        super().__init__(name=f"sweep-link-{addr[0]}:{addr[1]}",
                         daemon=True)
        self.addr = addr
        self.scheduler = scheduler
        self.tasks = tasks
        self.fingerprint = fingerprint
        self.env = env
        self.connect_timeout = connect_timeout
        self.worker_name: Optional[str] = None
        self._sock: Optional[socket.socket] = None

    def close(self) -> None:
        """Unblock any recv by tearing the socket down (thread-safe)."""
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def run(self) -> None:
        label = f"{self.addr[0]}:{self.addr[1]}"
        try:
            sock = socket.create_connection(self.addr,
                                            timeout=self.connect_timeout)
        except OSError as exc:
            self.scheduler.link_dead(
                None, f"worker {label} unreachable: {exc}", rejected=True)
            return
        self._sock = sock
        try:
            sock.settimeout(None)
            hello = recv_msg(sock)
            if not isinstance(hello, dict) or hello.get("type") != "hello":
                raise ProtocolError(f"worker {label} did not say hello")
            problem = self._handshake_problem(hello)
            if problem is not None:
                try:
                    send_msg(sock, {"type": "reject", "reason": problem})
                except OSError:
                    pass
                self.scheduler.link_dead(
                    None, f"worker {label} rejected: {problem}",
                    rejected=True)
                return
            send_msg(sock, {"type": "welcome", "env": dict(self.env)})
            self.worker_name = \
                f"{hello.get('tag') or 'worker'}@{label}"
            self.scheduler.worker_ready(self.worker_name)
            self._serve(sock)
        except (OSError, ProtocolError) as exc:
            if self.worker_name is None:
                self.scheduler.link_dead(
                    None, f"worker {label} failed handshake: {exc}",
                    rejected=True)
            else:
                self.scheduler.link_dead(
                    self.worker_name, f"worker {self.worker_name} "
                    f"lost: {exc}")
        finally:
            self.close()

    def _handshake_problem(self, hello: Dict[str, Any]) -> Optional[str]:
        if hello.get("protocol") != PROTOCOL_VERSION:
            return (f"protocol {hello.get('protocol')!r} != "
                    f"{PROTOCOL_VERSION}")
        if hello.get("fingerprint") != self.fingerprint:
            return (f"source-tree fingerprint "
                    f"{str(hello.get('fingerprint'))[:12]}... does not "
                    f"match the coordinator's "
                    f"{self.fingerprint[:12]}...; update the worker's "
                    f"checkout (results would be filed under wrong "
                    f"cache keys)")
        return None

    def _serve(self, sock: socket.socket) -> None:
        scheduler = self.scheduler
        assert self.worker_name is not None
        while True:
            batch = scheduler.next_batch(self.worker_name)
            if batch is None:
                try:
                    send_msg(sock, {"type": "bye"})
                except OSError:
                    pass
                scheduler.link_finished()
                return
            send_msg(sock, {"type": "run", "tasks": [
                (task_id, self.tasks[task_id]) for task_id in batch]})
            for _ in batch:
                msg = recv_msg(sock)
                if not isinstance(msg, dict) or msg.get("type") != "result":
                    raise ProtocolError(
                        f"expected a result frame, got "
                        f"{type(msg).__name__}")
                task_id = int(msg["task_id"])
                if msg.get("ok"):
                    scheduler.record_result(
                        self.worker_name, task_id, msg.get("value"),
                        float(msg.get("duration", 0.0)))
                else:
                    scheduler.record_task_error(
                        self.worker_name, task_id,
                        str(msg.get("error", "unknown error")),
                        str(msg.get("traceback", "")))


class RemoteBackend(Backend):
    """Cache-missed sweep tasks over TCP workers.

    ``workers`` is a list of ``host:port`` strings (or the
    ``REPRO_WORKERS`` environment variable when ``None``);
    ``fingerprint`` defaults to this process's
    :func:`~repro.cache.keys.model_fingerprint`. One backend instance
    reconnects to its workers for every :meth:`run_tasks` call, so it
    can serve many sweeps back to back.
    """

    name = "remote"

    def __init__(self, workers: Union[str, Sequence[Any], None] = None, *,
                 fingerprint: Optional[str] = None,
                 max_task_retries: int = 3, speculate: bool = True,
                 connect_timeout: float = 10.0,
                 chunk_cap: int = 8) -> None:
        super().__init__()
        if workers is None:
            workers = os.environ.get("REPRO_WORKERS", "")
        self.addrs = parse_workers(workers)
        if not self.addrs:
            raise RemoteBackendError(
                "the remote backend needs worker addresses: pass "
                "workers=['host:port', ...] or set "
                "REPRO_WORKERS=host:port,host:port (launch workers "
                "with `python -m repro.tools.sweepworkerctl serve`)")
        if fingerprint is None:
            from repro.cache.keys import model_fingerprint
            fingerprint = model_fingerprint()
        self.fingerprint = fingerprint
        self.max_task_retries = max(0, int(max_task_retries))
        self.speculate = bool(speculate)
        self.connect_timeout = float(connect_timeout)
        self.chunk_cap = int(chunk_cap)

    def _mode_env(self) -> Dict[str, str]:
        return {key: os.environ.get(key, "") for key in MODE_ENV_KEYS}

    def run_tasks(self, tasks: Sequence[Tuple[int, Any]]
                  ) -> Iterator[TaskOutcome]:
        tasks = list(tasks)
        if not tasks:
            return
        indices = [index for index, _task in tasks]
        payloads = [task for _index, task in tasks]
        scheduler = _Scheduler(
            len(payloads), len(self.addrs),
            max_task_retries=self.max_task_retries,
            speculate=self.speculate, chunk_cap=self.chunk_cap)
        links = [
            _WorkerLink(addr, scheduler, payloads, self.fingerprint,
                        self._mode_env(), self.connect_timeout)
            for addr in self.addrs]
        for link in links:
            link.start()
        got = 0
        try:
            while got < len(payloads):
                kind, payload = scheduler.events.get()
                if kind == "result":
                    got += 1
                    yield TaskOutcome(indices[payload.index],
                                      payload.value, payload.worker,
                                      payload.duration)
                else:
                    raise payload
        finally:
            scheduler.finish()
            for link in links:
                link.close()
            for link in links:
                link.join(timeout=10.0)
            counters = scheduler.counters
            self.counters_.dispatched += counters.dispatched
            self.counters_.completed += counters.completed
            self.counters_.requeued += counters.requeued
            self.counters_.speculative += counters.speculative
            self.counters_.discarded += counters.discarded
            self.counters_.rejected += counters.rejected
            self.counters_.crashed += counters.crashed
            for worker, count in counters.workers.items():
                self.counters_.workers[worker] = \
                    self.counters_.workers.get(worker, 0) + count
