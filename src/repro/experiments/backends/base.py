"""The executor backend interface.

A *backend* answers one question for
:func:`repro.experiments.executor.run_sweep`: given the cache-missed
tasks of a sweep, produce every task's result. The executor keeps
everything else — cache admission, write-back, progress accounting,
in-order reassembly — so backends only move work:

- :class:`~repro.experiments.backends.local.SerialBackend` runs tasks
  in-process;
- :class:`~repro.experiments.backends.local.ProcessBackend` fans them
  over a ``ProcessPoolExecutor`` on this machine;
- :class:`~repro.experiments.backends.remote.RemoteBackend` dials
  TCP workers (:mod:`repro.tools.sweepworkerctl`) on other machines;
- :class:`~repro.experiments.backends.daskback.DaskBackend` submits to
  a Dask scheduler when ``distributed`` is installed (``repro[dask]``).

The contract of :meth:`Backend.run_tasks`:

- input is a sequence of ``(index, task)`` pairs where ``task`` is a
  :class:`~repro.experiments.executor.SweepTask` (or anything with a
  picklable ``fn``/``args``/``kwargs`` and a ``run()`` method);
- it yields one :class:`TaskOutcome` per input pair, **in completion
  order** — never two outcomes for one index, never a missing index;
- a task that raises propagates the failure to the caller (tasks are
  deterministic by the sweep contract, so retrying a task *error* is
  pointless — only losing a *worker* warrants a retry, and that is the
  remote backend's job);
- ``counters()`` afterwards reports what the dispatch did (requeues,
  speculative duplicates, rejected workers, …) for traces and metrics.

Because the executor reassembles results by index, any backend that
honours this contract is automatically bit-identical to every other:
serial ≡ process ≡ remote is a structural property, not a per-backend
proof obligation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Sequence, Tuple

from repro.errors import ReproError

__all__ = ["Backend", "BackendError", "TaskOutcome"]


class BackendError(ReproError):
    """A sweep backend could not run the tasks it was given."""


@dataclass(frozen=True)
class TaskOutcome:
    """One finished task, as reported by a backend.

    ``index`` is the task's position in the sequence passed to
    :meth:`Backend.run_tasks`; ``worker`` names the execution site
    (``serial/<pid>``, ``pool/<pid>``, a remote worker's tag) and
    ``duration`` is the task's wall time *on that worker* — the
    straggler detector and ``tracereport --by backend`` both feed on it.
    """

    index: int
    value: Any
    worker: str = ""
    duration: float = 0.0


@dataclass
class BackendCounters:
    """Dispatch accounting shared by every backend.

    ``requeued``/``speculative``/``discarded``/``rejected``/``crashed``
    stay zero for local backends; the remote coordinator fills them in.
    """

    dispatched: int = 0
    completed: int = 0
    requeued: int = 0
    speculative: int = 0
    discarded: int = 0
    rejected: int = 0
    crashed: int = 0
    workers: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        return {
            "dispatched": float(self.dispatched),
            "completed": float(self.completed),
            "requeued": float(self.requeued),
            "speculative": float(self.speculative),
            "discarded": float(self.discarded),
            "rejected": float(self.rejected),
            "crashed": float(self.crashed),
            "workers": float(len(self.workers)),
        }


class Backend:
    """Base class: the executor talks to every backend through this."""

    #: Registry name; also the ``SweepProgress.source`` tag (mapped by
    #: the executor: ``serial``/``process`` keep their historical
    #: ``"serial"``/``"pool"`` spellings).
    name = "?"

    def __init__(self) -> None:
        self.counters_ = BackendCounters()

    def run_tasks(self, tasks: Sequence[Tuple[int, Any]]
                  ) -> Iterator[TaskOutcome]:
        """Yield one :class:`TaskOutcome` per task, in completion order."""
        raise NotImplementedError

    def counters(self) -> Dict[str, float]:
        """Flat dispatch counters for traces/metrics (JSON-safe)."""
        return self.counters_.as_dict()

    def close(self) -> None:
        """Release held resources (pools, sockets). Idempotent."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
