"""Length-prefixed pickle framing for the remote sweep backend.

One frame on the wire is::

    MAGIC (4 bytes) | body length (8 bytes, big-endian) | pickled body

The magic guards against a stray client speaking something else to a
worker port; the length prefix makes framing trivial and lets the
receiver reject absurd frames before allocating. Pickle is acceptable
here for the same reason the process-pool executor uses it: both ends
run the *same* ``repro`` source tree — the handshake rejects a worker
whose :func:`repro.cache.keys.model_fingerprint` differs — on hosts the
operator launched personally. A sweep worker port is not a public
endpoint and must not be exposed as one (see the README's distributed
sweeps section).

The handshake, worker side first::

    worker  -> {"type": "hello", "protocol": 1, "fingerprint": ...,
                "pid": ..., "tag": ...}
    coord   -> {"type": "welcome", "env": {...}}      # accepted
    coord   -> {"type": "reject", "reason": "..."}    # close after

``welcome`` carries the coordinator's run-mode environment
(:data:`MODE_ENV_KEYS`) so a worker launched in a vanilla shell still
runs tasks under the exact solver/kernel/scheduler modes the
coordinator's cache keys assume. Then, repeatedly::

    coord   -> {"type": "run", "tasks": [(task_id, SweepTask), ...]}
    worker  -> {"type": "result", "task_id": ..., "ok": True,
                "value": ..., "duration": ...}          # one per task,
                                                        # in finish order
    worker  -> {"type": "result", "task_id": ..., "ok": False,
                "error": "...", "traceback": "..."}

until ``{"type": "bye"}`` (coordinator done; the worker accepts the
next connection) or ``{"type": "shutdown"}`` (the worker process exits;
``sweepworkerctl stop`` sends this).
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Optional

from repro.errors import ReproError

__all__ = [
    "MODE_ENV_KEYS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "recv_msg",
    "send_msg",
]

PROTOCOL_VERSION = 1

_MAGIC = b"RSW1"
_HEADER = struct.Struct(">4sQ")

#: Hard cap on one frame; a sweep task or result that pickles larger
#: than this is a bug, not a workload.
MAX_FRAME_BYTES = 1 << 30

#: Environment knobs the coordinator forwards in ``welcome`` so both
#: sides resolve the same run modes (they are read *inside* task
#: bodies and folded into cache keys). ``REPRO_TRACE`` rides along so a
#: localhost worker drops trace files where the coordinator expects
#: them; on a genuinely remote machine they land on that machine.
MODE_ENV_KEYS = (
    "REPRO_FAST",
    "REPRO_SOLVER",
    "REPRO_KERNEL",
    "REPRO_SCHEDULER",
    "REPRO_SHARDS",
    "REPRO_SHARD_WORKERS",
    "REPRO_TRACE",
)


class ProtocolError(ReproError):
    """The peer sent bytes that are not a well-formed frame."""


def send_msg(sock: socket.socket, obj: Any) -> None:
    """Write one frame; raises ``OSError`` on a dead peer."""
    body = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"refusing to send a {len(body)}-byte frame "
            f"(cap {MAX_FRAME_BYTES})")
    sock.sendall(_HEADER.pack(_MAGIC, len(body)) + body)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """``n`` bytes, ``None`` on clean EOF at offset 0, error mid-frame."""
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({got}/{n} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket) -> Optional[Any]:
    """Read one frame; ``None`` on clean EOF between frames.

    Raises :class:`ProtocolError` on bad magic, an oversized length, a
    truncated frame or an unpicklable body, and ``OSError`` on socket
    failures.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    magic, length = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise ProtocolError(
            f"bad frame magic {magic!r} (expected {_MAGIC!r}); "
            f"is the peer a repro sweep worker?")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds cap {MAX_FRAME_BYTES}")
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed before frame body")
    try:
        return pickle.loads(body)
    except Exception as exc:
        raise ProtocolError(f"cannot unpickle frame body: {exc}") from exc
