"""Pluggable sweep-execution backends.

:func:`repro.experiments.executor.run_sweep` is a cache-aware
scheduler over any :class:`~repro.experiments.backends.base.Backend`:

==========  ============================================  ==========
name        runs tasks on                                 extra deps
==========  ============================================  ==========
serial      the calling process                           —
process     a local ``ProcessPoolExecutor``               —
remote      TCP workers (``repro.tools.sweepworkerctl``)  —
dask        a Dask ``distributed`` cluster                repro[dask]
==========  ============================================  ==========

Pick one by name with :func:`make_backend` (what ``REPRO_BACKEND`` and
the figure CLI's ``--backend`` resolve through) or construct directly.
"""

from __future__ import annotations

import os
from typing import Any, Optional

from repro.experiments.backends.base import (
    Backend,
    BackendCounters,
    BackendError,
    TaskOutcome,
)
from repro.experiments.backends.local import (
    ProcessBackend,
    SerialBackend,
    pool_chunksize,
)
from repro.experiments.backends.remote import (
    NoWorkersError,
    RemoteBackend,
    RemoteBackendError,
    RemoteTaskError,
    TaskRetryLimitError,
    parse_workers,
)

__all__ = [
    "BACKENDS",
    "Backend",
    "BackendCounters",
    "BackendError",
    "NoWorkersError",
    "ProcessBackend",
    "RemoteBackend",
    "RemoteBackendError",
    "RemoteTaskError",
    "SerialBackend",
    "TaskOutcome",
    "TaskRetryLimitError",
    "default_backend_name",
    "make_backend",
    "parse_workers",
    "pool_chunksize",
]

#: Names :func:`make_backend` accepts.
BACKENDS = ("serial", "process", "remote", "dask")


def default_backend_name() -> str:
    """The backend ``run_sweep`` uses when none is passed.

    ``REPRO_BACKEND`` wins; otherwise ``process`` (the historical
    behaviour — ``run_sweep`` itself still degrades a one-worker
    process backend to serial).
    """
    name = os.environ.get("REPRO_BACKEND", "").strip().lower()
    if name:
        if name not in BACKENDS:
            raise BackendError(
                f"REPRO_BACKEND={name!r} is not a backend; pick one of "
                f"{', '.join(BACKENDS)}")
        return name
    return "process"


def make_backend(name: Optional[str] = None, *,
                 workers: Optional[Any] = None) -> Backend:
    """Build a backend by registry name.

    ``name=None`` resolves :func:`default_backend_name`. ``workers``
    means a worker *count* for process/dask and worker *addresses*
    (string or list, ``REPRO_WORKERS`` format) for remote; it is
    ignored by serial.
    """
    if name is None:
        name = default_backend_name()
    name = name.strip().lower()
    if name == "serial":
        return SerialBackend()
    if name == "process":
        count = None if workers is None else int(workers)
        return ProcessBackend(workers=count)
    if name == "remote":
        return RemoteBackend(workers=workers)
    if name == "dask":
        from repro.experiments.backends.daskback import DaskBackend
        count = None
        address = None
        if isinstance(workers, str) and not workers.isdigit():
            address = workers
        elif workers is not None:
            count = int(workers)
        return DaskBackend(address, workers=count)
    raise BackendError(
        f"unknown backend {name!r}; pick one of {', '.join(BACKENDS)}")
