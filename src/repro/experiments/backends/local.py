"""Single-machine backends: in-process serial and process-pool.

:class:`ProcessBackend` replaces the executor's historical
``ProcessPoolExecutor.map`` fan-out with ``submit`` +
``as_completed``: map yields strictly in submission order, so one slow
early task used to stall progress ticks *and* cache write-back of
already-finished later tasks (head-of-line blocking). Streaming chunks
back in true completion order fixes both; the executor's index-keyed
reassembly keeps the returned list bit-identical.

The pool is created lazily and kept until :meth:`ProcessBackend.close`,
so one backend instance can serve many sweeps (the service holds one
for its whole lifetime). :meth:`ProcessBackend.submit_call` exposes the
raw single-call path the :mod:`repro.service` job server schedules
through, and :meth:`ProcessBackend.replace_broken` is the recovery hook
for a SIGKILLed worker (``BrokenProcessPool``): swap in a fresh pool so
the owner keeps serving.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.experiments.backends.base import Backend, TaskOutcome

__all__ = ["ProcessBackend", "SerialBackend", "pool_chunksize"]

#: Upper bound for a computed dispatch chunk: large enough to amortise
#: IPC, small enough to keep workers balanced.
_MAX_CHUNKSIZE = 16


def pool_chunksize(ntasks: int, workers: int) -> int:
    """Tasks per dispatch chunk for the process backend.

    One IPC round-trip per task dominates on large sweeps of fast
    tasks. Aim for ~4 chunks per worker (keeps the pool balanced when
    task durations vary) and cap the chunk at a fixed bound so a huge
    sweep still streams results.
    """
    if workers <= 1:
        return 1
    return max(1, min(_MAX_CHUNKSIZE, ntasks // (workers * 4)))


def _run_chunk(chunk: List[Tuple[int, Any]]
               ) -> Tuple[int, List[Tuple[int, Any, float]]]:
    """Pool-side chunk runner: per-task values with wall durations."""
    out = []
    for index, task in chunk:
        start = time.perf_counter()
        value = task.run()
        out.append((index, value, time.perf_counter() - start))
    return os.getpid(), out


class SerialBackend(Backend):
    """Run every task in the calling process, in submission order."""

    name = "serial"

    def run_tasks(self, tasks: Sequence[Tuple[int, Any]]
                  ) -> Iterator[TaskOutcome]:
        worker = f"serial/{os.getpid()}"
        for index, task in tasks:
            self.counters_.dispatched += 1
            start = time.perf_counter()
            value = task.run()
            duration = time.perf_counter() - start
            self.counters_.completed += 1
            self.counters_.workers[worker] = \
                self.counters_.workers.get(worker, 0) + 1
            yield TaskOutcome(index, value, worker, duration)


class ProcessBackend(Backend):
    """Fan tasks over a local ``ProcessPoolExecutor``.

    ``workers=None`` uses the executor default (CPU count);
    ``chunksize=None`` computes :func:`pool_chunksize` per sweep.
    Results stream back in completion order, chunk by chunk.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None,
                 chunksize: Optional[int] = None) -> None:
        super().__init__()
        self.workers = workers if workers is None else max(1, int(workers))
        self.chunksize = chunksize
        self._pool: Optional[ProcessPoolExecutor] = None

    @property
    def pool(self) -> ProcessPoolExecutor:
        """The live pool, created on first use."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def submit_call(self, fn, *args):
        """Submit one raw call; returns its ``concurrent.futures.Future``.

        The :mod:`repro.service` job server drives its per-spec
        computations through this instead of :meth:`run_tasks` (it
        interleaves specs from many jobs, so batching happens at its
        queue, not here).
        """
        self.counters_.dispatched += 1
        return self.pool.submit(fn, *args)

    def replace_broken(self) -> None:
        """Swap in a fresh pool after ``BrokenProcessPool``.

        The broken pool is shut down without waiting (its workers are
        already dead or dying); counters record the crash.
        """
        self.counters_.crashed += 1
        broken, self._pool = self._pool, None
        if broken is not None:
            broken.shutdown(wait=False)

    def run_tasks(self, tasks: Sequence[Tuple[int, Any]]
                  ) -> Iterator[TaskOutcome]:
        tasks = list(tasks)
        workers = self.workers
        if workers is None:
            workers = os.cpu_count() or 1
        chunksize = self.chunksize
        if chunksize is None:
            chunksize = pool_chunksize(len(tasks), workers)
        chunksize = max(1, int(chunksize))
        chunks = [tasks[at:at + chunksize]
                  for at in range(0, len(tasks), chunksize)]
        self.counters_.dispatched += len(tasks)
        futures = {self.pool.submit(_run_chunk, chunk) for chunk in chunks}
        while futures:
            done, futures = wait(futures, return_when=FIRST_COMPLETED)
            for future in done:
                pid, outcomes = future.result()
                worker = f"pool/{pid}"
                for index, value, duration in outcomes:
                    self.counters_.completed += 1
                    self.counters_.workers[worker] = \
                        self.counters_.workers.get(worker, 0) + 1
                    yield TaskOutcome(index, value, worker, duration)

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
