"""Process-parallel sweep executor for independent experiment configs.

The figure drivers in :mod:`repro.experiments.figures` sweep many
independent ``(ncores, strategy)`` configurations; each one builds its
own :class:`~repro.des.core.Simulator` and machine from an explicit RNG
seed, so they can run in any order — or in separate processes — and
produce bit-identical results. This module provides the fan-out:

- :class:`SweepTask` — a picklable unit of work (top-level function,
  positional args, keyword args, display label);
- :func:`run_sweep` — run a task list serially or over a
  ``ProcessPoolExecutor``, always returning results in task order;
- :func:`default_parallelism` — worker count from the
  ``REPRO_PARALLEL`` environment variable (default ``1`` = serial).

Determinism contract: a task must not read or mutate shared state; all
randomness must come from seeds carried in its arguments. Every task in
``figures.py`` satisfies this by passing the seed down to
``PlatformPreset.build``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = ["SweepTask", "default_parallelism", "run_sweep"]


@dataclass(frozen=True)
class SweepTask:
    """One picklable unit of sweep work.

    ``fn`` must be a module-level callable (pickled by qualified name)
    and its arguments must be picklable; lambdas and closures will fail
    as soon as a parallel run is requested, so they are rejected upfront.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""

    def __post_init__(self) -> None:
        name = getattr(self.fn, "__name__", "")
        qualname = getattr(self.fn, "__qualname__", name)
        if name == "<lambda>" or "<locals>" in qualname:
            raise TypeError(
                f"SweepTask fn must be a module-level function, got "
                f"{qualname!r} (not picklable for process pools)")

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


def default_parallelism() -> int:
    """Worker count requested via ``REPRO_PARALLEL`` (default 1)."""
    raw = os.environ.get("REPRO_PARALLEL", "").strip()
    if not raw:
        return 1
    try:
        workers = int(raw)
    except ValueError:
        return 1
    return max(1, workers)


def _call(task: SweepTask) -> Any:
    return task.run()


def run_sweep(tasks: Iterable[SweepTask],
              parallel: Optional[int] = None) -> List[Any]:
    """Run every task and return their results **in task order**.

    ``parallel=None`` consults :func:`default_parallelism`; ``1`` (or a
    single task) runs serially in-process with no pool overhead. The
    parallel path uses ``ProcessPoolExecutor.map``, which preserves
    submission order, so serial and parallel runs return bit-identical
    result lists for deterministic tasks.
    """
    task_list = list(tasks)
    workers = default_parallelism() if parallel is None else max(1, int(parallel))
    workers = min(workers, len(task_list))
    if workers <= 1:
        return [task.run() for task in task_list]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_call, task_list))
