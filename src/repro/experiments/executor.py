"""Cache-aware sweep scheduler over pluggable execution backends.

The figure drivers in :mod:`repro.experiments.figures` sweep many
independent ``(ncores, strategy)`` configurations; each one builds its
own :class:`~repro.des.core.Simulator` and machine from an explicit RNG
seed, so they can run in any order — or on other processes and
machines — and produce bit-identical results. This module provides the
scheduling:

- :class:`SweepTask` — a picklable unit of work (top-level function,
  positional args, keyword args, display label);
- :func:`run_sweep` — the cache-aware scheduler: tasks whose result is
  already in the content-addressed store (:mod:`repro.cache`) are
  returned instantly and never reach a backend; the remaining misses go
  to a :class:`~repro.experiments.backends.Backend` — in-process
  serial, a local process pool, TCP sweep workers on other machines
  (:mod:`repro.experiments.backends.remote`), or a Dask cluster — and
  are written back as they complete. Results stream in **completion
  order** (one progress tick each, with the task's wall ``duration``
  and ``worker`` origin) but are reassembled **by index**, so every
  backend returns a bit-identical list;
- :func:`default_parallelism` — worker count from the
  ``REPRO_PARALLEL`` environment variable (default ``1`` = serial).

Backend selection: the ``backend`` argument (a registry name or a
:class:`~repro.experiments.backends.Backend` instance) wins, then
``REPRO_BACKEND``, then the historical default — a process pool sized
by ``parallel``/``REPRO_PARALLEL`` that degrades to serial at one
worker. A backend instance passed by the caller is *borrowed* (the
caller keeps pool/socket ownership); anything resolved from a name is
constructed and closed per sweep.

Caching is off unless requested: pass an explicit
:class:`~repro.cache.ResultCache`, or set ``REPRO_CACHE=1`` (location
via ``REPRO_CACHE_DIR``). The normalised run-mode environment
(:func:`env_mode_context`: ``REPRO_FAST``, solver, kernel, scheduler,
shards) is folded into every key because drivers read those knobs
inside the task body; a ``REPRO_TRACE`` run bypasses the cache
entirely, since serving a hit would silently skip the trace files the
task is expected to emit.

Determinism contract: a task must not read or mutate shared state; all
randomness must come from seeds carried in its arguments. Every task in
``figures.py`` satisfies this by passing the seed down to
``PlatformPreset.build``.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.cache.store import ResultCache, cache_from_env
from repro.experiments.backends import (
    Backend,
    BackendError,
    ProcessBackend,
    SerialBackend,
    default_backend_name,
    make_backend,
    pool_chunksize,
)

__all__ = ["SweepProgress", "SweepTask", "default_parallelism",
           "env_mode_context", "pool_chunksize", "resolve_cache_context",
           "run_sweep"]

#: ``Backend.name`` → ``SweepProgress.source``. The local backends keep
#: their historical spellings; new backends tick as their own names.
_SOURCE_NAMES = {"serial": "serial", "process": "pool"}


@dataclass(frozen=True)
class SweepTask:
    """One picklable unit of sweep work.

    ``fn`` must be a module-level callable (pickled by qualified name)
    and its arguments must be picklable; lambdas and closures will fail
    as soon as a parallel run is requested, so they are rejected upfront.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""

    def __post_init__(self) -> None:
        name = getattr(self.fn, "__name__", "")
        qualname = getattr(self.fn, "__qualname__", name)
        if name == "<lambda>" or "<locals>" in qualname:
            raise TypeError(
                f"SweepTask fn must be a module-level function, got "
                f"{qualname!r} (not picklable for process pools)")

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


def default_parallelism() -> int:
    """Worker count requested via ``REPRO_PARALLEL`` (default 1).

    A malformed or non-positive value falls back to serial execution,
    with a warning naming the bad value — silently ignoring a typo like
    ``REPRO_PARALLEL=eight`` would quietly forfeit the whole speedup.
    """
    raw = os.environ.get("REPRO_PARALLEL", "").strip()
    if not raw:
        return 1
    try:
        workers = int(raw)
    except ValueError:
        warnings.warn(
            f"REPRO_PARALLEL={raw!r} is not an integer; running serially",
            RuntimeWarning, stacklevel=2)
        return 1
    if workers < 1:
        warnings.warn(
            f"REPRO_PARALLEL={raw!r} must be a positive worker count; "
            f"running serially", RuntimeWarning, stacklevel=2)
        return 1
    return workers


@dataclass(frozen=True)
class SweepProgress:
    """One progress tick of :func:`run_sweep`.

    ``done`` counts every finished task — cache hits, bypasses and
    backend results alike — through one accounting path, so a consumer
    always observes ``done`` advancing by exactly 1 per event, from 1
    to ``total``, regardless of how the hit/miss partition interleaves
    with parallel completion. ``index`` is the task's position in the
    submitted list; ``source`` says how the result was produced;
    ``worker`` names the execution site (``pool/<pid>``, a remote
    worker tag, empty for cache hits) and ``duration`` is the task's
    wall time on that worker (0.0 for hits).
    """

    done: int
    total: int
    hits: int
    computed: int
    index: int
    source: str  # "cache" | "serial" | "pool" | "remote" | "dask"
    label: str = ""
    worker: str = ""
    duration: float = 0.0


def env_mode_context() -> Dict[str, Any]:
    # The drivers read REPRO_FAST (phase counts), REPRO_SOLVER
    # (bandwidth-share strategy — at the cluster models' nonzero
    # fairness_slack the solvers batch freeze rounds differently),
    # REPRO_KERNEL and REPRO_SCHEDULER *inside* the task body, so two
    # runs with identical task arguments can differ across these modes;
    # fold the normalised values into every cache key. (Kernel and
    # scheduler are bit-identity-tested against their fallbacks, so for
    # them the fold is a guard, not a correctness requirement.)
    from repro.des.bandwidth import _resolve_solver
    from repro.des.kernels import resolve_kernel
    from repro.des.sched import resolve_scheduler
    from repro.des.shards import resolve_shards

    fast = os.environ.get("REPRO_FAST", "") not in ("", "0", "false")
    return {"repro_fast": fast, "repro_solver": _resolve_solver(None),
            "repro_kernel": resolve_kernel(None),
            "repro_scheduler": resolve_scheduler(None),
            # The shard count changes (slack-bounded) sharded-solver
            # results, so it must partition the cache like the solver.
            "repro_shards": resolve_shards(None)}


def resolve_cache_context(store: ResultCache) -> Any:
    """The key context for this run: the store's own, else the env modes.

    A store constructed with an explicit ``context`` keeps it (tests
    pin contexts this way); one without gets the *current*
    :func:`env_mode_context` per call — never written back onto the
    store, so a long-lived cache follows environment-mode changes
    between sweeps instead of freezing the modes of its first use.
    """
    if store.context is not None:
        return store.context
    return env_mode_context()


def _resolve_cache(cache: Union[ResultCache, None, bool],
                   ) -> Optional[ResultCache]:
    if cache is False:
        return None
    if isinstance(cache, ResultCache):
        return cache
    return cache_from_env(context=env_mode_context())


def _resolve_backend(backend: Union[str, Backend, None],
                     workers: int, nmisses: int,
                     chunksize: Optional[int]) -> Tuple[Backend, bool]:
    """``(backend, owned)`` for this sweep's misses.

    Name resolution: an explicit argument, else ``REPRO_BACKEND``, else
    ``process`` — which (historically) degrades to in-process serial
    when one worker or one miss makes a pool pure overhead.
    """
    if isinstance(backend, Backend):
        return backend, False
    name = backend if backend is not None else default_backend_name()
    name = name.strip().lower()
    if name == "process" and min(workers, nmisses) <= 1:
        return SerialBackend(), True
    if name == "process":
        return ProcessBackend(workers=workers, chunksize=chunksize), True
    return make_backend(name), True


def _trace_backend(backend: Backend, trace_dir: str, total: int,
                   hits: int, computed: int) -> None:
    # One "backend" event per sweep, appended to a single jsonl next to
    # the per-config trace files; tracereport --by backend feeds on it.
    from repro.observe.export import to_jsonl
    from repro.observe.tracer import Tracer

    tracer = Tracer()
    tracer.record_event(
        "backend", "sweep", backend.name, time=0.0,
        total=total, hits=hits, computed=computed,
        **backend.counters())
    os.makedirs(trace_dir, exist_ok=True)
    path = os.path.join(trace_dir, "sweep-backend.jsonl")
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(to_jsonl(tracer))


def run_sweep(tasks: Iterable[SweepTask],
              parallel: Optional[int] = None,
              cache: Union[ResultCache, None, bool] = None,
              chunksize: Optional[int] = None,
              progress: Optional[Callable[[SweepProgress], None]] = None,
              backend: Union[str, Backend, None] = None,
              ) -> List[Any]:
    """Run every task and return their results **in task order**.

    ``backend`` picks the execution backend for cache misses: a
    registry name (``serial`` | ``process`` | ``remote`` | ``dask``), a
    ready :class:`~repro.experiments.backends.Backend` instance (the
    caller keeps ownership — useful to reuse one process pool or one
    set of remote connections across sweeps), or ``None`` to consult
    ``REPRO_BACKEND`` and fall back to the historical behaviour:
    ``parallel=None`` consults :func:`default_parallelism`, and one
    worker (or a single miss) runs serially in-process with no pool
    overhead. Cache hits never reach the backend — with a fully warm
    cache no pool is spawned and no connection is dialed.

    ``cache=None`` consults the environment (``REPRO_CACHE`` /
    ``REPRO_CACHE_DIR``); ``cache=False`` forces caching off; an
    explicit :class:`~repro.cache.ResultCache` is used as-is — its
    ``context`` attribute is respected when set and **never mutated**
    (see :func:`resolve_cache_context`). Hits are returned without
    running the task; misses are executed and written back atomically
    *as each one completes* — a slow straggler cannot delay persisting
    its finished peers — then an LRU eviction pass bounds the store
    size. With ``REPRO_TRACE`` set every task is a *bypass*: trace
    files are a side effect a cache hit would skip.

    ``progress`` is called once per finished task, in true completion
    order, with a :class:`SweepProgress` whose ``done`` counter is
    strictly monotonic: cache hits served in the parent and results
    arriving from backends are counted through the same accounting
    path, so totals can never be observed out of order however
    completion interleaves. Results are reassembled by task index, so
    the returned list is bit-identical across backends for
    deterministic tasks.
    """
    task_list = list(tasks)
    total = len(task_list)
    workers = default_parallelism() if parallel is None \
        else max(1, int(parallel))
    workers = min(workers, max(1, total))
    store = _resolve_cache(cache)
    trace_dir = os.environ.get("REPRO_TRACE", "")
    if store is not None and trace_dir:
        store.record_bypass(total)
        store.flush()
        store = None

    done = hits = computed_count = 0

    def _advance(index: int, source: str, label: str,
                 worker: str = "", duration: float = 0.0) -> None:
        # The single accounting path: every finished task — cache hit,
        # bypass or backend result — passes through here exactly once.
        nonlocal done, hits, computed_count
        done += 1
        if source == "cache":
            hits += 1
        else:
            computed_count += 1
        if progress is not None:
            progress(SweepProgress(
                done=done, total=total, hits=hits,
                computed=computed_count, index=index, source=source,
                label=label, worker=worker, duration=duration))

    results: List[Any] = [None] * total
    keys: Dict[int, Optional[str]] = {}
    if store is None:
        pending: List[Tuple[int, SweepTask]] = list(enumerate(task_list))
    else:
        context = resolve_cache_context(store)
        pending = []
        for i, task in enumerate(task_list):
            key = store.key_for(task.fn, task.args, task.kwargs,
                                context=context)
            if key is None:
                store.record_bypass()
                pending.append((i, task))
                continue
            hit, value = store.get(key)
            if hit:
                results[i] = value
                _advance(i, "cache", task.label)
            else:
                keys[i] = key
                pending.append((i, task))

    if pending:
        engine, owned = _resolve_backend(
            backend, workers, len(pending), chunksize)
        source = _SOURCE_NAMES.get(engine.name, engine.name)
        labels = {i: task.label for i, task in pending}
        seen: set = set()
        try:
            for outcome in engine.run_tasks(pending):
                if outcome.index in seen:
                    raise BackendError(
                        f"backend {engine.name!r} returned task "
                        f"{outcome.index} twice")
                seen.add(outcome.index)
                results[outcome.index] = outcome.value
                _advance(outcome.index, source, labels[outcome.index],
                         worker=outcome.worker,
                         duration=outcome.duration)
                if store is not None:
                    key = keys.get(outcome.index)
                    if key is not None:
                        task = task_list[outcome.index]
                        fn = task.fn
                        store.put(key, outcome.value, meta={
                            "fn": f"{getattr(fn, '__module__', '?')}."
                                  f"{getattr(fn, '__qualname__', '?')}",
                            "label": task.label,
                        })
            missing = [i for i, _task in pending if i not in seen]
            if missing:
                raise BackendError(
                    f"backend {engine.name!r} never returned task(s) "
                    f"{missing[:8]}{'...' if len(missing) > 8 else ''}")
            if trace_dir:
                _trace_backend(engine, trace_dir, total, hits,
                               computed_count)
        finally:
            if owned:
                engine.close()

    if store is not None:
        store.flush()
        if store.total_bytes() > store.max_bytes:
            store.evict()
            store.flush()
    return results
