"""Cache-aware, process-parallel sweep executor.

The figure drivers in :mod:`repro.experiments.figures` sweep many
independent ``(ncores, strategy)`` configurations; each one builds its
own :class:`~repro.des.core.Simulator` and machine from an explicit RNG
seed, so they can run in any order — or in separate processes — and
produce bit-identical results. This module provides the fan-out:

- :class:`SweepTask` — a picklable unit of work (top-level function,
  positional args, keyword args, display label);
- :func:`run_sweep` — the cache-aware scheduler: tasks whose result is
  already in the content-addressed store (:mod:`repro.cache`) are
  returned instantly; the remaining misses run serially or over a
  ``ProcessPoolExecutor`` and are written back on completion. Results
  are always reassembled **in task order**, so serial, parallel, cold
  and warm runs return bit-identical lists;
- :func:`default_parallelism` — worker count from the
  ``REPRO_PARALLEL`` environment variable (default ``1`` = serial).

Caching is off unless requested: pass an explicit
:class:`~repro.cache.ResultCache`, or set ``REPRO_CACHE=1`` (location
via ``REPRO_CACHE_DIR``). The normalised ``REPRO_FAST`` flag and
``REPRO_SOLVER`` mode are folded into every key because drivers read
them inside the task body; a
``REPRO_TRACE`` run bypasses the cache entirely, since serving a hit
would silently skip the trace files the task is expected to emit.

Determinism contract: a task must not read or mutate shared state; all
randomness must come from seeds carried in its arguments. Every task in
``figures.py`` satisfies this by passing the seed down to
``PlatformPreset.build``.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.cache.store import ResultCache, cache_from_env

__all__ = ["SweepProgress", "SweepTask", "default_parallelism",
           "env_mode_context", "pool_chunksize", "run_sweep"]

#: Upper bound for the computed ``ProcessPoolExecutor.map`` chunksize:
#: large enough to amortise IPC, small enough to keep workers balanced.
_MAX_CHUNKSIZE = 16


@dataclass(frozen=True)
class SweepTask:
    """One picklable unit of sweep work.

    ``fn`` must be a module-level callable (pickled by qualified name)
    and its arguments must be picklable; lambdas and closures will fail
    as soon as a parallel run is requested, so they are rejected upfront.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""

    def __post_init__(self) -> None:
        name = getattr(self.fn, "__name__", "")
        qualname = getattr(self.fn, "__qualname__", name)
        if name == "<lambda>" or "<locals>" in qualname:
            raise TypeError(
                f"SweepTask fn must be a module-level function, got "
                f"{qualname!r} (not picklable for process pools)")

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


def default_parallelism() -> int:
    """Worker count requested via ``REPRO_PARALLEL`` (default 1).

    A malformed or non-positive value falls back to serial execution,
    with a warning naming the bad value — silently ignoring a typo like
    ``REPRO_PARALLEL=eight`` would quietly forfeit the whole speedup.
    """
    raw = os.environ.get("REPRO_PARALLEL", "").strip()
    if not raw:
        return 1
    try:
        workers = int(raw)
    except ValueError:
        warnings.warn(
            f"REPRO_PARALLEL={raw!r} is not an integer; running serially",
            RuntimeWarning, stacklevel=2)
        return 1
    if workers < 1:
        warnings.warn(
            f"REPRO_PARALLEL={raw!r} must be a positive worker count; "
            f"running serially", RuntimeWarning, stacklevel=2)
        return 1
    return workers


def pool_chunksize(ntasks: int, workers: int) -> int:
    """Chunksize for ``ProcessPoolExecutor.map``.

    The default ``chunksize=1`` pays one IPC round-trip per task, which
    dominates on large sweeps of fast tasks. Aim for ~4 chunks per
    worker (keeps the pool balanced when task durations vary) and cap
    the chunk at a fixed bound so a huge sweep still streams results.
    """
    if workers <= 1:
        return 1
    return max(1, min(_MAX_CHUNKSIZE, ntasks // (workers * 4)))


@dataclass(frozen=True)
class SweepProgress:
    """One progress tick of :func:`run_sweep`.

    ``done`` counts every finished task — cache hits, bypasses and pool
    results alike — through one accounting path, so a consumer always
    observes ``done`` advancing by exactly 1 per event, from 1 to
    ``total``, regardless of how the hit/miss partition interleaves with
    parallel completion. ``index`` is the task's position in the
    submitted list; ``source`` says how the result was produced.
    """

    done: int
    total: int
    hits: int
    computed: int
    index: int
    source: str  # "cache" | "pool" | "serial"
    label: str = ""


def _call(task: SweepTask) -> Any:
    return task.run()


def env_mode_context() -> Dict[str, Any]:
    # The drivers read REPRO_FAST (phase counts), REPRO_SOLVER
    # (bandwidth-share strategy — at the cluster models' nonzero
    # fairness_slack the solvers batch freeze rounds differently),
    # REPRO_KERNEL and REPRO_SCHEDULER *inside* the task body, so two
    # runs with identical task arguments can differ across these modes;
    # fold the normalised values into every cache key. (Kernel and
    # scheduler are bit-identity-tested against their fallbacks, so for
    # them the fold is a guard, not a correctness requirement.)
    from repro.des.bandwidth import _resolve_solver
    from repro.des.kernels import resolve_kernel
    from repro.des.sched import resolve_scheduler
    from repro.des.shards import resolve_shards

    fast = os.environ.get("REPRO_FAST", "") not in ("", "0", "false")
    return {"repro_fast": fast, "repro_solver": _resolve_solver(None),
            "repro_kernel": resolve_kernel(None),
            "repro_scheduler": resolve_scheduler(None),
            # The shard count changes (slack-bounded) sharded-solver
            # results, so it must partition the cache like the solver.
            "repro_shards": resolve_shards(None)}


def _resolve_cache(cache: Union[ResultCache, None, bool],
                   ) -> Optional[ResultCache]:
    if cache is False:
        return None
    if isinstance(cache, ResultCache):
        if cache.context is None:
            cache.context = env_mode_context()
        return cache
    return cache_from_env(context=env_mode_context())


def run_sweep(tasks: Iterable[SweepTask],
              parallel: Optional[int] = None,
              cache: Union[ResultCache, None, bool] = None,
              chunksize: Optional[int] = None,
              progress: Optional[Callable[[SweepProgress], None]] = None,
              ) -> List[Any]:
    """Run every task and return their results **in task order**.

    ``parallel=None`` consults :func:`default_parallelism`; ``1`` (or a
    single task) runs serially in-process with no pool overhead. The
    parallel path uses ``ProcessPoolExecutor.map`` with a computed
    ``chunksize`` (override via the argument); map preserves submission
    order, so serial and parallel runs return bit-identical result
    lists for deterministic tasks.

    ``cache=None`` consults the environment (``REPRO_CACHE`` /
    ``REPRO_CACHE_DIR``); ``cache=False`` forces caching off; an
    explicit :class:`~repro.cache.ResultCache` is used as-is. Hits are
    returned without running the task; misses are executed and written
    back atomically, then an LRU eviction pass bounds the store size.
    With ``REPRO_TRACE`` set every task is a *bypass*: trace files are a
    side effect a cache hit would skip.

    ``progress`` is called once per finished task with a
    :class:`SweepProgress` whose ``done`` counter is strictly monotonic:
    cache hits served in the parent and results arriving from the worker
    pool are counted through the same accounting path, so totals can
    never be observed out of order however completion interleaves.
    """
    task_list = list(tasks)
    total = len(task_list)
    workers = default_parallelism() if parallel is None else max(1, int(parallel))
    workers = min(workers, total)
    store = _resolve_cache(cache)
    if store is not None and os.environ.get("REPRO_TRACE", ""):
        store.record_bypass(total)
        store.flush()
        store = None

    done = hits = computed_count = 0

    def _advance(index: int, source: str, label: str) -> None:
        # The single accounting path: every finished task — cache hit,
        # bypass or pool result — passes through here exactly once.
        nonlocal done, hits, computed_count
        done += 1
        if source == "cache":
            hits += 1
        else:
            computed_count += 1
        if progress is not None:
            progress(SweepProgress(
                done=done, total=total, hits=hits,
                computed=computed_count, index=index, source=source,
                label=label))

    results: List[Any] = [None] * total
    if store is None:
        pending: List[Tuple[int, Optional[str], SweepTask]] = [
            (i, None, task) for i, task in enumerate(task_list)]
    else:
        pending = []
        for i, task in enumerate(task_list):
            key = store.key_for(task.fn, task.args, task.kwargs)
            if key is None:
                store.record_bypass()
                pending.append((i, None, task))
                continue
            hit, value = store.get(key)
            if hit:
                results[i] = value
                _advance(i, "cache", task.label)
            else:
                pending.append((i, key, task))

    def _collect(computed: Iterable[Any], source: str) -> None:
        # Stream results back as they arrive: write each miss to the
        # store immediately and emit its progress tick in completion
        # order (ProcessPoolExecutor.map yields in submission order, so
        # assembly into ``results`` stays bit-identical to serial).
        for (i, key, task), value in zip(pending, computed):
            results[i] = value
            _advance(i, source, task.label)
            if store is not None and key is not None:
                fn = task.fn
                store.put(key, value, meta={
                    "fn": f"{getattr(fn, '__module__', '?')}."
                          f"{getattr(fn, '__qualname__', '?')}",
                    "label": task.label,
                })

    workers = min(workers, len(pending))
    if workers <= 1:
        _collect((task.run() for _i, _key, task in pending), "serial")
    else:
        if chunksize is None:
            chunksize = pool_chunksize(len(pending), workers)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            _collect(pool.map(
                _call, [task for _i, _key, task in pending],
                chunksize=max(1, int(chunksize))), "pool")

    if store is not None:
        store.flush()
        if store.total_bytes() > store.max_bytes:
            store.evict()
            store.flush()
    return results
