"""Standalone sweep specs: plain-data descriptions of one experiment.

A *spec* is the picklable dict the figure drivers have always fanned out
through :func:`repro.experiments.executor.run_sweep`::

    {"preset": "kraken", "ncores": 576,
     "strategy": {"kind": "damaris"}, "seed": 42}

This module makes that shape a first-class citizen, decoupled from the
figure drivers, so a spec can be submitted standalone — from a figure
driver, from a script, or over the wire to the :mod:`repro.service` job
server — and always means the same experiment:

- :data:`PRESETS` / :data:`STRATEGY_KINDS` — the recognised platform
  presets and strategy kinds;
- :func:`validate_spec` — structural validation with precise error
  messages (the service's admission check; drivers construct specs
  programmatically and skip it);
- :func:`strategy_from_spec` — build the strategy object a spec names;
- :func:`run_spec` — execute one spec and return its
  :class:`~repro.experiments.harness.ExperimentResult`. Module-level and
  picklable, so it crosses process-pool boundaries and keys the
  content-addressed result cache.

Optional spec fields: ``seed`` (int, default 42), ``write_phases``
(int >= 1), ``nvariables`` (BluePrint workload variable count),
``run_compression`` (harness-level compression model name),
``faults`` (a :meth:`repro.faults.FaultSchedule.to_dict` payload) and
``trace_label`` (names the trace file under ``REPRO_TRACE``).
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from repro.apps.workload import CM1Workload
from repro.core.server import DamarisOptions
from repro.experiments.harness import ExperimentResult, run_experiment
from repro.experiments.platforms import (
    PlatformPreset,
    blueprint_preset,
    grid5000_preset,
    kraken_preset,
)
from repro.formats.compression import GZIP16_MODEL, GZIP_MODEL
from repro.observe.export import dump_jsonl
from repro.observe.tracer import Tracer
from repro.strategies import (
    CollectiveIOStrategy,
    DamarisFailoverStrategy,
    DamarisStrategy,
    FilePerProcessStrategy,
    NoIOStrategy,
)

__all__ = [
    "PRESETS",
    "STRATEGY_KINDS",
    "SpecError",
    "validate_spec",
    "strategy_from_spec",
    "run_spec",
]

PRESETS = {
    "kraken": kraken_preset,
    "grid5000": grid5000_preset,
    "blueprint": blueprint_preset,
}

_COMPRESSION = {
    "gzip": GZIP_MODEL,
    "gzip16": GZIP16_MODEL,
}

#: Recognised ``spec["strategy"]["kind"]`` values.
STRATEGY_KINDS = ("fpp", "collective", "noio", "damaris",
                  "damaris_failover")

#: Every key a spec may carry (anything else is a validation error —
#: a typo like "ncore" must not silently describe a different run).
_SPEC_KEYS = frozenset({
    "preset", "ncores", "strategy", "seed", "write_phases", "nvariables",
    "run_compression", "faults", "trace_label",
})

_STRATEGY_KEYS = frozenset({
    "kind", "compress", "stripe_size", "compression", "use_scheduler",
    "compress_on_server",
})


class SpecError(ValueError):
    """A sweep spec that does not describe a runnable experiment."""


def _require_int(spec: Dict[str, Any], key: str, minimum: int) -> None:
    value = spec[key]
    if not isinstance(value, int) or isinstance(value, bool) \
            or value < minimum:
        raise SpecError(
            f"spec[{key!r}] must be an integer >= {minimum}, "
            f"got {value!r}")


def validate_spec(spec: Any) -> Dict[str, Any]:
    """Check that ``spec`` is a well-formed sweep spec; return it.

    Raises :class:`SpecError` naming the first offending field. The
    check is structural (types, known names, ranges) — it does not build
    a machine, so it is cheap enough for a service admission path.
    """
    if not isinstance(spec, dict):
        raise SpecError(f"a sweep spec is a dict, got {type(spec).__name__}")
    unknown = set(spec) - _SPEC_KEYS
    if unknown:
        raise SpecError(
            f"unknown spec field(s): {sorted(unknown)} "
            f"(known: {sorted(_SPEC_KEYS)})")
    for key in ("preset", "ncores", "strategy"):
        if key not in spec:
            raise SpecError(f"a sweep spec needs {key!r}; got {sorted(spec)}")
    if spec["preset"] not in PRESETS:
        raise SpecError(
            f"unknown preset {spec['preset']!r}; known: {sorted(PRESETS)}")
    _require_int(spec, "ncores", 1)
    strategy = spec["strategy"]
    if not isinstance(strategy, dict) or "kind" not in strategy:
        raise SpecError("spec['strategy'] must be a dict with a 'kind'")
    if strategy["kind"] not in STRATEGY_KINDS:
        raise SpecError(
            f"unknown strategy kind {strategy['kind']!r}; "
            f"known: {sorted(STRATEGY_KINDS)}")
    unknown = set(strategy) - _STRATEGY_KEYS
    if unknown:
        raise SpecError(
            f"unknown strategy field(s): {sorted(unknown)} "
            f"(known: {sorted(_STRATEGY_KEYS)})")
    if "compression" in strategy \
            and strategy["compression"] not in _COMPRESSION:
        raise SpecError(
            f"unknown compression {strategy['compression']!r}; "
            f"known: {sorted(_COMPRESSION)}")
    if "seed" in spec:
        _require_int(spec, "seed", 0)
    if "write_phases" in spec:
        _require_int(spec, "write_phases", 1)
    if "nvariables" in spec:
        _require_int(spec, "nvariables", 1)
    if "run_compression" in spec \
            and spec["run_compression"] not in _COMPRESSION:
        raise SpecError(
            f"unknown run_compression {spec['run_compression']!r}; "
            f"known: {sorted(_COMPRESSION)}")
    if "faults" in spec and spec["faults"]:
        from repro.faults import FaultSchedule
        from repro.faults.schedule import FaultScheduleError
        try:
            FaultSchedule.from_dict(spec["faults"])
        except FaultScheduleError as exc:
            raise SpecError(f"spec['faults']: {exc}") from None
    return spec


def _collective_for(preset: PlatformPreset,
                    stripe_size: Optional[int] = None
                    ) -> CollectiveIOStrategy:
    return CollectiveIOStrategy(
        mode=preset.collective_mode,
        stripe_count=preset.collective_stripe_count,
        stripe_size=stripe_size)


def strategy_from_spec(spec: Dict[str, Any], preset: PlatformPreset):
    """Build the strategy object ``spec`` (a strategy sub-dict) names."""
    kind = spec["kind"]
    if kind == "fpp":
        return FilePerProcessStrategy(compress=spec.get("compress", False))
    if kind == "collective":
        return _collective_for(preset, stripe_size=spec.get("stripe_size"))
    if kind == "noio":
        return NoIOStrategy()
    if kind in ("damaris", "damaris_failover"):
        options_kwargs: Dict[str, Any] = {}
        if spec.get("compression"):
            options_kwargs["compression"] = _COMPRESSION[spec["compression"]]
        if spec.get("use_scheduler"):
            options_kwargs["use_scheduler"] = True
        strategy_kwargs: Dict[str, Any] = {}
        if options_kwargs:
            strategy_kwargs["options"] = DamarisOptions(**options_kwargs)
        if spec.get("compress_on_server"):
            strategy_kwargs["compress_on_server"] = True
        cls = (DamarisFailoverStrategy if kind == "damaris_failover"
               else DamarisStrategy)
        return cls(**strategy_kwargs)
    raise SpecError(f"unknown strategy kind: {kind!r}")


def run_spec(spec: Dict[str, Any],
             tracer: Optional[Tracer] = None) -> ExperimentResult:
    """Execute one sweep spec (module-level: picklable for worker pools).

    With ``REPRO_TRACE=<dir>`` in the environment (the ``--trace`` flag
    of the figure CLIs), the run records a full trace and dumps it to
    ``<dir>/<label>.jsonl`` — one file per sweep configuration, worker
    processes included, since each spec carries its own label. An
    explicit ``tracer`` records into the caller's object instead and
    writes no file (the service uses this to harvest solver counters).
    """
    preset = PRESETS[spec["preset"]]()
    workload = None
    if "nvariables" in spec:
        workload = CM1Workload.blueprint(nvariables=spec["nvariables"])
    strategy = strategy_from_spec(spec["strategy"], preset)
    run_kwargs: Dict[str, Any] = {}
    if spec.get("run_compression"):
        run_kwargs["compression"] = _COMPRESSION[spec["run_compression"]]
    if spec.get("faults"):
        # The schedule travels inside the spec as a plain dict, so it is
        # picklable for worker pools and folds into sweep-cache keys for
        # free (the store keys by the full spec).
        from repro.faults import FaultSchedule
        run_kwargs["faults"] = FaultSchedule.from_dict(spec["faults"])
    trace_dir = ""
    if tracer is None:
        trace_dir = os.environ.get("REPRO_TRACE", "")
        if trace_dir:
            tracer = Tracer()
    if tracer is not None:
        run_kwargs["tracer"] = tracer

    machine, fs, default_workload = preset.build(
        spec["ncores"], seed=spec.get("seed", 42))
    result = run_experiment(
        machine, fs, workload if workload is not None else default_workload,
        strategy,
        write_phases=spec.get("write_phases", _default_phases()),
        **run_kwargs)

    if trace_dir:
        label = spec.get(
            "trace_label",
            f"{spec['preset']}-{spec['ncores']}"
            f"-{spec['strategy']['kind']}")
        os.makedirs(trace_dir, exist_ok=True)
        dump_jsonl(tracer, os.path.join(
            trace_dir, label.replace("/", "-") + ".jsonl"))
    return result


def _default_phases() -> int:
    fast = os.environ.get("REPRO_FAST", "") not in ("", "0", "false")
    return 1 if fast else 2
