"""Run one (machine, file system, workload, strategy) configuration.

The harness reproduces the paper's measurement protocol:

- ranks alternate compute blocks (``iterations_per_output`` model steps)
  and write phases;
- a write phase is delimited by two barriers; its duration *from the
  simulation's point of view* is the barrier-to-barrier time (Fig. 2/3);
- per-rank write times (the spread between fastest and slowest rank) are
  recorded inside the phase;
- aggregate throughput is user data volume over the time the data took to
  reach storage (for Damaris: over the dedicated cores' write window,
  "this throughput is only seen by the dedicated cores");
- for Damaris, the dedicated cores' per-iteration write time and spare
  time are collected (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.apps.workload import CM1Workload
from repro.cluster.machine import Machine
from repro.des.process import AllOf
from repro.errors import ReproError
from repro.formats.compression import CompressionModel
from repro.formats.hdf5model import HDF5CostModel
from repro.mpi.comm import Communicator
from repro.observe.tracer import Tracer
from repro.storage.filesystem import ParallelFileSystem
from repro.strategies.base import IOStrategy, StrategyContext

__all__ = ["PhaseStats", "ExperimentResult", "run_experiment"]


@dataclass
class PhaseStats:
    """Measurements of one write phase."""

    phase: int
    start_time: float
    #: Barrier-to-barrier duration (identical across ranks by definition).
    duration: float
    #: Per-rank time spent inside the phase body (fastest vs slowest).
    rank_times: np.ndarray

    @property
    def rank_mean(self) -> float:
        return float(self.rank_times.mean())

    @property
    def rank_max(self) -> float:
        return float(self.rank_times.max())

    @property
    def rank_min(self) -> float:
        return float(self.rank_times.min())


@dataclass
class ExperimentResult:
    """Everything the figure drivers need from one run."""

    strategy: str
    ncores: int
    compute_ranks: int
    phases: List[PhaseStats]
    #: Simulated time when the last rank finished the application.
    run_time: float
    #: Simulated time when all asynchronous work had drained.
    drain_time: float
    #: User data bytes produced per write phase (all ranks).
    bytes_per_phase: float
    #: Damaris-only dedicated-core measurements (empty otherwise).
    dedicated_write_times: List[float] = field(default_factory=list)
    dedicated_windows: List[float] = field(default_factory=list)
    spare_fraction: Optional[float] = None
    files_created: int = 0
    #: Per-fault outcome records when a fault schedule was injected
    #: (plain dicts — see :meth:`repro.faults.FaultRecord.to_dict` — so
    #: results stay picklable/cacheable without importing repro.faults).
    fault_records: List[Dict] = field(default_factory=list)

    # -- write phase (Fig. 2 / Fig. 3) ---------------------------------- #
    @property
    def avg_write_phase(self) -> float:
        return float(np.mean([p.duration for p in self.phases]))

    @property
    def max_write_phase(self) -> float:
        return float(np.max([p.duration for p in self.phases]))

    @property
    def min_write_phase(self) -> float:
        return float(np.min([p.duration for p in self.phases]))

    @property
    def rank_time_spread(self) -> float:
        """Mean over phases of (slowest - fastest rank time)."""
        return float(np.mean([p.rank_max - p.rank_min
                              for p in self.phases]))

    # -- throughput (Fig. 6 / Table I) ----------------------------------- #
    @property
    def aggregate_throughput(self) -> float:
        """User bytes per second through the storage path.

        For Damaris this is the throughput *seen by the dedicated cores*
        (paper Fig. 6): per-phase volume over the mean time a dedicated
        core spends writing. For synchronous strategies it is volume over
        the barrier-to-barrier phase duration."""
        if self.dedicated_write_times:
            window = float(np.mean(self.dedicated_write_times))
        else:
            window = self.avg_write_phase
        if window <= 0:
            return 0.0
        return self.bytes_per_phase / window

    # -- run time / scalability (Fig. 4) --------------------------------- #
    @property
    def io_fraction(self) -> float:
        """Fraction of the run spent in write phases (the '5 %' rule)."""
        if self.run_time <= 0:
            return 0.0
        return sum(p.duration for p in self.phases) / self.run_time

    # -- fault degradation (repro.faults) -------------------------------- #
    @property
    def data_loss_bytes(self) -> float:
        """User bytes destroyed by injected faults."""
        return float(sum(r["data_loss_bytes"] for r in self.fault_records))

    @property
    def mean_recovery_time(self) -> float:
        """Mean injection-to-fully-recovered time over injected faults."""
        times = [r["recovery_time"] for r in self.fault_records
                 if r["recovery_time"] is not None]
        return float(np.mean(times)) if times else 0.0

    @property
    def max_recovery_time(self) -> float:
        times = [r["recovery_time"] for r in self.fault_records
                 if r["recovery_time"] is not None]
        return float(np.max(times)) if times else 0.0

    # -- wire format (repro.service) ------------------------------------- #
    def summary(self) -> Dict:
        """JSON-safe digest of this run (plain ints/floats/strings only).

        This is what the sweep service returns over the wire: every
        derived measurement the figure drivers read, without the raw
        per-rank numpy arrays (whole-phase jitter spread is preserved as
        ``rank_time_spread``).
        """
        return {
            "strategy": self.strategy,
            "ncores": int(self.ncores),
            "compute_ranks": int(self.compute_ranks),
            "write_phases": len(self.phases),
            "run_time": float(self.run_time),
            "drain_time": float(self.drain_time),
            "bytes_per_phase": float(self.bytes_per_phase),
            "avg_write_phase": self.avg_write_phase,
            "max_write_phase": self.max_write_phase,
            "min_write_phase": self.min_write_phase,
            "rank_time_spread": self.rank_time_spread,
            "aggregate_throughput": self.aggregate_throughput,
            "io_fraction": self.io_fraction,
            "spare_fraction": (None if self.spare_fraction is None
                               else float(self.spare_fraction)),
            "dedicated_write_times": [float(t) for t
                                      in self.dedicated_write_times],
            "files_created": int(self.files_created),
            "data_loss_bytes": self.data_loss_bytes,
            "mean_recovery_time": self.mean_recovery_time,
            "fault_records": [dict(r) for r in self.fault_records],
        }


def run_experiment(machine: Machine, fs: ParallelFileSystem,
                   workload: CM1Workload, strategy: IOStrategy,
                   write_phases: int = 1,
                   compression: Optional[CompressionModel] = None,
                   hdf5: Optional[HDF5CostModel] = None,
                   compute_blocks_per_phase: int = 1,
                   tracer: Optional[Tracer] = None,
                   faults=None) -> ExperimentResult:
    """Run ``write_phases`` output cycles of the workload under
    ``strategy`` and return the measurements.

    Passing a ``tracer`` attaches it to the machine's simulator clock:
    every instrumented layer (clients, servers, storage, locks) records
    into it, and the harness itself adds one ``write_phase`` span per
    (rank, phase).

    ``faults`` is an optional :class:`repro.faults.FaultSchedule`: it is
    armed against the machine before any rank starts, its recoveries
    join the drain phase, and its per-fault records land on
    ``ExperimentResult.fault_records``. ``None`` (or an empty schedule)
    leaves the run bit-identical to a harness without the parameter —
    no event is scheduled and no sequence number is consumed."""
    if write_phases < 1:
        raise ReproError("need at least one write phase")
    if tracer is not None:
        machine.attach_tracer(tracer)

    cores_per_node = machine.spec.cores_per_node
    dedicated = (strategy.dedicated_cores_per_node
                 if strategy.uses_dedicated_cores else 0)
    dilation = workload.dilation(cores_per_node, dedicated) \
        if dedicated else 1.0
    compute_cores = [
        core for node in machine.nodes
        for core in node.cores[:cores_per_node - dedicated]
    ]
    comm = Communicator(machine, compute_cores)
    ctx = StrategyContext(
        machine=machine, fs=fs, comm=comm, workload=workload,
        dilation=dilation, compression=compression,
        hdf5=hdf5 if hdf5 is not None else HDF5CostModel())
    strategy.setup(ctx)

    injector = None
    if faults is not None and len(faults):
        from repro.faults import FaultInjector
        injector = FaultInjector(faults)
        injector.arm(ctx, strategy)

    nranks = comm.size
    rank_times = np.zeros((write_phases, nranks), dtype=float)
    phase_starts = np.zeros(write_phases, dtype=float)
    phase_ends = np.zeros(write_phases, dtype=float)
    compute_seconds = (workload.compute_block_seconds(dilation)
                       * compute_blocks_per_phase)

    def rank_program(rank: int):
        yield from strategy.rank_setup(ctx, rank)
        for phase in range(write_phases):
            yield comm.compute(rank, compute_seconds,
                               stream_name="cm1-compute")
            yield from comm.barrier(rank)
            if rank == 0:
                phase_starts[phase] = machine.sim.now
            entered = machine.sim.now
            yield from strategy.write_phase(ctx, rank, phase)
            rank_times[phase, rank] = machine.sim.now - entered
            trace = machine.sim.tracer
            if trace.enabled:
                node = comm.node_of(rank)
                trace.record_span(
                    "write_phase", f"phase{phase}",
                    f"node{node.index}/rank{rank}",
                    entered, machine.sim.now, rank=rank, phase=phase,
                    strategy=strategy.name)
            yield from comm.barrier(rank)
            if rank == 0:
                phase_ends[phase] = machine.sim.now
        yield from strategy.rank_teardown(ctx, rank)

    processes = [machine.sim.process(rank_program(rank))
                 for rank in range(nranks)]
    machine.sim.run_until_complete(AllOf(machine.sim, processes))
    run_time = machine.sim.now

    drains = list(strategy.drain_events(ctx))
    if injector is not None:
        # Recoveries (and failover replays) scheduled beyond the
        # application's natural end still have to be processed.
        drains.append(injector.done)
    if drains:
        machine.sim.run_until_complete(AllOf(machine.sim, drains))
    drain_time = machine.sim.now
    strategy.finalize(ctx)

    phases = [
        PhaseStats(phase=k, start_time=float(phase_starts[k]),
                   duration=float(phase_ends[k] - phase_starts[k]),
                   rank_times=rank_times[k])
        for k in range(write_phases)
    ]

    result = ExperimentResult(
        strategy=strategy.name,
        ncores=machine.total_cores,
        compute_ranks=nranks,
        phases=phases,
        run_time=run_time,
        drain_time=drain_time,
        bytes_per_phase=float(workload.total_bytes(nranks, dilation)),
        files_created=fs.files_created,
    )
    if injector is not None:
        result.fault_records = [record.to_dict()
                                for record in injector.records]

    deployment = ctx.state.get("deployment")
    if deployment is not None:
        result.dedicated_write_times = deployment.dedicated_write_times()
        # Per-iteration write window across all servers (Fig. 6's
        # dedicated-core view of throughput).
        windows: Dict[int, List[float]] = {}
        for server in deployment.servers:
            for iteration, start in \
                    server.persist_start_by_iteration.items():
                end = server.persist_end_by_iteration[iteration]
                windows.setdefault(iteration, []).append(start)
                windows.setdefault(-iteration - 1, []).append(end)
        result.dedicated_windows = [
            max(windows[-iteration - 1]) - min(windows[iteration])
            for iteration in range(write_phases)
            if iteration in windows and (-iteration - 1) in windows
        ]
        period = compute_seconds
        result.spare_fraction = deployment.mean_spare_fraction(period)
    return result
