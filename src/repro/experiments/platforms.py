"""Calibrated platform presets for the paper's three testbeds.

Each preset builds a :class:`~repro.cluster.machine.Machine` plus the
matching file system and returns the workload tuned to the paper's
weak-scaling configuration. The absolute bandwidth constants are
calibrated against the paper's anchors (Table I throughputs, the 0.2 s
Damaris write phase, the ~481 s collective phase at 9216 cores); every
figure is then *generated from the same presets* — no per-figure tuning.

Calibration anchors (see EXPERIMENTS.md for measured-vs-paper):

- Kraken: Cray XT5, 12-core nodes, Lustre with one MDS and 336 OSTs,
  1 MB stripes, stripe count 4 for per-process files; the shared
  collective file gets 16 stripes (large-file setting);
- Grid'5000 (parapluie/parapide): 24-core nodes, PVFS over 15 combined
  data+metadata servers, RAM-buffered (network-bound) targets;
- BluePrint: Power5, 16-core nodes, GPFS on 2 NSD servers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from repro.apps.workload import CM1Workload
from repro.cluster.machine import Machine, MachineSpec
from repro.cluster.noise import CrossApplicationInterference, OSNoise
from repro.errors import ReproError
from repro.storage.disk import TargetSpec
from repro.storage.filesystem import ParallelFileSystem
from repro.storage.gpfs import GPFS
from repro.storage.lustre import Lustre
from repro.storage.metadata import MetadataSpec
from repro.storage.pvfs import PVFS
from repro.units import GiB, KiB, MB, MiB

__all__ = ["PlatformPreset", "kraken_preset", "grid5000_preset",
           "blueprint_preset"]


@dataclass
class PlatformPreset:
    """A buildable platform: machine spec factory + file system factory."""

    name: str
    cores_per_node: int
    machine_factory: Callable[[int, int], Machine]
    fs_factory: Callable[[Machine], ParallelFileSystem]
    workload_factory: Callable[[], CM1Workload]
    #: Mean cross-application load on the storage targets (0 disables).
    interference_load: float = 0.0
    interference_period: float = 20.0
    #: Collective-I/O mode that ROMIO would pick on this file system.
    collective_mode: str = "two-phase"
    #: Stripe count used for the shared collective file (None = default).
    collective_stripe_count: Optional[int] = None

    def build(self, ncores: int, seed: int = 0
              ) -> Tuple[Machine, ParallelFileSystem, CM1Workload]:
        """Instantiate the platform for a job of ``ncores`` cores."""
        if ncores % self.cores_per_node:
            raise ReproError(
                f"{self.name}: core count {ncores} is not a multiple of "
                f"{self.cores_per_node}-core nodes")
        machine = self.machine_factory(ncores, seed)
        fs = self.fs_factory(machine)
        if self.interference_load > 0:
            interference = CrossApplicationInterference(
                fs.targets, period=self.interference_period,
                mean_load=self.interference_load,
                volatility=self.interference_load / 2.5)
            interference.start(machine.sim, machine.streams)
        return machine, fs, self.workload_factory()


# ---------------------------------------------------------------------- #
# Kraken (Cray XT5 + Lustre)
# ---------------------------------------------------------------------- #
def _kraken_machine(ncores: int, seed: int) -> Machine:
    spec = MachineSpec(
        name="kraken",
        nodes=ncores // 12,
        cores_per_node=12,
        # Effective shared-memory copy bandwidth under full-node
        # contention (calibrated so that 11 concurrent ~9 MB copies take
        # ~0.2 s, the paper's Damaris write-phase time).
        mem_bandwidth=0.55 * GiB,
        # SeaStar2+ effective per-node injection bandwidth.
        nic_bandwidth=1.6 * GiB,
        memory_per_node=16 * GiB,
    )
    return Machine(spec, seed=seed, noise=OSNoise(sigma=0.003))


def _kraken_fs(machine: Machine) -> Lustre:
    return Lustre(
        machine,
        ntargets=336,
        target_spec=TargetSpec(
            # Aggregate ceiling ~15 GB/s; per-OST efficiency collapses
            # quickly with distinct concurrent objects (disk-backed OSTs)
            # and gently with stream count — constants fitted to the
            # paper's anchors: Damaris ~9.7 GB/s @2304 / ~3.7 GB/s @9216,
            # FPP ~0.6 GB/s @9216, collective ~0.24 GB/s @9216.
            peak_bandwidth=45e6,
            stream_peak=40e6,
            object_half=3.2, object_exp=0.8,
            stream_half=450.0, stream_exp=1.0,
            min_efficiency=0.015,
            request_overhead_bytes=256 * KiB,
            straggler_sigma=0.16,
            request_latency=2e-3,
        ),
        metadata_spec=MetadataSpec(create=1.5e-3, open=0.4e-3,
                                   close=0.3e-3, sigma=0.3, concurrency=4),
        default_stripe_size=1 * MiB,
        default_stripe_count=4,
    )


def kraken_preset() -> PlatformPreset:
    return PlatformPreset(
        name="kraken",
        cores_per_node=12,
        machine_factory=_kraken_machine,
        fs_factory=_kraken_fs,
        workload_factory=CM1Workload.kraken,
        interference_load=0.15,
        interference_period=30.0,
        collective_mode="two-phase",
        collective_stripe_count=16,
    )


# ---------------------------------------------------------------------- #
# Grid'5000 (parapluie + PVFS on 15 parapide servers)
# ---------------------------------------------------------------------- #
def _grid5000_machine(ncores: int, seed: int) -> Machine:
    spec = MachineSpec(
        name="grid5000",
        nodes=ncores // 24,
        cores_per_node=24,
        # 24-core AMD nodes: effective concurrent-copy bandwidth.
        mem_bandwidth=1.4 * GiB,
        # 20G InfiniBand 4x QDR.
        nic_bandwidth=2.2 * GiB,
        memory_per_node=48 * GiB,
    )
    return Machine(spec, seed=seed, noise=OSNoise(sigma=0.003))


def _grid5000_fs(machine: Machine) -> PVFS:
    return PVFS(
        machine,
        ntargets=15,
        target_spec=TargetSpec(
            # RAM-buffered servers: network-bound, ~310 MB/s each
            # (15 x 310 MB/s = 4.65 GB/s ceiling; Damaris measures 4.32).
            peak_bandwidth=310e6,
            stream_peak=300e6,
            # Network-bound servers: per-connection overhead dominates, so
            # STREAM concurrency is the active penalty here.
            object_half=1e9, object_exp=1.0,
            stream_half=118.0, stream_exp=1.35,
            min_efficiency=0.02,
            request_overhead_bytes=256 * KiB,
            straggler_sigma=0.2,
            request_latency=1.5e-3,
        ),
        metadata_spec=MetadataSpec(create=1.0e-3, open=0.3e-3,
                                   close=0.2e-3, sigma=0.25, concurrency=2),
        default_stripe_size=64 * KiB,
    )


def grid5000_preset() -> PlatformPreset:
    return PlatformPreset(
        name="grid5000",
        cores_per_node=24,
        machine_factory=_grid5000_machine,
        fs_factory=_grid5000_fs,
        workload_factory=CM1Workload.grid5000,
        interference_load=0.05,  # dedicated testbed: little cross-traffic
        interference_period=15.0,
        collective_mode="direct",  # ROMIO on PVFS: no collective buffering
    )


# ---------------------------------------------------------------------- #
# BluePrint (Power5 + GPFS on 2 NSD servers)
# ---------------------------------------------------------------------- #
def _blueprint_machine(ncores: int, seed: int) -> Machine:
    spec = MachineSpec(
        name="blueprint",
        nodes=ncores // 16,
        cores_per_node=16,
        mem_bandwidth=1.0 * GiB,
        nic_bandwidth=1.0 * GiB,
        memory_per_node=64 * GiB,
    )
    return Machine(spec, seed=seed, noise=OSNoise(sigma=0.003))


def _blueprint_fs(machine: Machine) -> GPFS:
    return GPFS(
        machine,
        ntargets=2,
        target_spec=TargetSpec(
            peak_bandwidth=400e6,
            stream_peak=250e6,
            object_half=48.0, object_exp=1.0,
            stream_half=2000.0, stream_exp=1.0,
            min_efficiency=0.03,
            request_overhead_bytes=256 * KiB,
            straggler_sigma=0.3,
            request_latency=2e-3,
        ),
        metadata_spec=MetadataSpec(create=1.2e-3, open=0.4e-3,
                                   close=0.3e-3, sigma=0.3, concurrency=2),
        default_stripe_size=4 * MiB,
    )


def blueprint_preset() -> PlatformPreset:
    return PlatformPreset(
        name="blueprint",
        cores_per_node=16,
        machine_factory=_blueprint_machine,
        fs_factory=_blueprint_fs,
        workload_factory=CM1Workload.blueprint,
        interference_load=0.15,
        interference_period=25.0,
        collective_mode="two-phase",
    )
