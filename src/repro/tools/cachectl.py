"""Inspect and maintain the content-addressed sweep-result cache.

Usage::

    python -m repro.tools.cachectl stats            # counters + size
    python -m repro.tools.cachectl ls               # one line per entry
    python -m repro.tools.cachectl prune            # LRU-evict to the size bound
    python -m repro.tools.cachectl prune --stale    # drop old-model entries
    python -m repro.tools.cachectl verify           # re-checksum every entry
    python -m repro.tools.cachectl clear            # remove everything

All commands accept ``--cache-dir DIR`` (default ``REPRO_CACHE_DIR``,
else ``~/.cache/repro/sweeps``); ``prune`` accepts ``--max-bytes N`` to
override the configured bound for one pass. ``verify`` exits non-zero
if any entry fails its checksum — corrupt entries are reported, and at
read time they degrade to cache misses rather than wrong results, so
``verify`` failing means disk trouble, not wrong figures.

When to ``clear``: never for correctness — a model-source change
already unreaches every old entry (the fingerprint is part of the key),
and ``prune --stale`` reclaims their disk. ``clear`` is for reclaiming
the whole store or forcing a cold benchmark run.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

from repro.cache import ResultCache, default_cache_dir


def _cache(args: argparse.Namespace) -> ResultCache:
    root = args.cache_dir if args.cache_dir else default_cache_dir()
    return ResultCache(root)


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:.1f} GiB"  # pragma: no cover - unreachable


def cmd_stats(args: argparse.Namespace) -> int:
    cache = _cache(args)
    infos = list(cache.entries())
    total = sum(info.size for info in infos)
    current = sum(
        1 for info in infos
        if info.meta.get("fingerprint") == cache.fingerprint)
    print(f"cache dir:        {cache.root}")
    print(f"model fingerprint: {cache.fingerprint}")
    print(f"entries:          {len(infos)} "
          f"({current} current-model per index)")
    print(f"total size:       {_fmt_bytes(total)} "
          f"(bound {_fmt_bytes(cache.max_bytes)})")
    totals = cache.totals()
    last = cache.last_run()
    print("cumulative:       " + "  ".join(
        f"{key}={totals[key]}" for key in sorted(totals)))
    print("last run:         " + "  ".join(
        f"{key}={last[key]}" for key in sorted(last)))
    return 0


def cmd_ls(args: argparse.Namespace) -> int:
    cache = _cache(args)
    now = time.time()
    count = 0
    for info in sorted(cache.entries(), key=lambda i: -i.mtime):
        age_s = max(0.0, now - info.mtime)
        age = (f"{age_s:.0f}s" if age_s < 120
               else f"{age_s / 60:.0f}m" if age_s < 7200
               else f"{age_s / 3600:.1f}h")
        fn = info.meta.get("fn", "?")
        label = info.meta.get("label", "")
        stale = ("" if info.meta.get("fingerprint") == cache.fingerprint
                 else "  [stale]")
        print(f"{info.key}  {_fmt_bytes(info.size):>10}  {age:>6}  "
              f"{fn}  {label}{stale}")
        count += 1
    if not count:
        print("(empty cache)")
    return 0


def cmd_prune(args: argparse.Namespace) -> int:
    cache = _cache(args)
    if args.stale:
        removed = cache.prune_stale()
        print(f"pruned {removed} stale entr{'y' if removed == 1 else 'ies'} "
              f"(model fingerprint {cache.fingerprint})")
    else:
        removed = cache.evict(args.max_bytes)
        bound = cache.max_bytes if args.max_bytes is None else args.max_bytes
        print(f"evicted {removed} LRU entr{'y' if removed == 1 else 'ies'} "
              f"to fit {_fmt_bytes(bound)} "
              f"(now {_fmt_bytes(cache.total_bytes())})")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    cache = _cache(args)
    infos = list(cache.entries())
    bad = cache.verify()
    for key in bad:
        print(f"CORRUPT {key}", file=sys.stderr)
    print(f"verified {len(infos)} entr{'y' if len(infos) == 1 else 'ies'}: "
          f"{len(infos) - len(bad)} ok, {len(bad)} corrupt")
    return 1 if bad else 0


def cmd_clear(args: argparse.Namespace) -> int:
    cache = _cache(args)
    removed = cache.clear()
    print(f"cleared {removed} entr{'y' if removed == 1 else 'ies'} "
          f"from {cache.root}")
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.cachectl",
        description="Inspect and maintain the sweep-result cache.")
    parser.add_argument("--cache-dir", default=None,
                        help="cache root (default REPRO_CACHE_DIR, else "
                             "~/.cache/repro/sweeps)")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("stats", help="counters, entry count, total size")
    sub.add_parser("ls", help="list entries, most recently used first")
    prune = sub.add_parser("prune", help="evict entries")
    prune.add_argument("--max-bytes", type=int, default=None,
                       help="LRU-evict down to this size (default: the "
                            "configured bound, REPRO_CACHE_MAX_BYTES)")
    prune.add_argument("--stale", action="store_true",
                       help="instead remove entries recorded under an "
                            "older model fingerprint")
    sub.add_parser("verify", help="re-checksum every entry; exit 1 on "
                                  "corruption")
    sub.add_parser("clear", help="remove every entry and reset the index")
    args = parser.parse_args(argv)
    handler = {
        "stats": cmd_stats,
        "ls": cmd_ls,
        "prune": cmd_prune,
        "verify": cmd_verify,
        "clear": cmd_clear,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
