"""Run and talk to the sweep job service.

Usage::

    python -m repro.tools.servectl serve                 # start a server
    python -m repro.tools.servectl serve --port 8642 --workers 4
    python -m repro.tools.servectl submit specs.json     # submit a job
    python -m repro.tools.servectl submit specs.json --tenant alice \\
        --priority 5 --wait
    python -m repro.tools.servectl status job-000001     # one snapshot
    python -m repro.tools.servectl events job-000001 --follow
    python -m repro.tools.servectl fetch job-000001      # results JSON
    python -m repro.tools.servectl cancel job-000001
    python -m repro.tools.servectl metrics               # Prometheus page
    python -m repro.tools.servectl drain                 # stop admission
    python -m repro.tools.servectl health

Client commands accept ``--host``/``--port`` (default
``127.0.0.1:8642``, overridable via ``REPRO_SERVICE_ADDR=host:port``).
``submit`` reads a JSON file holding either a list of sweep specs or a
full job object (``{"specs": [...], "priority": ..., "label": ...}``);
``-`` reads stdin. Typed rejections (quota, rate limit, draining,
invalid spec) print as ``kind: message`` and exit non-zero.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, Optional

from repro.service.client import ServiceClient
from repro.service.errors import ServiceError

DEFAULT_PORT = 8642


def _default_addr() -> Dict[str, Any]:
    raw = os.environ.get("REPRO_SERVICE_ADDR", "").strip()
    if raw and ":" in raw:
        host, _, port = raw.rpartition(":")
        try:
            return {"host": host, "port": int(port)}
        except ValueError:
            pass
    return {"host": "127.0.0.1", "port": DEFAULT_PORT}


def _client(args: argparse.Namespace) -> ServiceClient:
    return ServiceClient(args.host, args.port,
                         tenant=getattr(args, "tenant", None))


def _emit(doc: Any) -> None:
    print(json.dumps(doc, indent=2, sort_keys=True))


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.service.quotas import QuotaManager, TenantPolicy
    from repro.service.server import SweepService

    policy = TenantPolicy(max_active_jobs=args.max_active_jobs,
                          max_specs_per_job=args.max_specs_per_job,
                          rate=args.rate, burst=args.burst)
    service = SweepService(host=args.host, port=args.port,
                           workers=args.workers,
                           job_slots=args.job_slots,
                           quotas=QuotaManager(default=policy))

    async def main() -> None:
        await service.start()
        print(f"serving on {service.address} "
              f"(workers={args.workers or 'auto'}, "
              f"job_slots={args.job_slots})", flush=True)
        # Serve until SIGINT/SIGTERM, then exit gracefully: a drained
        # server keeps answering (rejecting submissions, serving
        # results) until the operator terminates it, and termination
        # itself drains — in-flight jobs finish, pool workers join.
        stop_signal = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop_signal.set)
            except (NotImplementedError, RuntimeError):
                pass
        try:
            await stop_signal.wait()
        finally:
            await service.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0


def _load_payload(path: str) -> Dict[str, Any]:
    if path == "-":
        raw = sys.stdin.read()
    else:
        with open(path, "r", encoding="utf-8") as fh:
            raw = fh.read()
    doc = json.loads(raw)
    if isinstance(doc, list):
        return {"specs": doc}
    if isinstance(doc, dict):
        return doc
    raise SystemExit(f"{path}: expected a JSON list of specs or a job "
                     f"object, got {type(doc).__name__}")


def cmd_submit(args: argparse.Namespace) -> int:
    client = _client(args)
    payload = _load_payload(args.specs)
    if args.priority is not None:
        payload["priority"] = args.priority
    if args.label:
        payload["label"] = args.label
    snap = client.submit(payload["specs"],
                         priority=payload.get("priority", 0),
                         label=payload.get("label", ""))
    if not args.wait:
        _emit(snap)
        return 0
    final = client.wait(snap["job_id"], timeout=args.timeout)
    _emit(final)
    return 0 if final["state"] == "done" else 1


def cmd_status(args: argparse.Namespace) -> int:
    _emit(_client(args).status(args.job_id))
    return 0


def cmd_events(args: argparse.Namespace) -> int:
    client = _client(args)
    after = args.after
    while True:
        page = client.events(args.job_id, after=after,
                             wait=2.0 if args.follow else 0.0)
        for event in page["events"]:
            print(json.dumps(event, sort_keys=True))
            after = event["seq"]
        if not args.follow or page["state"] in ("done", "failed",
                                                "cancelled"):
            return 0


def cmd_fetch(args: argparse.Namespace) -> int:
    _emit(_client(args).result(args.job_id))
    return 0


def cmd_cancel(args: argparse.Namespace) -> int:
    _emit(_client(args).cancel(args.job_id))
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    sys.stdout.write(_client(args).metrics())
    return 0


def cmd_drain(args: argparse.Namespace) -> int:
    _emit(_client(args).drain())
    return 0


def cmd_health(args: argparse.Namespace) -> int:
    _emit(_client(args).health())
    return 0


def build_parser() -> argparse.ArgumentParser:
    addr = _default_addr()
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.servectl",
        description="Run and talk to the sweep job service.")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default=addr["host"])
        p.add_argument("--port", type=int, default=addr["port"])

    p = sub.add_parser("serve", help="start a server in the foreground")
    common(p)
    p.add_argument("--workers", type=int, default=None,
                   help="compute pool size (default: auto)")
    p.add_argument("--job-slots", type=int, default=4,
                   help="jobs executing concurrently")
    p.add_argument("--max-active-jobs", type=int, default=4)
    p.add_argument("--max-specs-per-job", type=int, default=256)
    p.add_argument("--rate", type=float, default=50.0,
                   help="tenant token-bucket refill, specs/second")
    p.add_argument("--burst", type=float, default=200.0,
                   help="tenant token-bucket capacity, specs")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("submit", help="submit a job from a JSON file")
    common(p)
    p.add_argument("specs", help="JSON file (or '-') with a spec list "
                                 "or job object")
    p.add_argument("--tenant", default=None)
    p.add_argument("--priority", type=int, default=None)
    p.add_argument("--label", default="")
    p.add_argument("--wait", action="store_true",
                   help="block until the job is terminal")
    p.add_argument("--timeout", type=float, default=600.0)
    p.set_defaults(fn=cmd_submit)

    for name, fn, help_text in (
            ("status", cmd_status, "print one job snapshot"),
            ("events", cmd_events, "print job events as JSON lines"),
            ("fetch", cmd_fetch, "print a finished job's results"),
            ("cancel", cmd_cancel, "cancel a queued or running job")):
        p = sub.add_parser(name, help=help_text)
        common(p)
        p.add_argument("job_id")
        if name == "events":
            p.add_argument("--after", type=int, default=-1)
            p.add_argument("--follow", action="store_true",
                           help="long-poll until the job is terminal")
        p.set_defaults(fn=fn)

    for name, fn, help_text in (
            ("metrics", cmd_metrics, "print the Prometheus page"),
            ("drain", cmd_drain, "stop admitting new jobs"),
            ("health", cmd_health, "print liveness/drain state")):
        p = sub.add_parser(name, help=help_text)
        common(p)
        p.set_defaults(fn=fn)
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ServiceError as exc:
        print(f"{exc.kind}: {exc.message}", file=sys.stderr)
        return 2
    except ConnectionError as exc:
        print(f"connection failed: {exc}", file=sys.stderr)
        return 3


if __name__ == "__main__":
    sys.exit(main())
