"""Inspect recorded traces from the command line.

Usage::

    python -m repro.tools.tracereport trace.jsonl            # summary
    python -m repro.tools.tracereport trace.jsonl --by actor
    python -m repro.tools.tracereport trace.jsonl --by category
    python -m repro.tools.tracereport trace.jsonl --by target
    python -m repro.tools.tracereport trace.jsonl --by solver
    python -m repro.tools.tracereport trace.jsonl --by sched
    python -m repro.tools.tracereport trace.jsonl --by backend
    python -m repro.tools.tracereport trace.jsonl --chrome out.json

The summary shows per-category, per-actor, per-storage-target,
bandwidth-solver and event-scheduler tables plus the
persist-vs-write_phase overlap (the structural form of the paper's
jitter-hiding claim). The solver table reports how the flow-network
share recomputations were served: full water-filling solves vs
component-partitioned solves vs incremental fast-path grants, and
which water-filling kernel (python/compiled) served them; traces
recorded with ``REPRO_SOLVER=sharded`` additionally carry the shard
counters (shard count, shard solves, cut bytes, capacity imbalance
and reconciliation iterations). The sched
table reports the calendar-queue scheduler's window resizes and
migrations. The backend table (``--by backend``; appears in the
summary when a ``REPRO_TRACE`` sweep recorded dispatch counters to
``sweep-backend.jsonl``) shows how each sweep backend moved its tasks:
dispatches, completions, crash-recovery requeues, speculative
straggler re-dispatches and discarded duplicates, and rejected
workers. ``--chrome`` converts the JSONL trace to
Chrome ``trace_event`` format — open it at ``chrome://tracing`` or
https://ui.perfetto.dev to see the timeline.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.experiments.report import render_table
from repro.observe.aggregate import (
    backend_table,
    per_actor_table,
    per_category_table,
    per_target_table,
    render_summary,
    sched_table,
    solver_table,
)
from repro.observe.export import dump_chrome_trace, load_jsonl

_GROUPINGS = ("actor", "category", "target", "solver", "sched", "backend")


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0

    chrome_out = None
    if "--chrome" in argv:
        at = argv.index("--chrome")
        try:
            chrome_out = argv[at + 1]
        except IndexError:
            print("--chrome requires an output path", file=sys.stderr)
            return 2
        del argv[at:at + 2]

    grouping = None
    if "--by" in argv:
        at = argv.index("--by")
        try:
            grouping = argv[at + 1]
        except IndexError:
            grouping = ""
        if grouping not in _GROUPINGS:
            print(f"--by requires one of: {', '.join(_GROUPINGS)}",
                  file=sys.stderr)
            return 2
        del argv[at:at + 2]

    if len(argv) != 1:
        print("expected exactly one trace file; see --help",
              file=sys.stderr)
        return 2
    path = argv[0]
    try:
        with open(path, "r", encoding="utf-8") as fh:
            tracer = load_jsonl(fh)
    except (OSError, ValueError, ReproError) as exc:
        print(f"cannot load {path!r}: {exc}", file=sys.stderr)
        return 1

    if chrome_out is not None:
        dump_chrome_trace(tracer, chrome_out)
        print(f"wrote Chrome trace to {chrome_out} "
              f"(open at chrome://tracing or https://ui.perfetto.dev)")

    if grouping == "actor":
        print(render_table(per_actor_table(tracer)))
    elif grouping == "category":
        print(render_table(per_category_table(tracer)))
    elif grouping == "target":
        print(render_table(per_target_table(tracer)))
    elif grouping == "solver":
        print(render_table(solver_table(tracer)))
    elif grouping == "sched":
        print(render_table(sched_table(tracer)))
    elif grouping == "backend":
        print(render_table(backend_table(tracer)))
    else:
        print(render_summary(tracer))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
