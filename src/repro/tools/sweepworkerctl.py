"""Launch and control TCP sweep workers for the remote backend.

Usage::

    # On each worker machine (same checkout + deps as the coordinator),
    # one process per core you want to donate:
    python -m repro.tools.sweepworkerctl serve --port 7401
    python -m repro.tools.sweepworkerctl serve --port 7402

    # On the coordinator machine:
    REPRO_WORKERS=nodeA:7401,nodeA:7402 REPRO_BACKEND=remote \\
        python -m repro.tools.figures all --out figures/

    # Tear a worker down remotely:
    python -m repro.tools.sweepworkerctl stop nodeA:7401

A worker is a single-threaded task server: it accepts one coordinator
connection at a time, introduces itself (protocol version, source-tree
fingerprint, pid, tag), adopts the coordinator's run-mode environment
from the ``welcome`` frame, then executes each ``run`` batch task by
task, streaming one ``result`` frame per task as it finishes. Between
coordinator connections it just listens, so one long-lived worker
serves any number of sweeps.

Options that matter in scripts and tests: ``--port 0`` binds an
ephemeral port and ``--port-file PATH`` publishes the chosen one
(written atomically; the first line is ``host:port``); ``--once``
exits after a single coordinator connection; ``--max-idle SECONDS``
exits when no coordinator shows up in time (so CI can never leak a
listener); ``--fingerprint`` overrides the source-tree fingerprint
(tests use this to exercise the handshake rejection). SIGTERM exits
cleanly.

Security: the protocol is pickle over TCP between hosts *you* control
— bind stays on localhost unless ``--host`` says otherwise, and worker
ports must never be reachable from untrusted networks.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import sys
import tempfile
import time
import traceback
from typing import Optional

from repro.experiments.backends.protocol import (
    MODE_ENV_KEYS,
    PROTOCOL_VERSION,
    ProtocolError,
    recv_msg,
    send_msg,
)
from repro.experiments.backends.remote import RemoteBackendError, parse_workers

__all__ = ["main", "serve_worker"]


def _default_tag() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _write_port_file(path: str, host: str, port: int) -> None:
    # Atomic so a watcher polling the file never reads a partial line.
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    with os.fdopen(fd, "w", encoding="utf-8") as fh:
        fh.write(f"{host}:{port}\n")
    os.replace(tmp_path, path)


def _apply_env(env: dict) -> None:
    # The welcome carries *every* mode key, empty string meaning unset,
    # so each coordinator connection fully determines the worker's
    # modes — nothing lingers from the previous coordinator.
    for key in MODE_ENV_KEYS:
        value = str(env.get(key, "") or "")
        if value:
            os.environ[key] = value
        else:
            os.environ.pop(key, None)


def _run_batch(conn: socket.socket, tasks) -> None:
    for task_id, task in tasks:
        start = time.perf_counter()
        try:
            value = task.run()
        except Exception as exc:
            send_msg(conn, {
                "type": "result", "task_id": task_id, "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
            })
            continue
        send_msg(conn, {
            "type": "result", "task_id": task_id, "ok": True,
            "value": value,
            "duration": time.perf_counter() - start,
        })


def _serve_connection(conn: socket.socket, fingerprint: str,
                      tag: str) -> str:
    """One coordinator session; returns why it ended.

    ``"bye"`` / ``"eof"`` mean keep listening, ``"shutdown"`` means the
    worker process should exit, ``"rejected"`` means the coordinator
    refused this worker.
    """
    send_msg(conn, {
        "type": "hello", "protocol": PROTOCOL_VERSION,
        "fingerprint": fingerprint, "pid": os.getpid(), "tag": tag,
    })
    greeting = recv_msg(conn)
    if greeting is None:
        return "eof"
    if not isinstance(greeting, dict):
        raise ProtocolError(f"bad greeting: {type(greeting).__name__}")
    if greeting.get("type") == "shutdown":
        return "shutdown"
    if greeting.get("type") == "reject":
        print(f"coordinator rejected this worker: "
              f"{greeting.get('reason', '?')}", file=sys.stderr)
        return "rejected"
    if greeting.get("type") != "welcome":
        raise ProtocolError(f"expected welcome, got {greeting.get('type')!r}")
    _apply_env(greeting.get("env", {}))
    while True:
        msg = recv_msg(conn)
        if msg is None:
            return "eof"
        kind = msg.get("type") if isinstance(msg, dict) else None
        if kind == "run":
            _run_batch(conn, msg.get("tasks", ()))
        elif kind == "bye":
            return "bye"
        elif kind == "shutdown":
            return "shutdown"
        else:
            raise ProtocolError(f"unexpected frame type {kind!r}")


def serve_worker(host: str = "127.0.0.1", port: int = 0, *,
                 fingerprint: Optional[str] = None,
                 tag: Optional[str] = None,
                 port_file: Optional[str] = None,
                 once: bool = False,
                 max_idle: Optional[float] = None) -> int:
    """Run a sweep worker until told to stop; returns an exit code."""
    if fingerprint is None:
        from repro.cache.keys import model_fingerprint
        fingerprint = model_fingerprint()
    if tag is None:
        tag = _default_tag()

    stopping = []
    previous = signal.signal(
        signal.SIGTERM, lambda _sig, _frame: stopping.append(True))

    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        server.bind((host, port))
        server.listen(1)
        bound_port = server.getsockname()[1]
        if port_file:
            _write_port_file(port_file, host, bound_port)
        print(f"sweep worker {tag} listening on {host}:{bound_port} "
              f"(fingerprint {fingerprint[:12]}...)", flush=True)
        # A short accept timeout keeps the loop responsive to SIGTERM
        # and lets --max-idle be enforced without a second thread.
        server.settimeout(0.5)
        idle_since = time.monotonic()
        while not stopping:
            if max_idle is not None \
                    and time.monotonic() - idle_since > max_idle:
                print(f"no coordinator in {max_idle:g}s; exiting",
                      flush=True)
                return 0
            try:
                conn, peer = server.accept()
            except socket.timeout:
                continue
            with conn:
                conn.settimeout(None)
                try:
                    ended = _serve_connection(conn, fingerprint, tag)
                except (OSError, ProtocolError) as exc:
                    print(f"connection from {peer[0]}:{peer[1]} failed: "
                          f"{exc}", file=sys.stderr, flush=True)
                    ended = "error"
            idle_since = time.monotonic()
            if ended == "shutdown":
                print("shutdown requested; exiting", flush=True)
                return 0
            if once:
                return 0
        print("SIGTERM; exiting", flush=True)
        return 0
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.close()


def cmd_serve(args: argparse.Namespace) -> int:
    return serve_worker(
        args.host, args.port, fingerprint=args.fingerprint, tag=args.tag,
        port_file=args.port_file, once=args.once, max_idle=args.max_idle)


def cmd_stop(args: argparse.Namespace) -> int:
    (addr,) = parse_workers([args.address])
    try:
        with socket.create_connection(addr, timeout=args.timeout) as conn:
            hello = recv_msg(conn)
            if not isinstance(hello, dict) or hello.get("type") != "hello":
                print(f"{args.address} is not a sweep worker",
                      file=sys.stderr)
                return 2
            send_msg(conn, {"type": "shutdown"})
    except OSError as exc:
        print(f"cannot reach worker {args.address}: {exc}",
              file=sys.stderr)
        return 3
    print(f"worker {hello.get('tag', '?')} at {args.address} stopping")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sweepworkerctl",
        description="launch and control remote sweep workers")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("serve", help="run a worker (blocks)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default localhost; think before "
                        "exposing a pickle endpoint more widely)")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (0 = ephemeral; see --port-file)")
    p.add_argument("--port-file", default=None,
                   help="write the bound host:port here (atomic)")
    p.add_argument("--tag", default=None,
                   help="worker name in progress/traces "
                        "(default <hostname>-<pid>)")
    p.add_argument("--fingerprint", default=None,
                   help="override the source-tree fingerprint "
                        "(testing the handshake)")
    p.add_argument("--once", action="store_true",
                   help="exit after one coordinator connection")
    p.add_argument("--max-idle", type=float, default=None,
                   help="exit after this many idle seconds")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("stop", help="shut a worker down remotely")
    p.add_argument("address", help="host:port of the worker")
    p.add_argument("--timeout", type=float, default=5.0)
    p.set_defaults(fn=cmd_stop)
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except RemoteBackendError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
