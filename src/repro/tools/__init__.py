"""Command-line tools.

- ``python -m repro.tools.figures <figure>|all`` — regenerate any of the
  paper's tables/figures from the calibrated models and print the report;
- ``python -m repro.tools.shdfls <file.shdf> [dataset]`` — inspect SHDF
  containers written by the runtime and the examples.
"""
