"""Regenerate the paper's tables and figures from the command line.

Usage::

    python -m repro.tools.figures            # list available figures
    python -m repro.tools.figures fig2       # regenerate one
    python -m repro.tools.figures all        # regenerate everything
    REPRO_FAST=1 python -m repro.tools.figures fig4   # trimmed sweep
    python -m repro.tools.figures --parallel 4 all    # 4 worker processes
    python -m repro.tools.figures --trace traces/ fig2   # record traces
    python -m repro.tools.figures --cache all         # reuse cached points
    python -m repro.tools.figures --cache --cache-dir /tmp/c fig4
    python -m repro.tools.figures --solver global fig2   # debug escape hatch
    python -m repro.tools.figures --solver sharded --shards 8 fig4
    python -m repro.tools.figures --kernel compiled fig4  # compiled solve
    python -m repro.tools.figures --scheduler heap fig2   # binary-heap queue
    python -m repro.tools.figures faults                  # fault degradation
    python -m repro.tools.figures --faults my_schedule.json faults
    python -m repro.tools.figures --backend remote \\
        --workers nodeA:7401,nodeA:7402 all      # distributed sweep

``--parallel N`` (or ``REPRO_PARALLEL=N`` in the environment) fans the
independent sweep configurations of each driver out over ``N`` worker
processes; results are bit-identical to a serial run.

``--backend serial|process|remote|dask`` (or ``REPRO_BACKEND``) picks
the sweep-execution backend: ``process`` (the default) is the local
pool sized by ``--parallel``; ``remote`` ships cache misses to TCP
workers launched with ``python -m repro.tools.sweepworkerctl serve``
on this or other machines — ``--workers host:port,host:port`` (or
``REPRO_WORKERS``) says where; ``dask`` submits to a Dask cluster
(needs the ``repro[dask]`` extra; scheduler address via
``REPRO_DASK_SCHEDULER``, else a local cluster). Every backend returns
bit-identical results; see the README's "Distributed sweeps" section.

``--trace DIR`` (or ``REPRO_TRACE=DIR``) records a structured trace of
every sweep configuration into ``DIR/<label>.jsonl``; inspect them with
``python -m repro.tools.tracereport``.

``--cache`` (or ``REPRO_CACHE=1``) serves sweep points from the
content-addressed result store in ``--cache-dir`` (``REPRO_CACHE_DIR``,
default ``~/.cache/repro/sweeps``) and writes back the rest; warm
results are bit-identical to cold ones and are invalidated
automatically whenever the ``repro`` source tree changes. ``--no-cache``
forces caching off regardless of the environment. Inspect and maintain
the store with ``python -m repro.tools.cachectl``. A ``--trace`` run
bypasses the cache (trace files are a side effect a hit would skip).

``--solver component|global|sharded`` (or ``REPRO_SOLVER``) picks the
bandwidth-share recomputation strategy: ``component`` (the default)
re-solves only the connected components of the resource-contention
graph touched since the last solve; ``global`` re-solves the whole
network every time — slower, but the reference behaviour to diff
against when debugging (bit-identical at ``fairness_slack=0``);
``sharded`` additionally min-cut-partitions oversized weakly coupled
components into ``--shards N`` sub-networks (``REPRO_SHARDS``, default
4) solved independently, with the cut reconciled to within
``fairness_slack``. The mode and the shard count are folded into cache
keys, so cached points never leak across solvers.

``--kernel compiled|python`` (or ``REPRO_KERNEL``) picks the
water-filling implementation: ``python`` (the default) is the numpy
solve, ``compiled`` runs the C/numba kernel from
:mod:`repro.des.kernels` — bit-identical, several times faster on
large storms, but needs a C compiler (or the ``repro[compiled]``
extra) at first use. ``--scheduler calendar|heap`` (or
``REPRO_SCHEDULER``) picks the event-queue implementation (calendar
queue by default; the binary heap is the fallback). Both modes are
folded into cache keys alongside the solver.

``--faults PATH`` (or ``REPRO_FAULTS=PATH``) points the ``faults``
driver at a fault-schedule JSON (see ``examples/fault_schedule.json``
and :mod:`repro.faults`); without it the driver runs the committed
example schedule. The schedule's contents are embedded in every sweep
spec, so cached points are keyed by the exact schedule — changing the
JSON re-runs only the affected points.

Each driver prints the same rows the corresponding bench asserts on and
that EXPERIMENTS.md documents.
"""

from __future__ import annotations

import os
import sys
from typing import Callable, Dict

from repro.experiments import figures

DRIVERS: Dict[str, Callable] = {
    "fig2": figures.fig2_write_phase_kraken,
    "fig3": figures.fig3_blueprint_volume,
    "fig4": figures.fig4_scalability_kraken,
    "fig5": figures.fig5_spare_time,
    "fig6": figures.fig6_throughput_kraken,
    "fig7": figures.fig7_spare_strategies,
    "table1": figures.table1_grid5000,
    "faults": figures.fig_fault_degradation,
    "model": figures.model_breakeven,
}


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--parallel" in argv:
        at = argv.index("--parallel")
        try:
            workers = int(argv[at + 1])
        except (IndexError, ValueError):
            print("--parallel requires an integer worker count",
                  file=sys.stderr)
            return 2
        del argv[at:at + 2]
        # The figure drivers pick this up through executor.run_sweep.
        os.environ["REPRO_PARALLEL"] = str(workers)
    if "--backend" in argv:
        at = argv.index("--backend")
        try:
            backend = argv[at + 1]
        except IndexError:
            print("--backend requires a mode "
                  "(serial|process|remote|dask)", file=sys.stderr)
            return 2
        from repro.experiments.backends import BACKENDS
        if backend not in BACKENDS:
            print(f"--backend must be one of {', '.join(BACKENDS)}, "
                  f"got {backend!r}", file=sys.stderr)
            return 2
        del argv[at:at + 2]
        # executor.run_sweep resolves this via default_backend_name().
        os.environ["REPRO_BACKEND"] = backend
    if "--workers" in argv:
        at = argv.index("--workers")
        try:
            worker_addrs = argv[at + 1]
        except IndexError:
            print("--workers requires host:port[,host:port...] addresses",
                  file=sys.stderr)
            return 2
        if worker_addrs.startswith("-"):
            print("--workers requires host:port[,host:port...] addresses",
                  file=sys.stderr)
            return 2
        del argv[at:at + 2]
        # The remote backend dials these (RemoteBackend falls back to
        # REPRO_WORKERS when constructed without addresses).
        os.environ["REPRO_WORKERS"] = worker_addrs
    if "--trace" in argv:
        at = argv.index("--trace")
        try:
            trace_dir = argv[at + 1]
        except IndexError:
            print("--trace requires an output directory", file=sys.stderr)
            return 2
        if trace_dir.startswith("-"):
            print("--trace requires an output directory", file=sys.stderr)
            return 2
        del argv[at:at + 2]
        # The sweep workers pick this up in specs.run_spec.
        os.environ["REPRO_TRACE"] = trace_dir
    if "--solver" in argv:
        at = argv.index("--solver")
        try:
            solver = argv[at + 1]
        except IndexError:
            print("--solver requires a mode (component|global|sharded)",
                  file=sys.stderr)
            return 2
        if solver not in ("component", "global", "sharded"):
            print(f"--solver must be 'component', 'global' or 'sharded', "
                  f"got {solver!r}", file=sys.stderr)
            return 2
        del argv[at:at + 2]
        # FlowNetwork reads this when each sweep worker builds its machine.
        os.environ["REPRO_SOLVER"] = solver
    if "--shards" in argv:
        at = argv.index("--shards")
        try:
            shards = int(argv[at + 1])
        except (IndexError, ValueError):
            print("--shards requires an integer shard count",
                  file=sys.stderr)
            return 2
        if shards < 1:
            print(f"--shards must be >= 1, got {shards}", file=sys.stderr)
            return 2
        del argv[at:at + 2]
        # FlowNetwork reads this when each sweep worker builds its
        # machine; only the sharded solver acts on it, but it is always
        # folded into cache keys (it changes sharded results).
        os.environ["REPRO_SHARDS"] = str(shards)
    if "--kernel" in argv:
        at = argv.index("--kernel")
        try:
            kernel = argv[at + 1]
        except IndexError:
            print("--kernel requires a mode (compiled|python)",
                  file=sys.stderr)
            return 2
        if kernel not in ("compiled", "python"):
            print(f"--kernel must be 'compiled' or 'python', got {kernel!r}",
                  file=sys.stderr)
            return 2
        del argv[at:at + 2]
        # FlowNetwork reads this when each sweep worker builds its machine.
        os.environ["REPRO_KERNEL"] = kernel
    if "--scheduler" in argv:
        at = argv.index("--scheduler")
        try:
            scheduler = argv[at + 1]
        except IndexError:
            print("--scheduler requires a mode (calendar|heap)",
                  file=sys.stderr)
            return 2
        if scheduler not in ("calendar", "heap"):
            print(f"--scheduler must be 'calendar' or 'heap', "
                  f"got {scheduler!r}", file=sys.stderr)
            return 2
        del argv[at:at + 2]
        # Simulator reads this when each sweep worker builds its machine.
        os.environ["REPRO_SCHEDULER"] = scheduler
    if "--faults" in argv:
        at = argv.index("--faults")
        try:
            faults_path = argv[at + 1]
        except IndexError:
            print("--faults requires a schedule JSON path", file=sys.stderr)
            return 2
        if faults_path.startswith("-"):
            print("--faults requires a schedule JSON path", file=sys.stderr)
            return 2
        if not os.path.exists(faults_path):
            print(f"--faults: no such file: {faults_path}", file=sys.stderr)
            return 2
        del argv[at:at + 2]
        # figures.fig_fault_degradation loads the schedule from here;
        # the parsed faults land inside each sweep spec, so cache keys
        # fold the schedule contents automatically.
        os.environ["REPRO_FAULTS"] = faults_path
    if "--cache-dir" in argv:
        at = argv.index("--cache-dir")
        try:
            cache_dir = argv[at + 1]
        except IndexError:
            print("--cache-dir requires a directory", file=sys.stderr)
            return 2
        if cache_dir.startswith("-"):
            print("--cache-dir requires a directory", file=sys.stderr)
            return 2
        del argv[at:at + 2]
        os.environ["REPRO_CACHE_DIR"] = cache_dir
    if "--cache" in argv:
        argv.remove("--cache")
        # executor.run_sweep resolves this through cache_from_env().
        os.environ["REPRO_CACHE"] = "1"
    if "--no-cache" in argv:
        argv.remove("--no-cache")
        os.environ["REPRO_CACHE"] = "0"
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        print("available figures:", ", ".join(sorted(DRIVERS)), "| all")
        return 0
    names = sorted(DRIVERS) if argv[0] == "all" else argv
    unknown = [name for name in names if name not in DRIVERS]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}; "
              f"available: {', '.join(sorted(DRIVERS))}", file=sys.stderr)
        return 2
    for name in names:
        report = DRIVERS[name]()
        print(report.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
