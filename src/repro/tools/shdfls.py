"""Inspect SHDF containers.

Usage::

    python -m repro.tools.shdfls out/node0/iter000002.shdf
    python -m repro.tools.shdfls out/node0/iter000002.shdf theta/src0

Without a dataset argument, lists the file's groups, datasets, shapes,
stored sizes and compression ratios. With one, prints the dataset's
summary statistics.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.formats.shdf import SHDFReader
from repro.units import fmt_bytes


def describe_file(reader: SHDFReader) -> str:
    lines = [f"SHDF container: {reader.path}"]
    if reader.attrs:
        lines.append(f"  attributes: {reader.attrs}")
    if reader.groups:
        lines.append(f"  groups: {', '.join(reader.groups)}")
    lines.append(f"  datasets ({len(reader.datasets)}):")
    for name in reader.datasets:
        info = reader.dataset_info(name)
        raw, stored = info["raw_bytes"], info["stored_bytes"]
        ratio = 100.0 * raw / stored if stored else 0.0
        lines.append(
            f"    {name:32s} {str(tuple(info['shape'])):>16s} "
            f"{info['dtype']:>8s}  {fmt_bytes(raw):>10s} -> "
            f"{fmt_bytes(stored):>10s} ({ratio:.0f} %)")
    return "\n".join(lines)


def describe_dataset(reader: SHDFReader, name: str) -> str:
    array = reader.read_dataset(name)
    attrs = reader.dataset_attrs(name)
    lines = [
        f"dataset {name!r} of {reader.path}",
        f"  shape {array.shape}, dtype {array.dtype}",
        f"  min {array.min():.6g}  max {array.max():.6g}  "
        f"mean {array.mean():.6g}  std {array.std():.6g}",
    ]
    if attrs:
        lines.append(f"  attributes: {attrs}")
    return "\n".join(lines)


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    path = argv[0]
    with SHDFReader(path) as reader:
        if len(argv) > 1:
            print(describe_dataset(reader, argv[1]))
        else:
            print(describe_file(reader))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
