"""Applications: the CM1 mini-kernel, its DES workload model and a
synthetic I/O benchmark.

- :mod:`repro.apps.cm1` — a real (numpy) non-hydrostatic atmospheric
  kernel producing CM1-like 3-D fields; used by the examples and the
  compression-ratio bench (real entropy matters there);
- :mod:`repro.apps.workload` — the DES-side description of CM1's
  behaviour: domain decomposition, per-core output volume, compute time
  per iteration (the paper's weak-scaling configurations for Kraken,
  Grid'5000 and BluePrint);
- :mod:`repro.apps.iobench` — a minimal fixed-size writer for
  micro-benchmarks and ablations.
"""

from repro.apps.cm1 import MiniCM1
from repro.apps.workload import CM1Workload
from repro.apps.iobench import IOBenchWorkload
from repro.apps.postproc import (
    OutputCatalog,
    StormDiagnostics,
    storm_time_series,
)

__all__ = [
    "CM1Workload",
    "IOBenchWorkload",
    "MiniCM1",
    "OutputCatalog",
    "StormDiagnostics",
    "storm_time_series",
]
