"""CM1 as a DES workload: domain decomposition, volumes and compute times.

The paper's weak-scaling configurations:

- **Kraken** — each process handles a 44×44×200-point subdomain
  (48×44×200 under Damaris so the total problem stays equal);
- **Grid'5000** — 1104×1120×200 total; 46×40×200 per core
  (48×40×200 under Damaris); 15.8 GB uncompressed per write phase at 672
  cores ≈ 24 MB per process;
- **BluePrint** — 960×960×300 total; 30×30×300 per core (24×40×300 under
  Damaris); output volume varied by enabling/disabling variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import prod
from typing import Dict, List, Tuple

from repro.errors import ReproError

__all__ = ["CM1Workload"]

#: (name, bytes per element) of the CM1 output variables; float32 fields.
DEFAULT_VARIABLES: Tuple[Tuple[str, int], ...] = (
    ("u", 4), ("v", 4), ("w", 4), ("theta", 4), ("prs", 4), ("qv", 4),
)

#: The fuller CM1 output set (microphysics, turbulence, diagnostics) used
#: on Grid'5000, where the paper reports ~24 MB per process per phase —
#: 64 B per grid point, i.e. sixteen float32 fields.
EXTENDED_VARIABLES: Tuple[Tuple[str, int], ...] = DEFAULT_VARIABLES + (
    ("qc", 4), ("qr", 4), ("qi", 4), ("qs", 4), ("qg", 4),
    ("tke", 4), ("kh", 4), ("km", 4), ("rho", 4), ("dbz", 4),
)


@dataclass
class CM1Workload:
    """Weak-scaling CM1 workload description for the DES harness.

    ``subdomain`` is the per-core grid when *all* cores compute;
    ``seconds_per_iteration`` is the compute time of one model step on one
    such subdomain. When cores are dedicated to Damaris, the remaining
    cores' subdomains grow so the global problem is unchanged and the
    iteration time dilates by ``total/(total - dedicated)``.
    """

    subdomain: Tuple[int, int, int] = (44, 44, 200)
    variables: Tuple[Tuple[str, int], ...] = DEFAULT_VARIABLES
    seconds_per_iteration: float = 4.1
    iterations_per_output: int = 50

    def __post_init__(self) -> None:
        if any(d < 1 for d in self.subdomain):
            raise ReproError(f"bad subdomain {self.subdomain}")
        if self.seconds_per_iteration <= 0:
            raise ReproError("seconds_per_iteration must be > 0")
        if self.iterations_per_output < 1:
            raise ReproError("iterations_per_output must be >= 1")
        if not self.variables:
            raise ReproError("workload needs at least one variable")

    # ------------------------------------------------------------------ #
    # volumes
    # ------------------------------------------------------------------ #
    @property
    def points_per_core(self) -> int:
        return prod(self.subdomain)

    @property
    def bytes_per_element(self) -> int:
        return sum(size for _, size in self.variables)

    def bytes_per_core(self, dilation: float = 1.0) -> int:
        """Output bytes per core per write phase (all variables)."""
        return int(self.points_per_core * self.bytes_per_element * dilation)

    def total_bytes(self, ncores: int, dilation: float = 1.0) -> int:
        return self.bytes_per_core(dilation) * ncores

    def variable_bytes(self, dilation: float = 1.0) -> Dict[str, int]:
        """Per-variable bytes for one core's subdomain."""
        return {
            name: int(self.points_per_core * size * dilation)
            for name, size in self.variables
        }

    # ------------------------------------------------------------------ #
    # compute model
    # ------------------------------------------------------------------ #
    def dilation(self, cores_per_node: int, dedicated_per_node: int) -> float:
        """Per-core growth factor when ``dedicated_per_node`` cores stop
        computing (paper: 44→48 points in x on Kraken's 12-core nodes)."""
        active = cores_per_node - dedicated_per_node
        if active < 1:
            raise ReproError(
                f"no compute cores left ({dedicated_per_node} of "
                f"{cores_per_node} dedicated)")
        return cores_per_node / active

    def iteration_seconds(self, dilation: float = 1.0) -> float:
        """Time of one model iteration on a (possibly grown) subdomain,
        assuming the solver scales linearly in points."""
        return self.seconds_per_iteration * dilation

    def compute_block_seconds(self, dilation: float = 1.0) -> float:
        """Nominal time of one inter-output compute block."""
        return self.iteration_seconds(dilation) * self.iterations_per_output

    # ------------------------------------------------------------------ #
    # paper presets
    # ------------------------------------------------------------------ #
    @classmethod
    def kraken(cls) -> "CM1Workload":
        return cls(subdomain=(44, 44, 200), seconds_per_iteration=4.1,
                   iterations_per_output=50)

    @classmethod
    def grid5000(cls) -> "CM1Workload":
        # 46x40x200 points x 16 float32 variables = 23.6 MB/process,
        # matching the paper's 15.8 GB per phase at 672 cores. The
        # iteration time is set so file-per-process spends ~4.2 % of the
        # run in I/O (Section IV-C1) when writing every 20 iterations.
        return cls(subdomain=(46, 40, 200), variables=EXTENDED_VARIABLES,
                   seconds_per_iteration=25.0, iterations_per_output=20)

    @classmethod
    def blueprint(cls, nvariables: int = 6) -> "CM1Workload":
        if not 1 <= nvariables <= len(DEFAULT_VARIABLES):
            raise ReproError(
                f"nvariables must be 1..{len(DEFAULT_VARIABLES)}")
        return cls(subdomain=(30, 30, 300),
                   variables=DEFAULT_VARIABLES[:nvariables],
                   seconds_per_iteration=4.5, iterations_per_output=50)
