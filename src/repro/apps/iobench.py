"""A synthetic fixed-volume I/O workload for micro-benchmarks/ablations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.apps.workload import CM1Workload
from repro.errors import ReproError
from repro.units import MiB

__all__ = ["IOBenchWorkload"]


@dataclass
class IOBenchWorkload(CM1Workload):
    """A single synthetic variable of exactly ``bytes_per_rank`` bytes."""

    bytes_per_rank: int = 24 * MiB
    compute_seconds: float = 10.0

    def __init__(self, bytes_per_rank: int = 24 * MiB,
                 compute_seconds: float = 10.0,
                 iterations_per_output: int = 1) -> None:
        if bytes_per_rank < 4:
            raise ReproError("bytes_per_rank must be >= 4")
        # One float32 variable with exactly the requested volume.
        points = bytes_per_rank // 4
        super().__init__(
            subdomain=(points, 1, 1),
            variables=(("payload", 4),),
            seconds_per_iteration=compute_seconds,
            iterations_per_output=iterations_per_output,
        )
        self.bytes_per_rank = bytes_per_rank
        self.compute_seconds = compute_seconds
