"""Offline post-processing of Damaris output.

The paper's premise: "most data written by HPC applications are only
eventually read by analysis tasks but not used by the simulation itself".
This module is that analysis task — it walks a Damaris output directory
(one SHDF file per node per iteration, as written by
:mod:`repro.runtime`), reassembles each iteration's fields from the
per-source datasets, and computes storm diagnostics over time.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.shdf import SHDFReader

__all__ = ["OutputCatalog", "StormDiagnostics", "load_iteration",
           "storm_time_series"]

_FILE_RE = re.compile(r"iter(\d+)\.(shdf|h5)$")


@dataclass
class OutputCatalog:
    """Index of a Damaris output directory: iteration → files."""

    root: str
    files_by_iteration: Dict[int, List[str]] = field(default_factory=dict)

    @classmethod
    def scan(cls, root: str) -> "OutputCatalog":
        catalog = cls(root=root)
        if not os.path.isdir(root):
            raise FormatError(f"{root!r} is not a directory")
        for dirpath, _dirnames, filenames in os.walk(root):
            for filename in sorted(filenames):
                match = _FILE_RE.search(filename)
                if match:
                    iteration = int(match.group(1))
                    catalog.files_by_iteration.setdefault(
                        iteration, []).append(os.path.join(dirpath,
                                                           filename))
        return catalog

    @property
    def iterations(self) -> List[int]:
        return sorted(self.files_by_iteration)

    def files(self, iteration: int) -> List[str]:
        try:
            return self.files_by_iteration[iteration]
        except KeyError:
            raise FormatError(
                f"no output files for iteration {iteration} under "
                f"{self.root!r}") from None


def load_iteration(catalog: OutputCatalog, iteration: int,
                   variable: str) -> Dict[int, np.ndarray]:
    """All sources' arrays of ``variable`` at ``iteration``, keyed by the
    writing rank."""
    out: Dict[int, np.ndarray] = {}
    for path in catalog.files(iteration):
        with SHDFReader(path) as reader:
            for name in reader.datasets:
                parts = name.split("/")
                if parts[0] != variable or not parts[-1].startswith("src"):
                    continue
                source = int(parts[-1][3:])
                out[source] = reader.read_dataset(name)
    if not out:
        raise FormatError(
            f"variable {variable!r} not found at iteration {iteration}")
    return out


def assemble_global(pieces: Dict[int, np.ndarray],
                    axis: int = 0) -> np.ndarray:
    """Concatenate per-rank subdomains (rank-ordered) along ``axis`` —
    the inverse of MiniCM1's 1-D horizontal decomposition."""
    if not pieces:
        raise FormatError("nothing to assemble")
    return np.concatenate([pieces[rank] for rank in sorted(pieces)],
                          axis=axis)


@dataclass(frozen=True)
class StormDiagnostics:
    """Per-iteration storm summary (the classic CM1 analysis)."""

    iteration: int
    max_updraft: float
    max_theta_perturbation: float
    updraft_volume_fraction: float

    @staticmethod
    def compute(iteration: int, w: np.ndarray,
                theta: np.ndarray,
                updraft_threshold: float = 1.0) -> "StormDiagnostics":
        return StormDiagnostics(
            iteration=iteration,
            max_updraft=float(w.max()),
            max_theta_perturbation=float(np.abs(theta).max()),
            updraft_volume_fraction=float((w > updraft_threshold).mean()),
        )


def storm_time_series(root: str, w_name: str = "w",
                      theta_name: str = "theta",
                      axis: int = 0) -> List[StormDiagnostics]:
    """The full offline analysis: scan, reassemble, diagnose, per
    iteration."""
    catalog = OutputCatalog.scan(root)
    series = []
    for iteration in catalog.iterations:
        w = assemble_global(load_iteration(catalog, iteration, w_name),
                            axis=axis)
        theta = assemble_global(
            load_iteration(catalog, iteration, theta_name), axis=axis)
        series.append(StormDiagnostics.compute(iteration, w, theta))
    return series
