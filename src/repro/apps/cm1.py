"""A miniature CM1: warm-bubble convection on a 3-D grid.

CM1 (Bryan & Fritsch 2002) models small-scale atmospheric phenomena —
thunderstorms, tornadoes. This mini-kernel reproduces its *shape* as an
I/O workload: a fixed 3-D domain, a handful of prognostic variables
(winds, potential temperature, pressure, moisture), alternating compute
and output phases, and spatially smooth fields whose entropy matches what
the paper's compression experiments rely on (gzip ≈ 1.9×, 16-bit + gzip
≈ 6×).

The dynamics are a simplified anelastic system: advection by the wind
field (first-order upwind), buoyancy driving vertical motion, diffusion,
and a rising warm bubble as the initial condition. It is *not* a
meteorologically faithful CM1 — it is a numerically real workload
generator with CM1's data characteristics.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.errors import ReproError

__all__ = ["MiniCM1"]

#: The prognostic variables the kernel evolves and outputs, with the
#: conventional CM1 names.
VARIABLE_NAMES = ("u", "v", "w", "theta", "prs", "qv")


class MiniCM1:
    """Warm-bubble convection solver on an ``nx × ny × nz`` grid."""

    def __init__(self, nx: int = 64, ny: int = 64, nz: int = 40,
                 dx: float = 250.0, dz: float = 250.0, dt: float = 1.0,
                 diffusion: float = 0.02, seed: int = 0) -> None:
        if min(nx, ny, nz) < 4:
            raise ReproError("grid must be at least 4 points per dimension")
        self.nx, self.ny, self.nz = nx, ny, nz
        self.dx, self.dz, self.dt = dx, dz, dt
        self.diffusion = diffusion
        self.iteration = 0
        rng = np.random.default_rng(seed)

        shape = (nx, ny, nz)
        # Winds (m/s): a sheared zonal profile (constant per level, so the
        # far field stays homogeneous — real atmospheric output has large
        # smooth regions, which is what makes the paper's compression
        # ratios achievable). A small perturbation near the bubble breaks
        # symmetry without salting the whole domain with noise.
        self.u = np.zeros(shape, dtype=np.float32)
        self.v = np.zeros(shape, dtype=np.float32)
        self.w = np.zeros(shape, dtype=np.float32)
        z = np.linspace(0.0, 1.0, nz, dtype=np.float32)
        self.u += np.round(4.0 * z, 3)[None, None, :]
        core = (slice(nx // 2 - 2, nx // 2 + 2),
                slice(ny // 2 - 2, ny // 2 + 2), slice(0, nz))
        self.u[core] += rng.normal(0, 0.05, self.u[core].shape) \
            .astype(np.float32)
        self.v[core] += rng.normal(0, 0.05, self.v[core].shape) \
            .astype(np.float32)

        # Potential temperature perturbation (K): the warm bubble, with
        # exact zeros outside (CM1's theta' is zero in the unperturbed
        # environment).
        x = np.linspace(-1.0, 1.0, nx, dtype=np.float32)
        y = np.linspace(-1.0, 1.0, ny, dtype=np.float32)
        zc = np.linspace(0.0, 2.0, nz, dtype=np.float32)
        bubble = (x[:, None, None] ** 2 + y[None, :, None] ** 2
                  + (zc[None, None, :] - 0.5) ** 2)
        theta = 3.0 * np.exp(-8.0 * bubble)
        theta[theta < 1e-3] = 0.0
        self.theta = theta.astype(np.float32)

        # Pressure perturbation (Pa) and water vapour (kg/kg): qv is a
        # pure sounding profile (constant per level).
        self.prs = np.zeros(shape, dtype=np.float32)
        self.qv = np.broadcast_to(
            np.round(0.014 * np.exp(-2.0 * zc), 6)[None, None, :],
            shape).astype(np.float32).copy()

    # ------------------------------------------------------------------ #
    # dynamics
    # ------------------------------------------------------------------ #
    def step(self, n: int = 1) -> None:
        """Advance the solver ``n`` time steps."""
        for _ in range(n):
            self._advect_all()
            self._buoyancy()
            self._diffuse_all()
            self._pressure_diagnostic()
            self.iteration += 1

    def _upwind(self, field: np.ndarray) -> np.ndarray:
        """First-order upwind advection tendency of ``field``."""
        dt_dx = self.dt / self.dx
        dt_dz = self.dt / self.dz
        # X direction.
        dfdx_minus = field - np.roll(field, 1, axis=0)
        dfdx_plus = np.roll(field, -1, axis=0) - field
        tend = -dt_dx * (np.maximum(self.u, 0) * dfdx_minus
                         + np.minimum(self.u, 0) * dfdx_plus)
        # Y direction.
        dfdy_minus = field - np.roll(field, 1, axis=1)
        dfdy_plus = np.roll(field, -1, axis=1) - field
        tend -= dt_dx * (np.maximum(self.v, 0) * dfdy_minus
                         + np.minimum(self.v, 0) * dfdy_plus)
        # Z direction (no wraparound: clamp boundaries after).
        dfdz_minus = field - np.roll(field, 1, axis=2)
        dfdz_plus = np.roll(field, -1, axis=2) - field
        tend -= dt_dz * (np.maximum(self.w, 0) * dfdz_minus
                         + np.minimum(self.w, 0) * dfdz_plus)
        return tend

    def _advect_all(self) -> None:
        for name in ("theta", "qv", "u", "v", "w"):
            field = getattr(self, name)
            field += self._upwind(field)
        # Rigid lid and surface.
        self.w[:, :, 0] = 0.0
        self.w[:, :, -1] = 0.0

    def _buoyancy(self) -> None:
        # g * theta'/theta0, with theta0 = 300 K.
        self.w += (self.dt * 9.81 / 300.0) * self.theta
        self.w[:, :, 0] = 0.0
        self.w[:, :, -1] = 0.0

    def _diffuse_all(self) -> None:
        k = self.diffusion
        for name in ("theta", "qv", "u", "v", "w"):
            field = getattr(self, name)
            lap = (-6.0 * field
                   + np.roll(field, 1, 0) + np.roll(field, -1, 0)
                   + np.roll(field, 1, 1) + np.roll(field, -1, 1)
                   + np.roll(field, 1, 2) + np.roll(field, -1, 2))
            field += k * lap

    def _pressure_diagnostic(self) -> None:
        # A cheap diagnostic pressure from the divergence field.
        div = (np.roll(self.u, -1, 0) - self.u
               + np.roll(self.v, -1, 1) - self.v
               + np.roll(self.w, -1, 2) - self.w)
        self.prs = (-50.0 * div).astype(np.float32)

    # ------------------------------------------------------------------ #
    # output interface
    # ------------------------------------------------------------------ #
    def variables(self) -> Dict[str, np.ndarray]:
        """The output fields, keyed by CM1 variable name."""
        return {name: getattr(self, name) for name in VARIABLE_NAMES}

    @property
    def bytes_per_output(self) -> int:
        return sum(field.nbytes for field in self.variables().values())

    def max_w(self) -> float:
        """Peak updraft speed — the classic CM1 convection diagnostic."""
        return float(np.max(self.w))

    def subdomain(self, rank: int, px: int, py: int) -> Dict[str, np.ndarray]:
        """The fields of one rank's subdomain under a ``px × py`` 2-D
        decomposition (CM1 splits the horizontal plane)."""
        if rank < 0 or rank >= px * py:
            raise ReproError(f"rank {rank} out of range for {px}x{py} grid")
        if self.nx % px or self.ny % py:
            raise ReproError(
                f"domain {self.nx}x{self.ny} not divisible by {px}x{py}")
        ix, iy = rank % px, rank // px
        sx, sy = self.nx // px, self.ny // py
        view = (slice(ix * sx, (ix + 1) * sx),
                slice(iy * sy, (iy + 1) * sy), slice(None))
        return {name: field[view] for name, field in
                self.variables().items()}
