"""The asyncio sweep-service server.

:class:`SweepService` turns the repo's experiment engine into a shared,
multi-tenant job server, the service-side mirror of the paper's core
move: dedicate resources to I/O-like work and feed them through a queue
so clients see predictable service instead of interference. One asyncio
process owns:

- a **job queue** (:class:`~repro.service.queue.JobQueue`) drained by a
  bounded set of runner tasks into the sweep executor's
  :class:`~repro.experiments.backends.ProcessBackend` (the same
  process-pool backend ``run_sweep`` schedules over);
- **cache-aware admission**: each spec's content address is computed in
  the parent (same :mod:`repro.cache` keys ``run_sweep`` uses), hits are
  served without touching the pool, and concurrent misses on one key —
  *across tenants* — collapse into a single in-flight computation whose
  result every waiter shares and only the originator writes back;
- **quotas and rate limits** (:class:`~repro.service.quotas.QuotaManager`)
  applied at submission with typed rejections;
- a **Prometheus** ``/metrics`` page (queue depth, active jobs, cache
  hit/miss counters, solver/scheduler/fault counters harvested from
  worker traces, per-tenant usage).

HTTP endpoints (JSON; one request per connection):

==========================================  ================================
``GET  /healthz``                           liveness + drain state
``GET  /metrics``                           Prometheus text format
``POST /v1/jobs``                           submit ``{specs, priority,
                                            label, tenant}``
``GET  /v1/jobs``                           list snapshots (``?tenant=``)
``GET  /v1/jobs/<id>``                      status snapshot
``GET  /v1/jobs/<id>/events``               ``?after=N&wait=S`` long-poll
``GET  /v1/jobs/<id>/result``               results once terminal (409
                                            before; typed error if failed)
``DELETE /v1/jobs/<id>``                    cancel (queued or running)
``POST /v1/admin/drain``                    stop admitting, finish in-flight
==========================================  ================================
"""

from __future__ import annotations

import asyncio
import concurrent.futures
from typing import Any, Callable, Dict, List, Optional

from repro.experiments.backends import ProcessBackend

from repro.service import http
from repro.service.errors import (
    InvalidSpecError,
    JobNotFinishedError,
    ServiceDrainingError,
    ServiceError,
    UnknownJobError,
    WorkerCrashedError,
    error_payload,
)
from repro.service.jobs import TERMINAL_STATES, Job, validate_job_payload
from repro.service.metrics import MetricsRegistry
from repro.service.queue import JobQueue, QueueClosed
from repro.service.quotas import QuotaManager
from repro.service.worker import run_service_spec

__all__ = ["SweepService", "DEFAULT_TENANT"]

DEFAULT_TENANT = "anonymous"

_MAX_EVENT_WAIT = 30.0


class SweepService:
    """The job server; create, then ``await start()`` inside a loop.

    Parameters mirror the deployment knobs:

    - ``workers`` — compute pool size (``None``: executor default);
    - ``job_slots`` — jobs executing concurrently (queue drain width);
    - ``cache`` — a :class:`~repro.cache.ResultCache`, ``None`` for the
      environment default, or ``False`` to disable caching;
    - ``quotas`` — a :class:`~repro.service.quotas.QuotaManager`
      (defaults to one with stock :class:`TenantPolicy` limits);
    - ``clock`` — monotonic seconds for job timestamps and rate
      limiting (injectable for deterministic tests);
    - ``runner`` — the module-level function executed per spec in the
      pool (defaults to :func:`~repro.service.worker.run_service_spec`;
      tests substitute cheap stand-ins).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 workers: Optional[int] = None,
                 job_slots: int = 4,
                 cache: Any = None,
                 quotas: Optional[QuotaManager] = None,
                 clock: Optional[Callable[[], float]] = None,
                 runner: Optional[Callable[[Dict[str, Any]],
                                           Dict[str, Any]]] = None) -> None:
        from repro.experiments.executor import _resolve_cache

        self.host = host
        self.port = port
        self._workers = workers
        self._job_slots = max(1, int(job_slots))
        self._cache = _resolve_cache(cache)
        self._clock = clock
        self._runner = runner if runner is not None else run_service_spec
        self.quotas = quotas if quotas is not None \
            else QuotaManager(clock=clock)

        self.queue = JobQueue()
        self.jobs: Dict[str, Job] = {}
        self._backend: Optional[ProcessBackend] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._runners: List[asyncio.Task] = []
        self._job_tasks: Dict[str, asyncio.Task] = {}
        self._inflight: Dict[str, asyncio.Task] = {}
        self._conn_tasks: set = set()
        self._events_cond: Optional[asyncio.Condition] = None
        self._draining = False
        self._stopped = False

        self.metrics = MetricsRegistry()
        self._m_queue_depth = self.metrics.gauge(
            "repro_queue_depth", "Jobs queued and not yet dispatched.")
        self._m_jobs_active = self.metrics.gauge(
            "repro_jobs_active", "Jobs currently executing.")
        self._m_jobs_total = self.metrics.counter(
            "repro_jobs_total", "Jobs finished, by terminal state.",
            ("state",))
        self._m_specs_total = self.metrics.counter(
            "repro_specs_total",
            "Specs served, by provenance (cache hit vs pool compute).",
            ("source",))
        self._m_rejections = self.metrics.counter(
            "repro_rejections_total", "Submissions rejected, by kind.",
            ("kind",))
        self._m_cache_events = self.metrics.counter(
            "repro_cache_events_total",
            "Result-cache store activity, by event.", ("event",))
        self._m_cache_ratio = self.metrics.gauge(
            "repro_cache_hit_ratio",
            "Store hits over hits plus misses, cumulative.")
        self._m_sim_events = self.metrics.counter(
            "repro_sim_events_total",
            "Solver/scheduler/fault counters harvested from run traces.",
            ("counter",))
        self._m_worker_crashes = self.metrics.counter(
            "repro_worker_crashes_total",
            "Compute-pool workers lost mid-task.")
        self._m_backend_tasks = self.metrics.counter(
            "repro_backend_tasks_total",
            "Sweep-backend dispatch events (same counters run_sweep "
            "traces under REPRO_TRACE).", ("event",))
        self._m_tenant_jobs = self.metrics.gauge(
            "repro_tenant_jobs_submitted", "Jobs admitted, per tenant.",
            ("tenant",))
        self._m_tenant_specs = self.metrics.gauge(
            "repro_tenant_specs_submitted", "Specs admitted, per tenant.",
            ("tenant",))
        self._m_tenant_rejected = self.metrics.gauge(
            "repro_tenant_jobs_rejected", "Jobs rejected, per tenant.",
            ("tenant",))
        self._m_tenant_active = self.metrics.gauge(
            "repro_tenant_jobs_active",
            "Jobs currently open (queued or running), per tenant.",
            ("tenant",))
        if self._cache is not None:
            self._cache.add_stats_listener(
                lambda stat, n: self._m_cache_events.inc(n, event=stat))

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self._draining

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return asyncio.get_running_loop().time()

    @property
    def _pool(self):
        """The backend's live pool (``None`` before start / after stop).

        Test fixtures reach through this to find worker pids; it never
        *creates* a pool, unlike ``self._backend.pool``.
        """
        backend = self._backend
        return None if backend is None else backend._pool

    async def start(self) -> None:
        """Bind the listener and start the queue runners."""
        self._events_cond = asyncio.Condition()
        self._backend = ProcessBackend(workers=self._workers)
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._runners = [
            asyncio.ensure_future(self._runner_loop())
            for _ in range(self._job_slots)]

    async def drain(self) -> None:
        """Refuse new submissions; queued and running jobs complete."""
        self._draining = True
        await self.queue.close()

    async def stop(self, timeout: Optional[float] = None) -> None:
        """Drain, wait for in-flight jobs, and release every resource.

        Runner tasks exit once the closed queue empties; the pool is
        then shut down with ``wait=True`` so no worker process outlives
        the server.
        """
        if self._stopped:
            return
        self._stopped = True
        await self.drain()
        if self._runners:
            done, pending = await asyncio.wait(
                self._runners, timeout=timeout)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        for task in list(self._inflight.values()):
            task.cancel()
        if self._inflight:
            await asyncio.gather(*self._inflight.values(),
                                 return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks),
                                 return_exceptions=True)
        if self._backend is not None:
            self._backend.close()
            self._backend = None
        if self._cache is not None:
            self._cache.flush()

    # ------------------------------------------------------------------ #
    # job execution
    # ------------------------------------------------------------------ #
    async def _runner_loop(self) -> None:
        while True:
            try:
                job = await self.queue.get()
            except QueueClosed:
                return
            if job.state != "queued":  # cancelled while queued
                continue
            task = asyncio.ensure_future(self._execute_job(job))
            self._job_tasks[job.job_id] = task
            try:
                await task
            except asyncio.CancelledError:
                if not task.cancelled():
                    raise  # the runner itself was cancelled
            except Exception:
                pass  # job-level failures are recorded on the job
            finally:
                self._job_tasks.pop(job.job_id, None)

    async def _execute_job(self, job: Job) -> None:
        job.mark_running()
        self._m_jobs_active.inc()
        await self._notify_watchers()
        try:
            for index, spec in enumerate(job.specs):
                payload, source = await self._resolve_spec(spec)
                job.record_result(index, payload["summary"], source)
                job.merge_counters(payload.get("counters", {}))
                self._m_specs_total.inc(source=source)
                for name, value in payload.get("counters", {}).items():
                    if value:
                        self._m_sim_events.inc(float(value), counter=name)
                await self._notify_watchers()
            self._finish_job(job, "done")
        except asyncio.CancelledError:
            self._finish_job(job, "cancelled")
            raise
        except ServiceError as exc:
            self._finish_job(job, "failed",
                             error_payload(exc)["error"])
        except Exception as exc:  # spec raised inside a worker
            self._finish_job(job, "failed", {
                "kind": "task_failed",
                "message": f"{type(exc).__name__}: {exc}",
                "details": {}})
        finally:
            self._m_jobs_active.dec()
            await self._notify_watchers()

    def _finish_job(self, job: Job, state: str,
                    error: Optional[Dict[str, Any]] = None) -> None:
        job.finish(state, error)
        self._m_jobs_total.inc(state=state)
        self.quotas.release(job.tenant)

    async def _resolve_spec(self, spec: Dict[str, Any]):
        """One spec → ``(payload, source)`` via cache, dedup, or pool."""
        key = None
        if self._cache is not None:
            from repro.experiments.executor import resolve_cache_context
            key = self._cache.key_for(
                self._runner, (spec,), {},
                context=resolve_cache_context(self._cache))
            if key is not None:
                hit, value = self._cache.get(key)
                if hit:
                    return value, "cache"
        if key is not None and key in self._inflight:
            # Another job — possibly another tenant — is already
            # computing this exact spec; share its result.
            payload = await asyncio.shield(self._inflight[key])
            return payload, "cache"
        task = asyncio.ensure_future(self._compute(spec, key))
        if key is not None:
            self._inflight[key] = task
            task.add_done_callback(
                lambda _t, _k=key: self._inflight.pop(_k, None))
        payload = await asyncio.shield(task)
        return payload, "pool"

    async def _compute(self, spec: Dict[str, Any],
                       key: Optional[str]) -> Dict[str, Any]:
        """Run one spec in the backend; only this task writes the cache."""
        assert self._backend is not None
        self._m_backend_tasks.inc(event="dispatched")
        try:
            payload = await asyncio.wrap_future(
                self._backend.submit_call(self._runner, spec))
        except concurrent.futures.process.BrokenProcessPool:
            # A worker died (OOM-kill, SIGKILL, crash). Replace the
            # broken pool so the *server* keeps serving, and surface a
            # typed failure on the affected job(s).
            self._m_worker_crashes.inc()
            self._m_backend_tasks.inc(event="crashed")
            self._backend.replace_broken()
            raise WorkerCrashedError(
                "a compute-pool worker died while running this spec; "
                "the pool has been replaced") from None
        self._m_backend_tasks.inc(event="completed")
        if key is not None and self._cache is not None:
            self._cache.put(key, payload)
        return payload

    async def _notify_watchers(self) -> None:
        assert self._events_cond is not None
        async with self._events_cond:
            self._events_cond.notify_all()

    # ------------------------------------------------------------------ #
    # submission / control
    # ------------------------------------------------------------------ #
    async def submit(self, payload: Any,
                     tenant: Optional[str] = None) -> Job:
        """Validate, admit (quota + rate limit), enqueue; returns the
        :class:`Job`. Raises a typed :class:`ServiceError` otherwise."""
        if self._draining:
            self._m_rejections.inc(kind="draining")
            raise ServiceDrainingError(
                "the service is draining and does not accept new jobs")
        validate_job_payload(payload)
        tenant = tenant or payload.get("tenant") or DEFAULT_TENANT
        try:
            self.quotas.admit(tenant, len(payload["specs"]))
        except ServiceError as exc:
            self._m_rejections.inc(kind=exc.kind)
            raise
        job = Job(tenant=tenant, specs=payload["specs"],
                  priority=payload.get("priority", 0),
                  label=payload.get("label", ""), clock=self._now)
        self.jobs[job.job_id] = job
        try:
            await self.queue.put(job, job.priority)
        except QueueClosed:
            self.jobs.pop(job.job_id, None)
            self.quotas.release(tenant)
            self._m_rejections.inc(kind="draining")
            raise ServiceDrainingError(
                "the service is draining and does not accept new jobs") \
                from None
        return job

    async def cancel(self, job_id: str) -> Job:
        job = self._job(job_id)
        if job.state in TERMINAL_STATES:
            return job
        if job.state == "queued":
            await self.queue.remove(lambda j: j.job_id == job_id)
            self._finish_job(job, "cancelled")
            await self._notify_watchers()
            return job
        task = self._job_tasks.get(job_id)
        if task is not None:
            task.cancel()
            await asyncio.gather(task, return_exceptions=True)
        return job

    def _job(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"no such job: {job_id!r}",
                                  job_id=job_id)
        return job

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #
    def render_metrics(self) -> str:
        self._m_queue_depth.set(self.queue.depth)
        hits = self._m_cache_events.value(event="hits")
        misses = self._m_cache_events.value(event="misses")
        if hits + misses > 0:
            self._m_cache_ratio.set(hits / (hits + misses))
        for tenant, usage in sorted(self.quotas.usage_snapshot().items()):
            self._m_tenant_jobs.set(usage.jobs_submitted, tenant=tenant)
            self._m_tenant_specs.set(usage.specs_submitted, tenant=tenant)
            self._m_tenant_rejected.set(usage.jobs_rejected,
                                        tenant=tenant)
            self._m_tenant_active.set(usage.active_jobs, tenant=tenant)
        return self.metrics.render()

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #
    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            try:
                request = await http.read_request(reader)
            except http.HttpError as exc:
                writer.write(http.json_response(exc.status, {
                    "error": {"kind": "bad_request",
                              "message": exc.message, "details": {}}}))
                await writer.drain()
                return
            if request is None:
                return
            writer.write(await self._dispatch(request))
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, Exception):
                pass

    async def _dispatch(self, request: http.Request) -> bytes:
        try:
            return await self._route(request)
        except http.HttpError as exc:
            return http.json_response(exc.status, {
                "error": {"kind": "bad_request", "message": exc.message,
                          "details": {}}})
        except ServiceError as exc:
            return http.json_response(exc.status, error_payload(exc))
        except Exception as exc:  # pragma: no cover - defensive
            return http.json_response(500, {
                "error": {"kind": "internal",
                          "message": f"{type(exc).__name__}: {exc}",
                          "details": {}}})

    async def _route(self, request: http.Request) -> bytes:
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            return http.json_response(200, {
                "state": "draining" if self._draining else "ok",
                "queue_depth": self.queue.depth,
                "active_jobs": len(self._job_tasks)})
        if path == "/metrics" and method == "GET":
            return http.response(
                200, self.render_metrics().encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8")
        if path == "/v1/jobs" and method == "POST":
            body = request.json()
            if not isinstance(body, dict):
                raise InvalidSpecError(
                    "a job submission is a JSON object")
            tenant = request.header("x-repro-tenant") or None
            job = await self.submit(body, tenant=tenant)
            return http.json_response(202, job.snapshot())
        if path == "/v1/jobs" and method == "GET":
            tenant = request.query.get("tenant")
            snaps = [job.snapshot() for job in self.jobs.values()
                     if tenant is None or job.tenant == tenant]
            return http.json_response(200, {"jobs": snaps})
        if path.startswith("/v1/jobs/"):
            return await self._route_job(request, method,
                                         path[len("/v1/jobs/"):])
        if path == "/v1/admin/drain" and method == "POST":
            await self.drain()
            return http.json_response(202, {
                "state": "draining",
                "queue_depth": self.queue.depth,
                "active_jobs": len(self._job_tasks)})
        raise http.HttpError(404, f"no route for {method} {request.path}")

    async def _route_job(self, request: http.Request, method: str,
                         rest: str) -> bytes:
        job_id, _, sub = rest.partition("/")
        job = self._job(job_id)
        if not sub and method == "GET":
            return http.json_response(200, job.snapshot())
        if not sub and method == "DELETE":
            job = await self.cancel(job_id)
            return http.json_response(200, job.snapshot())
        if sub == "events" and method == "GET":
            return await self._serve_events(request, job)
        if sub == "result" and method == "GET":
            return self._serve_result(job)
        raise http.HttpError(
            404, f"no route for {method} {request.path}")

    async def _serve_events(self, request: http.Request,
                            job: Job) -> bytes:
        try:
            after = int(request.query.get("after", "-1"))
            wait = min(_MAX_EVENT_WAIT,
                       float(request.query.get("wait", "0")))
        except ValueError:
            raise http.HttpError(400, "'after' and 'wait' are numbers")
        assert self._events_cond is not None
        loop = asyncio.get_running_loop()
        deadline = loop.time() + wait
        async with self._events_cond:
            while True:
                events = job.events_since(after)
                if events or job.state in TERMINAL_STATES:
                    break
                timeout = deadline - loop.time()
                if timeout <= 0:
                    break
                try:
                    await asyncio.wait_for(self._events_cond.wait(),
                                           timeout)
                except asyncio.TimeoutError:
                    break
        return http.json_response(200, {
            "job_id": job.job_id, "state": job.state, "events": events})

    def _serve_result(self, job: Job) -> bytes:
        if job.state not in TERMINAL_STATES:
            raise JobNotFinishedError(
                f"job {job.job_id} is {job.state}; results are served "
                f"once it reaches a terminal state",
                job_id=job.job_id, state=job.state)
        return http.json_response(200, {
            "job_id": job.job_id,
            "state": job.state,
            "label": job.label,
            "tenant": job.tenant,
            "results": job.results,
            "sources": job.sources,
            "counters": job.counters,
            "error": job.error,
        })
