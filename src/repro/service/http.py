"""A thin HTTP/1.1 layer over ``asyncio`` streams.

Deliberately minimal — the sweep service speaks a small JSON dialect to
trusted tools on a trusted network, so this is a request parser and a
response builder, not a web framework: no TLS, no chunked request
bodies, no keep-alive (every response closes the connection, which keeps
server state per-request and lets the drain path finish by just waiting
for open handlers). Limits are enforced up front: header block and body
sizes are bounded so a confused client cannot balloon server memory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = ["HttpError", "Request", "read_request", "response",
           "json_response"]

_MAX_HEADER_BYTES = 32 * 1024
_MAX_BODY_BYTES = 32 * 1024 * 1024

_REASONS = {
    200: "OK", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    409: "Conflict", 413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class HttpError(Exception):
    """A malformed request; ``status`` is the response to send."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        if not self.body:
            return None
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)


async def read_request(reader) -> Optional[Request]:
    """Parse one request from ``reader``; ``None`` on a clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except Exception as exc:  # IncompleteReadError, LimitOverrun, reset
        import asyncio
        if isinstance(exc, asyncio.IncompleteReadError):
            if not exc.partial:
                return None  # connection closed between requests
            raise HttpError(400, "truncated request head")
        if isinstance(exc, asyncio.LimitOverrunError):
            raise HttpError(413, "request head too large")
        raise HttpError(400, f"unreadable request: {exc}")
    if len(head) > _MAX_HEADER_BYTES:
        raise HttpError(413, "request head too large")

    try:
        lines = head.decode("latin-1").split("\r\n")
        method, target, version = lines[0].split(" ", 2)
    except (UnicodeDecodeError, ValueError):
        raise HttpError(400, "malformed request line")
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version!r}")

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    query = {key: value for key, value
             in parse_qsl(split.query, keep_blank_values=True)}

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "malformed Content-Length")
        if length < 0 or length > _MAX_BODY_BYTES:
            raise HttpError(413, f"body of {length} bytes refused")
        if length:
            try:
                body = await reader.readexactly(length)
            except Exception:
                raise HttpError(400, "truncated request body")
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")

    return Request(method=method.upper(), path=unquote(split.path),
                   query=query, headers=headers, body=body)


def response(status: int, body: bytes = b"",
             content_type: str = "application/json",
             extra_headers: Tuple[Tuple[str, str], ...] = ()) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}",
             "Connection: close"]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_response(status: int, payload: Any,
                  extra_headers: Tuple[Tuple[str, str], ...] = ()) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return response(status, body, "application/json", extra_headers)
