"""A minimal, dependency-free Prometheus metrics registry.

Only what the sweep service needs: ``Counter`` (monotonic) and ``Gauge``
(settable), both with optional label dimensions, rendered in the
Prometheus text exposition format (``# HELP`` / ``# TYPE`` headers, one
``name{label="value"} value`` sample per labelset). Thread-safe: pool
callbacks and cache listeners increment from worker threads while the
asyncio server renders ``/metrics`` from the event loop.

Label values are escaped per the exposition format (backslash, quote,
newline); series render in sorted order so the output is deterministic
and diff-able in tests.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "MetricsRegistry"]

_LabelKey = Tuple[Tuple[str, str], ...]


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


class _Metric:
    """One named family of samples, keyed by labelset."""

    type_name = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._values: Dict[_LabelKey, float] = {}
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, str]) -> _LabelKey:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels "
                f"{sorted(self.labelnames)}, got {sorted(labels)}")
        return tuple((name, str(labels[name])) for name in self.labelnames)

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def samples(self) -> List[Tuple[_LabelKey, float]]:
        with self._lock:
            return sorted(self._values.items())

    def render(self) -> str:
        lines = [f"# HELP {self.name} {self.help_text}",
                 f"# TYPE {self.name} {self.type_name}"]
        samples = self.samples()
        if not samples and not self.labelnames:
            samples = [((), 0.0)]
        for key, value in samples:
            if key:
                labels = ",".join(f'{name}="{_escape(val)}"'
                                  for name, val in key)
                lines.append(f"{self.name}{{{labels}}} {_format(value)}")
            else:
                lines.append(f"{self.name} {_format(value)}")
        return "\n".join(lines)


def _format(value: float) -> str:
    # Integers render without a trailing ".0" — the common case for
    # counters — while true floats keep full repr precision.
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter(_Metric):
    """A monotonically increasing sample per labelset."""

    type_name = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease "
                             f"(inc {amount})")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount


class Gauge(_Metric):
    """A freely settable sample per labelset."""

    type_name = "gauge"

    def set(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)


class MetricsRegistry:
    """An ordered collection of metrics rendered as one text page."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, help_text: str,
                labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str,
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help_text, labelnames)

    def _register(self, cls, name: str, help_text: str,
                  labelnames: Sequence[str]):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) \
                        or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered with a "
                        f"different type or labelset")
                return existing
            metric = cls(name, help_text, labelnames)
            self._metrics[name] = metric
            return metric

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def render(self) -> str:
        """The full exposition page (trailing newline included)."""
        with self._lock:
            metrics = list(self._metrics.values())
        return "\n".join(metric.render() for metric in metrics) + "\n"
