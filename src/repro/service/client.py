"""A blocking client for the sweep service.

Built on ``http.client`` (stdlib; one connection per request, matching
the server's connection-per-request model) so scripts, the ``servectl``
CLI and the test fixture all talk to the server through the same code
path. Error responses are rebuilt into the *same* typed
:class:`~repro.service.errors.ServiceError` subclasses the server
raised, so ``except RateLimitedError`` works identically in-process and
over the wire.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, List, Optional
from urllib.parse import urlencode

from repro.service.errors import ServiceError, error_from_payload

__all__ = ["ServiceClient"]


class ServiceClient:
    """Talks to one :class:`~repro.service.server.SweepService`."""

    def __init__(self, host: str, port: int, *,
                 tenant: Optional[str] = None,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 query: Optional[Dict[str, Any]] = None,
                 timeout: Optional[float] = None) -> Any:
        if query:
            path = f"{path}?{urlencode(query)}"
        headers = {"Accept": "application/json", "Connection": "close"}
        if self.tenant:
            headers["X-Repro-Tenant"] = self.tenant
        data = None
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if timeout is None else timeout)
        try:
            conn.request(method, path, body=data, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
        finally:
            conn.close()
        content_type = resp.headers.get("Content-Type", "")
        if not content_type.startswith("application/json"):
            if resp.status >= 400:
                raise error_from_payload(None, resp.status)
            return raw.decode("utf-8")
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else None
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ServiceError(
                f"undecodable response (HTTP {resp.status})")
        if resp.status >= 400:
            raise error_from_payload(payload, resp.status)
        return payload

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """The raw Prometheus text page."""
        return self._request("GET", "/metrics")

    def submit(self, specs: List[Dict[str, Any]], *, priority: int = 0,
               label: str = "",
               tenant: Optional[str] = None) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"specs": specs}
        if priority:
            payload["priority"] = priority
        if label:
            payload["label"] = label
        if tenant or self.tenant:
            payload["tenant"] = tenant or self.tenant
        return self._request("POST", "/v1/jobs", body=payload)

    def jobs(self, tenant: Optional[str] = None) -> List[Dict[str, Any]]:
        query = {"tenant": tenant} if tenant else None
        return self._request("GET", "/v1/jobs", query=query)["jobs"]

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def events(self, job_id: str, after: int = -1,
               wait: float = 0.0) -> Dict[str, Any]:
        """Events with ``seq > after``; ``wait`` long-polls server-side."""
        return self._request(
            "GET", f"/v1/jobs/{job_id}/events",
            query={"after": after, "wait": wait},
            timeout=max(self.timeout, wait + 10.0))

    def result(self, job_id: str) -> Dict[str, Any]:
        """The full result document of a finished job.

        A ``failed`` job re-raises its stored typed error (e.g.
        :class:`~repro.service.errors.WorkerCrashedError`).
        """
        doc = self._request("GET", f"/v1/jobs/{job_id}/result")
        if doc.get("state") == "failed" and doc.get("error"):
            raise error_from_payload({"error": doc["error"]})
        return doc

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def drain(self) -> Dict[str, Any]:
        return self._request("POST", "/v1/admin/drain")

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #
    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 2.0) -> Dict[str, Any]:
        """Block until the job is terminal; returns the final snapshot.

        Uses the long-poll events endpoint, so progress wakes it early;
        ``poll`` is the per-request server-side wait.
        """
        deadline = time.monotonic() + timeout
        after = -1
        while True:
            page = self.events(job_id, after=after, wait=poll)
            if page["events"]:
                after = page["events"][-1]["seq"]
            if page["state"] in ("done", "failed", "cancelled"):
                return self.status(job_id)
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {page['state']!r} after "
                    f"{timeout:g} s")
