"""Service/load test harness: an in-process server with a real client.

:class:`ServiceFixture` boots a :class:`~repro.service.server.SweepService`
on an ephemeral port inside a dedicated event-loop thread, hands out
:class:`~repro.service.client.ServiceClient` instances (the same client
scripts use — tests exercise the actual wire path, not handler
internals), and exposes the hooks a deterministic service test needs:

- :class:`FakeClock` — injectable monotonic time, so rate-limit
  recovery is tested by *advancing* the clock, never by sleeping;
- module-level stub runners (:func:`echo_runner`, :func:`slow_runner`)
  that are picklable and accept real, validated sweep specs, so queue /
  quota / cancellation behaviour is testable without paying for full
  simulations;
- :meth:`ServiceFixture.kill_worker` — SIGKILLs a live pool worker to
  drive the ``BrokenProcessPool`` → typed-failure → pool-replacement
  path, the service-level analogue of the repo's fault injection.
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.service.client import ServiceClient
from repro.service.server import SweepService

__all__ = ["FakeClock", "ServiceFixture", "echo_runner", "slow_runner",
           "make_spec"]


class FakeClock:
    """A monotonic clock tests advance by hand."""

    def __init__(self, start: float = 1000.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        with self._lock:
            self._now += float(seconds)
            return self._now


def make_spec(seed: int = 0, ncores: int = 24, kind: str = "damaris",
              preset: str = "grid5000", **extra: Any) -> Dict[str, Any]:
    """A small, *valid* sweep spec; vary ``seed`` for distinct cache
    keys, ``ncores`` for distinct stub runtimes. The default (one
    24-core grid5000 node) is also runnable by the real engine, so the
    same helper feeds both stub and end-to-end tests."""
    spec: Dict[str, Any] = {"preset": preset, "ncores": ncores,
                            "strategy": {"kind": kind}, "seed": seed,
                            "write_phases": 1}
    spec.update(extra)
    return spec


def echo_runner(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Instant stand-in for ``run_service_spec``: deterministic payload
    derived from the spec, so cache/dedup behaviour is observable."""
    return {
        "summary": {"strategy": spec["strategy"]["kind"],
                    "ncores": spec["ncores"],
                    "seed": spec.get("seed", 42),
                    "run_time": 1.0 + spec.get("seed", 42) * 0.1},
        "counters": {"recomputes": 1.0},
    }


def slow_runner(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Like :func:`echo_runner` but sleeps ``ncores * 10 ms`` first —
    a controllable window for cancellation and worker-kill tests."""
    time.sleep(min(10.0, spec["ncores"] * 0.01))
    return echo_runner(spec)


class ServiceFixture:
    """An in-process sweep service, started for one test.

    Use as a context manager::

        with ServiceFixture(runner=echo_runner, workers=2) as fx:
            client = fx.client(tenant="alice")
            job = client.submit([make_spec(seed=i) for i in range(4)])
            client.wait(job["job_id"])

    Constructor keywords pass straight to
    :class:`~repro.service.server.SweepService`; the fixture adds the
    thread/loop plumbing, ephemeral-port discovery and teardown (a full
    ``stop()``: drain, join jobs, join pool workers).
    """

    def __init__(self, **service_kwargs: Any) -> None:
        service_kwargs.setdefault("workers", 2)
        self.service = SweepService(port=0, **service_kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle ------------------------------------------------------ #
    def __enter__(self) -> "ServiceFixture":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._thread_main, name="sweep-service", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("service failed to start within 30 s")
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") \
                from self._startup_error

    def _thread_main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.service.start())
        except BaseException as exc:  # surfaced to start()
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def stop(self, timeout: float = 60.0) -> None:
        """Full shutdown: drain, finish in-flight jobs, join workers."""
        if self._loop is None or self._thread is None \
                or not self._thread.is_alive():
            return
        self.run(self.service.stop(), timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)

    # -- helpers -------------------------------------------------------- #
    def run(self, coro: Any, timeout: float = 60.0) -> Any:
        """Run a coroutine on the service loop; return its result."""
        assert self._loop is not None
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout=timeout)

    def client(self, tenant: Optional[str] = None,
               timeout: float = 60.0) -> ServiceClient:
        return ServiceClient(self.service.host, self.service.port,
                             tenant=tenant, timeout=timeout)

    def pool_pids(self) -> List[int]:
        """PIDs of live compute-pool worker processes."""
        pool = self.service._pool
        if pool is None or not pool._processes:  # noqa: SLF001
            return []
        return [pid for pid, proc in pool._processes.items()
                if proc.is_alive()]

    def kill_worker(self, timeout: float = 30.0) -> int:
        """SIGKILL one live pool worker; returns its pid.

        Waits for a worker to exist first — the pool spawns processes
        lazily on first submit.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            pids = self.pool_pids()
            if pids:
                os.kill(pids[0], signal.SIGKILL)
                return pids[0]
            time.sleep(0.02)
        raise RuntimeError("no live pool worker appeared to kill")

    def wait_until(self, predicate: Callable[[], bool],
                   timeout: float = 30.0, interval: float = 0.02) -> None:
        """Poll ``predicate`` until true (wall-clock bounded)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return
            time.sleep(interval)
        raise TimeoutError("condition not reached within "
                           f"{timeout:g} s")
