"""FIFO-with-priorities job queue for the asyncio server.

A thin heap over ``(-priority, seq)``: higher ``priority`` drains first,
equal priorities drain in strict submission order. Built directly on an
``asyncio.Condition`` instead of ``asyncio.PriorityQueue`` because the
service needs two operations the stdlib queue lacks: *removal* of a
queued entry (job cancellation before dispatch) and *close* semantics
(drain: getters waiting on an empty closed queue stop waiting).
"""

from __future__ import annotations

import asyncio
import heapq
from typing import Any, List, Optional, Tuple

__all__ = ["QueueClosed", "JobQueue"]


class QueueClosed(Exception):
    """Raised to a getter when the queue is closed and fully drained."""


class JobQueue:
    """An asyncio priority queue of jobs with cancellation and close."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Any]] = []
        self._removed: set = set()
        self._seq = 0
        self._closed = False
        self._cond = asyncio.Condition()

    @property
    def depth(self) -> int:
        """Entries currently queued (cancelled entries excluded)."""
        return len(self._heap) - len(self._removed)

    @property
    def closed(self) -> bool:
        return self._closed

    async def put(self, item: Any, priority: int = 0) -> None:
        """Enqueue ``item``; raises :class:`QueueClosed` after close."""
        async with self._cond:
            if self._closed:
                raise QueueClosed("queue is closed")
            heapq.heappush(self._heap, (-int(priority), self._seq, item))
            self._seq += 1
            self._cond.notify()

    async def get(self) -> Any:
        """Dequeue the highest-priority oldest item; wait when empty.

        Raises :class:`QueueClosed` once the queue is closed *and*
        empty — entries enqueued before close still drain.
        """
        async with self._cond:
            while True:
                item = self._pop_live()
                if item is not None:
                    return item[2]
                if self._closed:
                    raise QueueClosed("queue is closed and drained")
                await self._cond.wait()

    def _pop_live(self) -> Optional[Tuple[int, int, Any]]:
        while self._heap:
            entry = heapq.heappop(self._heap)
            token = (entry[0], entry[1])
            if token in self._removed:
                self._removed.discard(token)
                continue
            return entry
        return None

    async def remove(self, predicate) -> List[Any]:
        """Remove (and return) every queued item matching ``predicate``.

        Lazy removal: matching entries are tombstoned and skipped by
        :meth:`get`, so cancellation is O(queue) without re-heapifying.
        """
        removed: List[Any] = []
        async with self._cond:
            for entry in self._heap:
                token = (entry[0], entry[1])
                if token not in self._removed and predicate(entry[2]):
                    self._removed.add(token)
                    removed.append(entry[2])
        return removed

    async def close(self) -> None:
        """Reject future puts; wake getters so drained ones can stop."""
        async with self._cond:
            self._closed = True
            self._cond.notify_all()
