"""The pool-side unit of work for the sweep service.

:func:`run_service_spec` is a module-level function (picklable for the
``ProcessPoolExecutor``) that runs one validated sweep spec with a local
:class:`~repro.observe.Tracer` and returns a plain JSON-safe dict::

    {"summary": <ExperimentResult.summary()>,
     "counters": <trace_counters(tracer)>}

Returning data instead of the live :class:`ExperimentResult` keeps the
payload cheap to pickle, directly cacheable by :mod:`repro.cache`, and
serveable verbatim from the results endpoint. The counters ride along so
the server can fold solver/scheduler activity from pool workers into its
``/metrics`` page — cache hits replay the stored counters too, keeping
the totals consistent with what a cold run would have reported.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = ["run_service_spec"]


def run_service_spec(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Run one sweep spec; return ``{"summary": ..., "counters": ...}``."""
    from repro.experiments.specs import run_spec
    from repro.observe import Tracer, trace_counters

    tracer = Tracer()
    result = run_spec(spec, tracer=tracer)
    return {"summary": result.summary(),
            "counters": trace_counters(tracer)}
