"""Typed service errors with a stable wire format.

Every rejection the sweep service produces — bad spec, unknown job,
quota exhausted, rate limited, draining, worker crash — is a subclass of
:class:`ServiceError` carrying a machine-readable ``kind`` and an HTTP
status. The server serialises them with :func:`error_payload`; the
client reconstructs the *same* exception class from the payload with
:func:`error_from_payload`, so a caller can ``except RateLimitedError``
on either side of the wire.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Type

from repro.errors import ReproError

__all__ = [
    "ServiceError",
    "InvalidSpecError",
    "UnknownJobError",
    "JobNotFinishedError",
    "QuotaExceededError",
    "RateLimitedError",
    "ServiceDrainingError",
    "WorkerCrashedError",
    "error_payload",
    "error_from_payload",
]


class ServiceError(ReproError):
    """Base class for every typed service rejection."""

    #: Stable machine-readable discriminator (the wire ``kind``).
    kind = "service_error"
    #: HTTP status the server responds with.
    status = 500

    def __init__(self, message: str, **details: Any) -> None:
        super().__init__(message)
        self.message = message
        self.details: Dict[str, Any] = details


class InvalidSpecError(ServiceError):
    """The submitted payload is not a runnable sweep job."""

    kind = "invalid_spec"
    status = 400


class UnknownJobError(ServiceError):
    """No job with the requested id (or it belongs to another tenant)."""

    kind = "unknown_job"
    status = 404


class JobNotFinishedError(ServiceError):
    """Results were requested before the job reached a terminal state."""

    kind = "job_not_finished"
    status = 409


class QuotaExceededError(ServiceError):
    """The tenant is over one of its hard quotas (active jobs, queued
    specs). Retrying later helps only after its own jobs finish."""

    kind = "quota_exceeded"
    status = 429


class RateLimitedError(ServiceError):
    """The tenant's token bucket is empty; retry after
    ``details['retry_after']`` seconds."""

    kind = "rate_limited"
    status = 429

    def __init__(self, message: str, retry_after: float = 0.0,
                 **details: Any) -> None:
        super().__init__(message, retry_after=float(retry_after), **details)

    @property
    def retry_after(self) -> float:
        return float(self.details.get("retry_after", 0.0))


class ServiceDrainingError(ServiceError):
    """The server is shutting down: in-flight jobs complete, new
    submissions are rejected."""

    kind = "draining"
    status = 503


class WorkerCrashedError(ServiceError):
    """A pool worker died under the job (OOM kill, segfault). The job
    fails; the server replaces the pool and keeps serving."""

    kind = "worker_crashed"
    status = 500


_KINDS: Dict[str, Type[ServiceError]] = {
    cls.kind: cls
    for cls in (ServiceError, InvalidSpecError, UnknownJobError,
                JobNotFinishedError, QuotaExceededError, RateLimitedError,
                ServiceDrainingError, WorkerCrashedError)
}


def error_payload(exc: ServiceError) -> Dict[str, Any]:
    """The JSON body of an error response."""
    return {"error": {"kind": exc.kind, "message": exc.message,
                      "details": exc.details}}


def error_from_payload(payload: Any,
                       status: Optional[int] = None) -> ServiceError:
    """Rebuild the typed exception a server response describes.

    Unknown kinds (a newer server) degrade to the base
    :class:`ServiceError`, keeping message and details intact.
    """
    body = (payload or {}).get("error") if isinstance(payload, dict) else None
    if not isinstance(body, dict):
        return ServiceError(f"malformed error response "
                            f"(HTTP {status}): {payload!r}")
    cls = _KINDS.get(str(body.get("kind", "")), ServiceError)
    details = body.get("details")
    exc = cls.__new__(cls)
    ServiceError.__init__(exc, str(body.get("message", "")),
                          **(details if isinstance(details, dict) else {}))
    return exc
