"""Per-tenant quotas and token-bucket rate limiting.

Admission control for the sweep service, mirroring the paper's framing:
the shared experiment engine is a *service*, and predictability comes
from bounding what any one tenant can demand of it. Two mechanisms:

- **hard quotas** — a ceiling on concurrently open (queued + running)
  jobs and on specs per job; exceeding one raises
  :class:`~repro.service.errors.QuotaExceededError`;
- **token-bucket rate limiting** — submissions cost one token per spec
  (a 100-spec sweep spends the budget of 100 one-spec jobs), the bucket
  refills continuously; an empty bucket raises
  :class:`~repro.service.errors.RateLimitedError` with the exact
  ``retry_after``.

Everything takes an injectable ``clock`` (monotonic seconds) so tests
drive rate-limit recovery deterministically instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.service.errors import QuotaExceededError, RateLimitedError

__all__ = ["TenantPolicy", "TokenBucket", "QuotaManager"]


@dataclass(frozen=True)
class TenantPolicy:
    """The limits one tenant runs under."""

    #: Concurrently open (queued + running) jobs. ``0`` disables the cap.
    max_active_jobs: int = 4
    #: Specs in a single job. ``0`` disables the cap.
    max_specs_per_job: int = 256
    #: Token-bucket refill rate, tokens (= specs) per second.
    #: ``0`` disables rate limiting.
    rate: float = 50.0
    #: Bucket capacity (burst budget), tokens.
    burst: float = 200.0


class TokenBucket:
    """A continuously refilling token bucket over an injectable clock."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float]) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_acquire(self, cost: float = 1.0) -> float:
        """Take ``cost`` tokens; return 0.0 on success, else the seconds
        until the bucket will hold that many (no tokens consumed)."""
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            return 0.0
        if self.rate <= 0:
            return float("inf")
        return (cost - self._tokens) / self.rate


@dataclass
class TenantUsage:
    """Cumulative per-tenant accounting (exported on ``/metrics``)."""

    jobs_submitted: int = 0
    specs_submitted: int = 0
    jobs_rejected: int = 0
    active_jobs: int = 0


class QuotaManager:
    """Admission control over all tenants.

    One :class:`TenantPolicy` applies as the default; per-tenant
    overrides replace it wholesale. Thread-safe: the asyncio server
    calls from its loop, tests poke clocks from the main thread.
    """

    def __init__(self, default: Optional[TenantPolicy] = None,
                 overrides: Optional[Dict[str, TenantPolicy]] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.default = default if default is not None else TenantPolicy()
        self.overrides = dict(overrides or {})
        self.clock = clock if clock is not None else time.monotonic
        self._buckets: Dict[str, TokenBucket] = {}
        self._usage: Dict[str, TenantUsage] = {}
        self._lock = threading.Lock()

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self.overrides.get(tenant, self.default)

    def usage_for(self, tenant: str) -> TenantUsage:
        with self._lock:
            return self._usage.setdefault(tenant, TenantUsage())

    def usage_snapshot(self) -> Dict[str, TenantUsage]:
        with self._lock:
            return dict(self._usage)

    def _bucket(self, tenant: str, policy: TenantPolicy) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(policy.rate, policy.burst, self.clock)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str, nspecs: int) -> None:
        """Admit one job of ``nspecs`` specs for ``tenant`` or raise.

        On success the tenant's active-job count is incremented; the
        caller owes a matching :meth:`release` when the job reaches a
        terminal state.
        """
        policy = self.policy_for(tenant)
        with self._lock:
            usage = self._usage.setdefault(tenant, TenantUsage())
            if policy.max_specs_per_job \
                    and nspecs > policy.max_specs_per_job:
                usage.jobs_rejected += 1
                raise QuotaExceededError(
                    f"job has {nspecs} specs; tenant {tenant!r} is "
                    f"limited to {policy.max_specs_per_job} per job",
                    tenant=tenant, limit="max_specs_per_job",
                    max_specs_per_job=policy.max_specs_per_job)
            if policy.max_active_jobs \
                    and usage.active_jobs >= policy.max_active_jobs:
                usage.jobs_rejected += 1
                raise QuotaExceededError(
                    f"tenant {tenant!r} already has {usage.active_jobs} "
                    f"open jobs (limit {policy.max_active_jobs})",
                    tenant=tenant, limit="max_active_jobs",
                    max_active_jobs=policy.max_active_jobs)
            if policy.rate > 0:
                retry_after = self._bucket(tenant, policy).try_acquire(
                    float(nspecs))
                if retry_after > 0:
                    usage.jobs_rejected += 1
                    raise RateLimitedError(
                        f"tenant {tenant!r} is over its submission rate "
                        f"({policy.rate:g} specs/s, burst "
                        f"{policy.burst:g}); retry in "
                        f"{retry_after:.3f} s",
                        retry_after=retry_after, tenant=tenant)
            usage.jobs_submitted += 1
            usage.specs_submitted += nspecs
            usage.active_jobs += 1

    def release(self, tenant: str) -> None:
        """A previously admitted job reached a terminal state."""
        with self._lock:
            usage = self._usage.setdefault(tenant, TenantUsage())
            usage.active_jobs = max(0, usage.active_jobs - 1)
