"""The service's job model: states, progress, events, snapshots.

A *job* is one submitted sweep — an ordered list of sweep specs from one
tenant — moving through ``queued → running → done`` (or ``failed`` /
``cancelled``). Everything a client can observe lives here as plain
JSON-safe data:

- the **status snapshot** (:meth:`Job.snapshot`): state plus monotonic
  progress counters (``done``/``total``/``cache_hits``/``computed``);
- the **event log** (:meth:`Job.add_event`): an append-only sequence of
  ``{seq, time, kind, ...}`` records (``queued``, ``started``, one
  ``progress`` per finished spec, ``done``/``failed``/``cancelled``)
  that the events endpoint serves incrementally by ``seq`` — the wire
  form of the executor's single-path progress accounting.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.service.errors import InvalidSpecError

__all__ = ["JOB_STATES", "TERMINAL_STATES", "Job", "validate_job_payload"]

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

_PAYLOAD_KEYS = frozenset({"specs", "priority", "label", "tenant"})


def validate_job_payload(payload: Any) -> Dict[str, Any]:
    """Check a submission body; return it. Raises
    :class:`~repro.service.errors.InvalidSpecError` with the first
    offending field (spec-level validation included, so a bad spec is
    rejected at admission, not discovered mid-job in a pool worker)."""
    from repro.experiments.specs import SpecError, validate_spec

    if not isinstance(payload, dict):
        raise InvalidSpecError(
            f"a job submission is a JSON object, got "
            f"{type(payload).__name__}")
    unknown = set(payload) - _PAYLOAD_KEYS
    if unknown:
        raise InvalidSpecError(
            f"unknown job field(s): {sorted(unknown)} "
            f"(known: {sorted(_PAYLOAD_KEYS)})")
    specs = payload.get("specs")
    if not isinstance(specs, list) or not specs:
        raise InvalidSpecError("job needs a non-empty 'specs' list")
    for i, spec in enumerate(specs):
        try:
            validate_spec(spec)
        except SpecError as exc:
            raise InvalidSpecError(f"specs[{i}]: {exc}",
                                   spec_index=i) from None
    priority = payload.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool) \
            or not 0 <= priority <= 9:
        raise InvalidSpecError(
            f"'priority' must be an integer in [0, 9], got {priority!r}")
    label = payload.get("label", "")
    if not isinstance(label, str):
        raise InvalidSpecError(f"'label' must be a string, got {label!r}")
    return payload


_job_ids = itertools.count(1)


@dataclass
class Job:
    """One submitted sweep and everything observable about it."""

    tenant: str
    specs: List[Dict[str, Any]]
    priority: int = 0
    label: str = ""
    clock: Callable[[], float] = None  # type: ignore[assignment]
    job_id: str = ""
    state: str = "queued"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Per-spec results in spec order (summaries; None until computed).
    results: List[Optional[Dict[str, Any]]] = field(default_factory=list)
    #: Per-spec provenance: "cache" | "pool" | None (not finished).
    sources: List[Optional[str]] = field(default_factory=list)
    #: Merged solver/sched counter totals from computed specs.
    counters: Dict[str, float] = field(default_factory=dict)
    error: Optional[Dict[str, Any]] = None
    events: List[Dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.job_id:
            self.job_id = f"job-{next(_job_ids):06d}"
        if self.clock is None:
            import time
            self.clock = time.monotonic
        self.submitted_at = self.clock()
        self.results = [None] * len(self.specs)
        self.sources = [None] * len(self.specs)
        self.add_event("queued", tenant=self.tenant,
                       total=len(self.specs), priority=self.priority)

    # -- progress ------------------------------------------------------- #
    @property
    def total(self) -> int:
        return len(self.specs)

    @property
    def done_count(self) -> int:
        return sum(1 for source in self.sources if source is not None)

    @property
    def cache_hits(self) -> int:
        return sum(1 for source in self.sources if source == "cache")

    @property
    def computed(self) -> int:
        return sum(1 for source in self.sources if source == "pool")

    def record_result(self, index: int, summary: Dict[str, Any],
                      source: str) -> None:
        """One spec finished; emits the job's ``progress`` event (the
        single accounting path — hits and pool results both land here)."""
        self.results[index] = summary
        self.sources[index] = source
        self.add_event("progress", index=index, source=source,
                       done=self.done_count, total=self.total,
                       cache_hits=self.cache_hits, computed=self.computed)

    def merge_counters(self, counters: Dict[str, float]) -> None:
        for name, value in counters.items():
            self.counters[name] = self.counters.get(name, 0.0) \
                + float(value)

    # -- events --------------------------------------------------------- #
    def add_event(self, kind: str, **attrs: Any) -> Dict[str, Any]:
        event = {"seq": len(self.events), "time": self.clock(),
                 "kind": kind, **attrs}
        self.events.append(event)
        return event

    def events_since(self, after: int) -> List[Dict[str, Any]]:
        """Events with ``seq > after`` (the long-poll contract)."""
        if after < -1:
            after = -1
        return self.events[after + 1:]

    # -- state transitions ---------------------------------------------- #
    def mark_running(self) -> None:
        self.state = "running"
        self.started_at = self.clock()
        self.add_event("started")

    def finish(self, state: str,
               error: Optional[Dict[str, Any]] = None) -> None:
        assert state in TERMINAL_STATES, state
        self.state = state
        self.finished_at = self.clock()
        self.error = error
        self.add_event(state, **({"error": error} if error else {}))

    # -- wire format ---------------------------------------------------- #
    def snapshot(self) -> Dict[str, Any]:
        """The status document ``GET /v1/jobs/<id>`` returns."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "label": self.label,
            "state": self.state,
            "priority": self.priority,
            "progress": {
                "done": self.done_count,
                "total": self.total,
                "cache_hits": self.cache_hits,
                "computed": self.computed,
            },
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "events_seq": len(self.events) - 1,
            "error": self.error,
        }
