"""Simulation-as-a-service: an asyncio job server over the sweep engine.

The experiment engine (:mod:`repro.experiments`) runs sweeps in-process;
this package puts it behind a small multi-tenant HTTP/JSON service so
several clients share one compute pool and one result cache:

- :mod:`repro.service.server` — the asyncio server: job queue draining
  into the process pool, cache-aware admission with cross-tenant
  dedup, drain/shutdown, the HTTP routes;
- :mod:`repro.service.client` — the blocking client (used by the
  ``servectl`` CLI and the test fixture alike);
- :mod:`repro.service.jobs` / :mod:`repro.service.queue` — the job
  model and the FIFO-with-priorities queue;
- :mod:`repro.service.quotas` — per-tenant quotas and token-bucket
  rate limiting;
- :mod:`repro.service.metrics` — the dependency-free Prometheus
  registry behind ``/metrics``;
- :mod:`repro.service.errors` — typed rejections with a stable wire
  format;
- :mod:`repro.service.testing` — the in-process service fixture the
  test suite (and load experiments) build on.

Start a server with ``python -m repro.tools.servectl serve``.
"""

from repro.service.client import ServiceClient
from repro.service.errors import (
    InvalidSpecError,
    JobNotFinishedError,
    QuotaExceededError,
    RateLimitedError,
    ServiceDrainingError,
    ServiceError,
    UnknownJobError,
    WorkerCrashedError,
)
from repro.service.metrics import Counter, Gauge, MetricsRegistry
from repro.service.quotas import QuotaManager, TenantPolicy, TokenBucket
from repro.service.server import DEFAULT_TENANT, SweepService
from repro.service.worker import run_service_spec

__all__ = [
    "DEFAULT_TENANT",
    "Counter",
    "Gauge",
    "InvalidSpecError",
    "JobNotFinishedError",
    "MetricsRegistry",
    "QuotaExceededError",
    "QuotaManager",
    "RateLimitedError",
    "ServiceClient",
    "ServiceDrainingError",
    "ServiceError",
    "SweepService",
    "TenantPolicy",
    "TokenBucket",
    "UnknownJobError",
    "WorkerCrashedError",
    "run_service_spec",
]
