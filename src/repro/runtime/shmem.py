"""Real shared-memory arena for the threaded runtime.

A :class:`RuntimeBuffer` owns a byte arena plus one of the two Damaris
allocation algorithms (:class:`~repro.core.shm.MutexAllocator` under a
real lock, or the lock-free :class:`~repro.core.shm.PartitionedAllocator`)
and hands out numpy views into reserved blocks — the ``dc_alloc`` path
gives the simulation a window it can compute into directly (zero copy).
"""

from __future__ import annotations

import threading
import time
from typing import Optional, Tuple

import numpy as np

from repro.core.shm import Block, MutexAllocator, PartitionedAllocator
from repro.errors import ShmAllocationError
from repro.observe.tracer import NULL_TRACER, Tracer

__all__ = ["RuntimeBuffer"]


class RuntimeBuffer:
    """A byte arena with blocking allocation and numpy views."""

    def __init__(self, capacity: int, allocator: str = "mutex",
                 nclients: int = 1,
                 tracer: Optional[Tracer] = None,
                 trace_actor: str = "shm") -> None:
        self._arena = np.zeros(capacity, dtype=np.uint8)
        self.capacity = capacity
        if allocator == "mutex":
            self._allocator = MutexAllocator(capacity)
        elif allocator == "partitioned":
            self._allocator = PartitionedAllocator(capacity, nclients)
        else:
            raise ShmAllocationError(f"unknown allocator {allocator!r}")
        self._lock = threading.Lock()
        self._freed = threading.Condition(self._lock)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.trace_actor = trace_actor
        #: Allocations that had to block at least once (not wakeups —
        #: spurious condition-variable wakeups must not inflate this).
        self.stalls = 0
        #: Bytes currently reserved (decremented on :meth:`free`).
        self.bytes_reserved = 0
        #: Cumulative bytes ever reserved (never decremented).
        self.bytes_reserved_total = 0

    @property
    def allocator_name(self) -> str:
        return self._allocator.name

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return self._allocator.used_bytes

    def allocate(self, nbytes: int, client: int = 0,
                 timeout: Optional[float] = 30.0) -> Block:
        """Reserve ``nbytes``, blocking while the buffer is full.

        ``timeout`` is a real deadline: spurious (or unhelpful) wakeups
        re-wait only the remaining time, so a stream of frees that never
        makes room cannot postpone the :class:`ShmAllocationError`
        forever.
        """
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        stall_started = None
        stalled = False
        with self._freed:
            block = self._allocator.allocate(nbytes, client)
            while block is None:
                if not stalled:
                    # One stall per blocked allocation, however many
                    # times the condition variable wakes us.
                    stalled = True
                    self.stalls += 1
                    if self.tracer.enabled:
                        stall_started = self.tracer.now()
                if deadline is None:
                    self._freed.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 \
                            or not self._freed.wait(timeout=remaining):
                        # The longest stalls are the ones that time out;
                        # record them before raising so the trace keeps
                        # its most interesting spans.
                        if stall_started is not None:
                            self.tracer.record_span(
                                "shm_stall", "buffer_full",
                                self.trace_actor, stall_started,
                                self.tracer.now(), nbytes=int(nbytes),
                                client=client, timeout=True)
                        raise ShmAllocationError(
                            f"timed out waiting for {nbytes} B of buffer "
                            f"space (capacity {self.capacity} B)")
                block = self._allocator.allocate(nbytes, client)
            self.bytes_reserved += nbytes
            self.bytes_reserved_total += nbytes
        if stall_started is not None:
            self.tracer.record_span(
                "shm_stall", "buffer_full", self.trace_actor,
                stall_started, self.tracer.now(),
                nbytes=int(nbytes), client=client, timeout=False)
        return block

    def free(self, block: Block, client: int = 0) -> None:
        with self._freed:
            self._allocator.free(block, client)
            self.bytes_reserved -= block.size
            self._freed.notify_all()

    # ------------------------------------------------------------------ #
    # data access
    # ------------------------------------------------------------------ #
    def write_array(self, block: Block, array: np.ndarray) -> None:
        """Copy ``array`` into the block (the df_write memcpy)."""
        raw = np.ascontiguousarray(array).view(np.uint8).reshape(-1)
        if raw.size != block.size:
            raise ShmAllocationError(
                f"array of {raw.size} B does not fit block of "
                f"{block.size} B")
        self._arena[block.offset:block.end] = raw

    def view(self, block: Block, dtype: np.dtype,
             shape: Tuple[int, ...]) -> np.ndarray:
        """A live numpy view of the block (the dc_alloc window)."""
        count = block.size // np.dtype(dtype).itemsize
        flat = self._arena[block.offset:block.end].view(dtype)[:count]
        return flat.reshape(shape)

    def read_array(self, block: Block, dtype: np.dtype,
                   shape: Tuple[int, ...]) -> np.ndarray:
        """Copy the block's content out as an owned array (server side)."""
        return self.view(block, dtype, shape).copy()
