"""A real, thread-based Damaris runtime.

Where :mod:`repro.core` simulates Damaris at cluster scale, this package
*runs* it: one dedicated server thread per "node" owns a real shared
buffer (a byte arena managed by the same allocators as the DES back-end),
clients copy real numpy arrays into it (or compute in place via
``dc_alloc``/``dc_commit``), and the server persists iterations
asynchronously into real SHDF files with real compression — overlap,
back-pressure, jitter hiding and the 187 %/600 % compression ratios are
all observable on a laptop.

Quick start::

    runtime = DamarisRuntime(config, output_dir="out")
    client = runtime.client(0)
    client.df_write("temperature", 0, field)
    client.df_signal("end_iteration", 0)
    client.df_finalize()
    runtime.shutdown()
"""

from repro.runtime.runner import DamarisRuntime
from repro.runtime.client import RuntimeClient
from repro.runtime.server import RuntimeServer, RuntimeStats

__all__ = ["DamarisRuntime", "RuntimeClient", "RuntimeServer",
           "RuntimeStats"]
