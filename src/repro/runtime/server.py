"""The dedicated-core server thread (real runtime).

Pulls write-notifications and user events off the queue, keeps the
⟨name, iteration, source⟩ variable index, and — when every client of the
node has signalled the configured event — runs the bound action:
persisting the iteration into one SHDF file per node (with optional real
compression), computing statistics, or invoking a user callable.

Per-iteration accounting (bytes in/out, seconds spent writing) feeds the
examples' jitter/overlap reports, mirroring Fig. 5 of the paper.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.config import DamarisConfig
from repro.core.equeue import Shutdown, UserEvent, WriteNotification
from repro.core.metadata import StoredVariable, VariableStore
from repro.errors import PluginError, RuntimeShutdownError
from repro.formats.compression import Codec, GzipCodec, Precision16Codec
from repro.formats.shdf import SHDFWriter
from repro.observe.tracer import NULL_TRACER, Tracer
from repro.runtime.events import QUEUE_CLOSED, RuntimeQueue
from repro.runtime.shmem import RuntimeBuffer

__all__ = ["RuntimeServer", "RuntimeStats", "RuntimeActionContext"]

#: Codec pipelines selectable from the configuration's ``action=``.
STANDARD_ACTIONS = ("persist", "compress", "compress16", "statistics",
                    "discard")


@dataclass
class RuntimeStats:
    """Per-iteration accounting of one server."""

    write_seconds: Dict[int, float] = field(default_factory=dict)
    bytes_in: Dict[int, int] = field(default_factory=dict)
    bytes_out: Dict[int, int] = field(default_factory=dict)
    files: List[str] = field(default_factory=list)

    def compression_ratio_percent(self, iteration: int) -> float:
        out = self.bytes_out.get(iteration, 0)
        if out == 0:
            return 100.0
        return 100.0 * self.bytes_in.get(iteration, 0) / out

    @property
    def total_write_seconds(self) -> float:
        return sum(self.write_seconds.values())


@dataclass
class RuntimeActionContext:
    """What a user action callable receives."""

    server: "RuntimeServer"
    event: UserEvent
    entries: List[StoredVariable]

    def array_of(self, entry: StoredVariable) -> np.ndarray:
        return self.server.buffer.read_array(
            entry.block, entry.layout.dtype, entry.effective_shape)


class RuntimeServer(threading.Thread):
    """Dedicated-core server for one node of the runtime."""

    def __init__(self, node_index: int, config: DamarisConfig,
                 buffer: RuntimeBuffer, queue: RuntimeQueue,
                 nclients: int, output_dir: str,
                 actions: Optional[Dict[str, Callable]] = None,
                 poll_timeout: float = 60.0,
                 tracer: Optional[Tracer] = None) -> None:
        super().__init__(name=f"damaris-server-{node_index}", daemon=True)
        self.node_index = node_index
        self.config = config
        self.buffer = buffer
        self.queue = queue
        self.nclients = nclients
        self.output_dir = output_dir
        self.custom_actions = dict(actions or {})
        #: How long one queue poll waits. A timeout is *not* a shutdown:
        #: the server keeps polling (counting ``idle_timeouts``) until
        #: every client finalizes or the queue closes.
        self.poll_timeout = poll_timeout
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.store = VariableStore()
        self.stats = RuntimeStats()
        self.errors: List[BaseException] = []
        self.idle_timeouts = 0
        self._arrivals: Dict[tuple, int] = {}
        self._finalized = 0

    @property
    def trace_actor(self) -> str:
        return f"node{self.node_index}/server"

    # ------------------------------------------------------------------ #
    # thread body
    # ------------------------------------------------------------------ #
    def run(self) -> None:
        try:
            while True:
                message = self.queue.get(timeout=self.poll_timeout)
                if message is None:
                    # Poll timeout — the clients are just computing.
                    self.idle_timeouts += 1
                    continue
                if message is QUEUE_CLOSED:
                    if self._finalized < self.nclients:
                        # Closed under us before every client finalized:
                        # an abnormal teardown, not a clean shutdown.
                        error = RuntimeShutdownError(
                            f"server {self.node_index}: queue closed with "
                            f"{self.nclients - self._finalized} of "
                            f"{self.nclients} clients not finalized")
                        self.errors.append(error)
                        if self.tracer.enabled:
                            self.tracer.record_event(
                                "error", "premature_close",
                                self.trace_actor, message=str(error))
                    break
                if isinstance(message, WriteNotification):
                    self._on_write(message)
                elif isinstance(message, UserEvent):
                    self._on_event(message)
                elif isinstance(message, Shutdown):
                    self._finalized += 1
                    if self._finalized >= self.nclients:
                        break
            # Flush anything still buffered. Snapshot the iteration list:
            # _persist pops each iteration from the store as it lands.
            # The flush honours the configured persist-family action, so
            # trailing iterations get the same codecs as signalled ones.
            for iteration in list(self.store.iterations()):
                self._persist(iteration, codecs=self._flush_codecs())
        except BaseException as exc:  # surface in the main thread
            self.errors.append(exc)
            if self.tracer.enabled:
                self.tracer.record_event(
                    "error", type(exc).__name__, self.trace_actor,
                    message=str(exc))

    def _on_write(self, message: WriteNotification) -> None:
        layout = self.config.layout_of(message.variable)
        self.store.add(StoredVariable(
            name=message.variable, iteration=message.iteration,
            source=message.source, layout=layout, block=message.block,
            nbytes=message.block.size, local_client=message.client,
            shape=message.shape))

    def _on_event(self, event: UserEvent) -> None:
        spec = self.config.action_for(event.name)
        if event.source < 0:
            # External/steering event (sent by a tool, not a client):
            # fires immediately, bypassing the per-client rendezvous.
            self._dispatch(spec.action, event)
            return
        if spec.scope == "local":
            key = (event.name, event.iteration)
            arrived = self._arrivals.get(key, 0) + 1
            if arrived < self.nclients:
                self._arrivals[key] = arrived
                return
            self._arrivals.pop(key, None)
        self._dispatch(spec.action, event)

    def _dispatch(self, action: str, event: UserEvent) -> None:
        if action in self.custom_actions:
            entries = self.store.iteration_entries(event.iteration)
            self.custom_actions[action](
                RuntimeActionContext(self, event, entries))
            return
        codecs = self._codecs_for_action(action)
        if codecs is not None:
            self._persist(event.iteration, codecs=codecs)
        elif action == "statistics":
            self._statistics(event.iteration)
        elif action == "discard":
            self._release(event.iteration)
        else:
            raise PluginError(
                f"unknown action {action!r}; standard actions are "
                f"{STANDARD_ACTIONS} (or register a custom callable)")

    @staticmethod
    def _codecs_for_action(action: str) -> Optional[tuple]:
        """Codec pipeline of a persist-family action (None otherwise)."""
        if action == "persist":
            return ()
        if action == "compress":
            return (GzipCodec(),)
        if action == "compress16":
            return (Precision16Codec(), GzipCodec())
        return None

    def _flush_codecs(self) -> tuple:
        """Codecs for the end-of-run flush: those of the first configured
        persist-family action (raw persist when none is configured)."""
        for spec in self.config.actions.values():
            codecs = self._codecs_for_action(spec.action)
            if codecs is not None:
                return codecs
        return ()

    # ------------------------------------------------------------------ #
    # actions
    # ------------------------------------------------------------------ #
    def _persist(self, iteration: int, codecs: tuple) -> None:
        entries = self.store.iteration_entries(iteration)
        if not entries:
            return
        started = time.perf_counter()
        path = os.path.join(self.output_dir,
                            f"node{self.node_index}",
                            f"iter{iteration:06d}.shdf")
        bytes_in = 0
        bytes_out = 0
        with SHDFWriter(path) as writer:
            writer.set_attr("iteration", iteration)
            writer.set_attr("node", self.node_index)
            for entry in entries:
                array = self.buffer.read_array(
                    entry.block, entry.layout.dtype,
                    entry.effective_shape)
                stored = writer.write_dataset(
                    f"{entry.name}/src{entry.source}", array,
                    codecs=list(codecs),
                    attrs={"iteration": iteration, "source": entry.source,
                           "layout": entry.layout.name})
                bytes_in += array.nbytes
                bytes_out += stored
        self._release(iteration)
        elapsed = time.perf_counter() - started
        self.stats.write_seconds[iteration] = elapsed
        self.stats.bytes_in[iteration] = bytes_in
        self.stats.bytes_out[iteration] = bytes_out
        self.stats.files.append(path)
        tracer = self.tracer
        if tracer.enabled:
            end = tracer.now()
            tracer.record_span(
                "persist", f"iter{iteration}", self.trace_actor,
                end - elapsed, end, iteration=iteration, path=path,
                nbytes=int(bytes_out), raw_bytes=int(bytes_in),
                entries=len(entries), codecs=[c.name for c in codecs])

    def _statistics(self, iteration: int) -> None:
        entries = self.store.iteration_entries(iteration)
        summary = {}
        for entry in entries:
            array = self.buffer.read_array(
                entry.block, entry.layout.dtype, entry.effective_shape)
            summary[(entry.name, entry.source)] = (
                float(array.min()), float(array.max()),
                float(array.mean()))
        self.last_statistics = summary
        self._release(iteration)

    def _release(self, iteration: int) -> None:
        for entry in self.store.pop_iteration(iteration):
            self.buffer.free(entry.block, client=entry.local_client)
