"""Runtime orchestration: buffers, queues, server threads, clients.

A :class:`DamarisRuntime` emulates a set of SMP nodes on one machine:
per node, one :class:`~repro.runtime.server.RuntimeServer` thread (the
dedicated core) plus ``clients_per_node`` client handles. Clients may be
driven from any thread (one thread per client reproduces the paper's
concurrency; a single loop is fine for examples).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional

from repro.core.config import DamarisConfig
from repro.errors import ConfigurationError, RuntimeShutdownError
from repro.observe.tracer import NULL_TRACER, Tracer
from repro.runtime.client import RuntimeClient
from repro.runtime.events import RuntimeQueue
from repro.runtime.server import RuntimeServer, RuntimeStats
from repro.runtime.shmem import RuntimeBuffer

__all__ = ["DamarisRuntime"]


class DamarisRuntime:
    """Damaris across ``nodes`` emulated SMP nodes."""

    def __init__(self, config: DamarisConfig, output_dir: str,
                 nodes: int = 1, clients_per_node: int = 1,
                 actions: Optional[Dict[str, Callable]] = None,
                 server_poll_timeout: float = 60.0,
                 tracer: Optional[Tracer] = None) -> None:
        config.validate()
        if nodes < 1 or clients_per_node < 1:
            raise ConfigurationError("need >= 1 node and >= 1 client")
        self.config = config
        self.output_dir = output_dir
        os.makedirs(output_dir, exist_ok=True)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.servers: List[RuntimeServer] = []
        self.clients: List[RuntimeClient] = []
        self._running = True

        for node in range(nodes):
            buffer = RuntimeBuffer(config.buffer_size,
                                   allocator=config.allocator,
                                   nclients=clients_per_node,
                                   tracer=self.tracer,
                                   trace_actor=f"node{node}/shm")
            queue = RuntimeQueue(config.queue_size,
                                 tracer=self.tracer,
                                 trace_actor=f"node{node}/queue")
            server = RuntimeServer(node, config, buffer, queue,
                                   nclients=clients_per_node,
                                   output_dir=output_dir,
                                   actions=actions,
                                   poll_timeout=server_poll_timeout,
                                   tracer=self.tracer)
            server.start()
            self.servers.append(server)
            for local in range(clients_per_node):
                rank = node * clients_per_node + local
                self.clients.append(RuntimeClient(
                    config, buffer, queue, rank=rank, local_id=local,
                    tracer=self.tracer,
                    trace_actor=f"node{node}/rank{rank}"))

    # ------------------------------------------------------------------ #
    def client(self, rank: int) -> RuntimeClient:
        try:
            return self.clients[rank]
        except IndexError:
            raise ConfigurationError(f"no client with rank {rank}") from None

    def signal(self, event: str, iteration: int,
               node: Optional[int] = None) -> None:
        """Send a *steering* event from outside the simulation (the
        paper's "events sent … by external tools"). Fires the bound
        action immediately on the targeted node's server (all nodes when
        ``node`` is None), bypassing the per-client rendezvous."""
        from repro.core.equeue import UserEvent
        self.config.action_for(event)  # validate
        targets = self.servers if node is None else [self.servers[node]]
        for server in targets:
            server.queue.put(UserEvent(name=event, iteration=iteration,
                                       source=-1))

    def shutdown(self, timeout: float = 60.0) -> None:
        """Finalize remaining clients and join the server threads."""
        if not self._running:
            return
        for client in self.clients:
            if not client._finalized:
                client.df_finalize()
        for server in self.servers:
            server.join(timeout=timeout)
            if server.is_alive():
                server.queue.close()
                server.join(timeout=5.0)
                raise RuntimeShutdownError(
                    f"server {server.node_index} did not stop")
        self._running = False
        self.raise_server_errors()

    def raise_server_errors(self) -> None:
        """Re-raise the first exception any server thread hit."""
        for server in self.servers:
            if server.errors:
                raise server.errors[0]

    # ------------------------------------------------------------------ #
    # aggregate accounting
    # ------------------------------------------------------------------ #
    def stats(self) -> List[RuntimeStats]:
        return [server.stats for server in self.servers]

    def total_bytes(self) -> Dict[str, int]:
        bytes_in = sum(sum(s.stats.bytes_in.values()) for s in self.servers)
        bytes_out = sum(sum(s.stats.bytes_out.values()) for s in self.servers)
        return {"raw": bytes_in, "stored": bytes_out}

    def compression_ratio_percent(self) -> float:
        totals = self.total_bytes()
        if totals["stored"] == 0:
            return 100.0
        return 100.0 * totals["raw"] / totals["stored"]

    def output_files(self) -> List[str]:
        return [path for server in self.servers
                for path in server.stats.files]

    def client_write_seconds(self) -> float:
        """Application-visible I/O time, summed over clients."""
        return sum(client.write_call_seconds for client in self.clients)

    def server_write_seconds(self) -> float:
        """Dedicated-core write time, summed over servers."""
        return sum(server.stats.total_write_seconds
                   for server in self.servers)

    def __enter__(self) -> "DamarisRuntime":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
