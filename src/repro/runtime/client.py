"""Client handles of the threaded runtime — the paper's API, for real data.

``df_write`` copies a numpy array into the node's shared buffer (one
memcpy) and notifies the server; ``dc_alloc`` returns a live numpy view
the simulation computes into, and ``dc_commit`` publishes it with no copy
at all; ``df_signal`` fires configured actions; ``df_finalize`` releases
the client.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

import numpy as np

from typing import Optional

from repro.core.config import DamarisConfig
from repro.core.equeue import Shutdown, UserEvent, WriteNotification
from repro.core.shm import Block
from repro.errors import ReproError, ShmAllocationError
from repro.observe.tracer import NULL_TRACER, Tracer
from repro.runtime.events import RuntimeQueue
from repro.runtime.shmem import RuntimeBuffer

__all__ = ["RuntimeClient"]


class RuntimeClient:
    """One simulation core's handle to its node's Damaris server."""

    def __init__(self, config: DamarisConfig, buffer: RuntimeBuffer,
                 queue: RuntimeQueue, rank: int, local_id: int,
                 tracer: Optional[Tracer] = None,
                 trace_actor: str = "") -> None:
        self.config = config
        self.buffer = buffer
        self.queue = queue
        self.rank = rank
        self.local_id = local_id
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.trace_actor = trace_actor or f"rank{rank}"
        self.writes = 0
        self.bytes_written = 0
        #: Wall-clock seconds spent inside df_write/dc_commit calls — the
        #: application-visible I/O cost (compare with the server's
        #: write_seconds to see the overlap).
        self.write_call_seconds = 0.0
        self._pending: Dict[Tuple[str, int], Block] = {}
        self._finalized = False

    # ------------------------------------------------------------------ #
    def df_write(self, name: str, iteration: int,
                 array: np.ndarray) -> None:
        """Copy one variable into shared memory and notify the server."""
        self._check_live()
        layout = self.config.layout_of(name)
        array = np.asarray(array)
        if not layout.matches(array):
            raise ReproError(
                f"array (shape {array.shape}, dtype {array.dtype}) does "
                f"not match layout {layout.name!r} of variable {name!r}")
        started = time.perf_counter()
        trace_started = self.tracer.now() if self.tracer.enabled else 0.0
        block = self.buffer.allocate(layout.nbytes, client=self.local_id)
        self.buffer.write_array(block, array)
        self.queue.put(WriteNotification(
            variable=name, iteration=iteration, source=self.rank,
            block=block, client=self.local_id))
        self.write_call_seconds += time.perf_counter() - started
        self.writes += 1
        self.bytes_written += layout.nbytes
        if self.tracer.enabled:
            self.tracer.record_span(
                "df_write", name, self.trace_actor, trace_started,
                self.tracer.now(), variable=name, iteration=iteration,
                nbytes=int(layout.nbytes), rank=self.rank)

    def df_write_dynamic(self, name: str, iteration: int,
                         array: np.ndarray) -> None:
        """Write a variable whose actual extent differs from its layout —
        Section III-D's "arrays that don't have a static shape" (particle
        populations). The layout declares the element type and the
        maximum size; only the array's real bytes are reserved/copied."""
        self._check_live()
        layout = self.config.layout_of(name)
        array = np.ascontiguousarray(array)
        if array.dtype != layout.dtype:
            raise ReproError(
                f"dynamic write of {name!r}: dtype {array.dtype} does not "
                f"match layout {layout.name!r} ({layout.dtype})")
        if array.nbytes > layout.nbytes:
            raise ReproError(
                f"dynamic write of {name!r}: {array.nbytes} B exceeds the "
                f"layout's maximum of {layout.nbytes} B")
        started = time.perf_counter()
        block = self.buffer.allocate(array.nbytes, client=self.local_id)
        self.buffer.write_array(block, array)
        self.queue.put(WriteNotification(
            variable=name, iteration=iteration, source=self.rank,
            block=block, client=self.local_id, shape=array.shape))
        self.write_call_seconds += time.perf_counter() - started
        self.writes += 1
        self.bytes_written += array.nbytes

    def dc_alloc(self, name: str, iteration: int) -> np.ndarray:
        """Reserve the variable's space and return a live view into it."""
        self._check_live()
        key = (name, iteration)
        if key in self._pending:
            raise ShmAllocationError(
                f"variable {name!r} already allocated for iteration "
                f"{iteration}")
        layout = self.config.layout_of(name)
        block = self.buffer.allocate(layout.nbytes, client=self.local_id)
        self._pending[key] = block
        return self.buffer.view(block, layout.dtype, layout.shape)

    def dc_commit(self, name: str, iteration: int) -> None:
        """Publish a ``dc_alloc``'d variable — zero copies."""
        self._check_live()
        try:
            block = self._pending.pop((name, iteration))
        except KeyError:
            raise ShmAllocationError(
                f"dc_commit of {name!r} (iteration {iteration}) without a "
                "matching dc_alloc") from None
        started = time.perf_counter()
        self.queue.put(WriteNotification(
            variable=name, iteration=iteration, source=self.rank,
            block=block, client=self.local_id))
        self.write_call_seconds += time.perf_counter() - started
        self.writes += 1
        self.bytes_written += block.size

    def df_signal(self, name: str, iteration: int) -> None:
        """Send a user-defined event to the server."""
        self._check_live()
        self.config.action_for(name)  # validate before queueing
        self.queue.put(UserEvent(name=name, iteration=iteration,
                                 source=self.rank))
        if self.tracer.enabled:
            self.tracer.record_event(
                "df_signal", name, self.trace_actor,
                event=name, iteration=iteration, rank=self.rank)

    def df_finalize(self) -> None:
        """Release the client; the server stops after the last one."""
        self._check_live()
        if self._pending:
            raise ReproError(
                f"client {self.rank} finalized with uncommitted dc_alloc "
                f"blocks: {sorted(self._pending)}")
        self._finalized = True
        self.queue.put(Shutdown(source=self.rank))

    def _check_live(self) -> None:
        if self._finalized:
            raise ReproError(f"client rank {self.rank} used after "
                             "df_finalize")
