"""Real event queue for the threaded runtime.

Carries the same message types as the DES back-end
(:mod:`repro.core.equeue`) between client threads and the dedicated
server thread.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Optional

from repro.errors import RuntimeShutdownError

__all__ = ["RuntimeQueue"]


class RuntimeQueue:
    """A bounded FIFO with blocking put/get (deque + condition)."""

    def __init__(self, capacity: int = 1024) -> None:
        self.capacity = capacity
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False

    def put(self, item: Any, timeout: Optional[float] = 30.0) -> None:
        with self._not_full:
            while len(self._items) >= self.capacity:
                if not self._not_full.wait(timeout=timeout):
                    raise RuntimeShutdownError("event queue is full")
            if self._closed:
                raise RuntimeShutdownError("event queue is closed")
            self._items.append(item)
            self._not_empty.notify()

    def get(self, timeout: Optional[float] = None) -> Any:
        with self._not_empty:
            while not self._items:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout=timeout):
                    return None
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)
