"""Real event queue for the threaded runtime.

Carries the same message types as the DES back-end
(:mod:`repro.core.equeue`) between client threads and the dedicated
server thread.

:meth:`RuntimeQueue.get` distinguishes its two "nothing arrived"
outcomes: :data:`QUEUE_CLOSED` means the queue was closed and drained
(no message will ever arrive again), ``None`` means the timeout expired
(a message may still arrive). Collapsing the two is what used to make a
server treat a long compute phase as a shutdown.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Optional

from repro.errors import RuntimeShutdownError
from repro.observe.tracer import NULL_TRACER, Tracer

__all__ = ["RuntimeQueue", "QUEUE_CLOSED"]


class _QueueClosed:
    """Sentinel type of :data:`QUEUE_CLOSED` (compare with ``is``)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "QUEUE_CLOSED"


#: Returned by :meth:`RuntimeQueue.get` when the queue is closed *and*
#: empty — distinct from ``None``, which only means the timeout expired.
QUEUE_CLOSED = _QueueClosed()


class RuntimeQueue:
    """A bounded FIFO with blocking put/get (deque + condition)."""

    def __init__(self, capacity: int = 1024,
                 tracer: Optional[Tracer] = None,
                 trace_actor: str = "queue") -> None:
        self.capacity = capacity
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.trace_actor = trace_actor
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False

    def put(self, item: Any, timeout: Optional[float] = 30.0) -> None:
        """Append ``item``, blocking while the queue is at capacity.

        Raises :class:`RuntimeShutdownError` if the queue is (or
        becomes) closed, or if the real ``timeout`` deadline passes —
        closedness is re-checked on every wakeup, so a producer blocked
        on a full queue learns about a close immediately instead of
        after its full timeout.
        """
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        with self._not_full:
            while True:
                if self._closed:
                    raise RuntimeShutdownError("event queue is closed")
                if len(self._items) < self.capacity:
                    break
                if deadline is None:
                    self._not_full.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 \
                            or not self._not_full.wait(timeout=remaining):
                        raise RuntimeShutdownError("event queue is full")
            self._items.append(item)
            depth = len(self._items)
            self._not_empty.notify()
        tracer = self.tracer
        if tracer.enabled:
            tracer.record_event("queue_depth", "put", self.trace_actor,
                                depth=depth)

    def get(self, timeout: Optional[float] = None) -> Any:
        """Pop the oldest item.

        Returns :data:`QUEUE_CLOSED` once the queue is closed and
        drained, ``None`` when the deadline expires with the queue still
        open (the caller may retry). The deadline is real: spurious
        wakeups re-wait only the remaining time.
        """
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        with self._not_empty:
            while not self._items:
                if self._closed:
                    return QUEUE_CLOSED
                if deadline is None:
                    self._not_empty.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 \
                            or not self._not_empty.wait(timeout=remaining):
                        return None
            item = self._items.popleft()
            depth = len(self._items)
            self._not_full.notify()
        tracer = self.tracer
        if tracer.enabled:
            tracer.record_event("queue_depth", "get", self.trace_actor,
                                depth=depth)
        return item

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)
