"""Jitter statistics over write-phase measurements."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ReproError

__all__ = ["JitterStats", "jitter_stats"]


@dataclass(frozen=True)
class JitterStats:
    """Summary of a set of durations (per rank or per phase)."""

    mean: float
    maximum: float
    minimum: float
    std: float
    p95: float
    count: int

    @property
    def spread(self) -> float:
        """Max minus min — the paper's 'unpredictability' (±17 s on
        Kraken for file-per-process)."""
        return self.maximum - self.minimum

    @property
    def cov(self) -> float:
        """Coefficient of variation."""
        return self.std / self.mean if self.mean > 0 else 0.0


def jitter_stats(durations: Sequence[float]) -> JitterStats:
    """Compute jitter statistics of a non-empty duration sample."""
    if len(durations) == 0:
        raise ReproError("cannot compute jitter statistics of no samples")
    array = np.asarray(durations, dtype=float)
    return JitterStats(
        mean=float(array.mean()),
        maximum=float(array.max()),
        minimum=float(array.min()),
        std=float(array.std()),
        p95=float(np.percentile(array, 95)),
        count=int(array.size),
    )
