"""Analysis: jitter statistics, the Section V-A model, scalability factors."""

from repro.analysis.stats import JitterStats, jitter_stats
from repro.analysis.model import (
    breakeven_io_fraction,
    dedication_benefit,
    dedication_pays_off,
)
from repro.analysis.scalability import scalability_factor

__all__ = [
    "JitterStats",
    "breakeven_io_fraction",
    "dedication_benefit",
    "dedication_pays_off",
    "jitter_stats",
    "scalability_factor",
]
