"""The paper's scalability factor: S = N · C576 / T_N.

``C576`` is the time of 50 iterations on the 576-core baseline without
dedicated cores and without any I/O; ``T_N`` is the time of 50 iterations
plus one write phase on N cores. Perfect scalability gives S = N.
"""

from __future__ import annotations

from repro.errors import ReproError

__all__ = ["scalability_factor"]


def scalability_factor(ncores: int, baseline_time: float,
                       measured_time: float,
                       baseline_cores: int = 576) -> float:
    """S = N · C_baseline / T_N (paper Fig. 4a)."""
    if measured_time <= 0 or baseline_time <= 0:
        raise ReproError("times must be positive")
    if ncores < 1:
        raise ReproError("ncores must be >= 1")
    del baseline_cores  # the definition normalises by the baseline *time*
    return ncores * baseline_time / measured_time
