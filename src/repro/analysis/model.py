"""The Section V-A analytical model: are all cores really needed?

With a standard approach a node spends ``C_std`` computing and ``W_std``
writing per output cycle. Dedicating one of the node's ``N`` cores
removes the visible write time but dilates computation to
``C_ded = C_std · N/(N-1)`` (assuming linear scaling), while the
dedicated core writes ``W_ded`` in the background. Damaris wins when::

    W_std + C_std > max(C_ded, W_ded)

The compute-side condition ``W_std + C_std > C_ded`` holds exactly when
the I/O fraction p (in percent of C_std) satisfies ``p ≥ 100/(N-1)`` —
4.35 % for N = 24, already below the commonly-admitted 5 %. That is the
paper's headline threshold.

A faithfulness note: under the paper's *stated* worst case
``W_ded = N · W_std`` the write-side condition ``W_std + C_std > W_ded``
simultaneously requires ``p < 100/(N-1)``, making the two conditions
jointly unsatisfiable — which is why the paper immediately observes that
the worst case "has been shown not to be true" (Section IV-C3: dedicated
cores are idle 75-99 % of the time). We therefore default the write
dilation to 1 (the measured regime) and expose it as a parameter so the
worst case can be explored.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

__all__ = ["breakeven_io_fraction", "dedication_pays_off",
           "dedication_benefit"]


def breakeven_io_fraction(cores_per_node: int) -> float:
    """Minimum I/O percentage p at which dedicating one core pays off
    (the paper's ``p = 100/(N-1)``)."""
    if cores_per_node < 2:
        raise ReproError("need at least 2 cores to dedicate one")
    return 100.0 / (cores_per_node - 1)


def dedication_pays_off(cores_per_node: int, io_fraction_percent: float,
                        write_dilation: float = 1.0) -> bool:
    """Does ``W_std + C_std > max(C_ded, W_ded)`` hold?

    ``io_fraction_percent`` is W_std as a percentage of C_std;
    ``write_dilation`` is W_ded/W_std. The default of 1 reflects the
    measured regime (Section IV-C3); passing the paper's stated worst
    case N makes the condition unsatisfiable (see the module docstring).
    """
    if io_fraction_percent < 0:
        raise ReproError("I/O fraction cannot be negative")
    n = cores_per_node
    if n < 2:
        raise ReproError("need at least 2 cores to dedicate one")
    c_std = 1.0
    w_std = io_fraction_percent / 100.0
    c_ded = c_std * n / (n - 1)
    w_ded = write_dilation * w_std
    return w_std + c_std > max(c_ded, w_ded)


@dataclass(frozen=True)
class DedicationBenefit:
    """Predicted cycle times with and without a dedicated core."""

    standard_cycle: float
    dedicated_cycle: float

    @property
    def speedup(self) -> float:
        return self.standard_cycle / self.dedicated_cycle

    @property
    def pays_off(self) -> bool:
        return self.dedicated_cycle < self.standard_cycle


def dedication_benefit(cores_per_node: int, compute_seconds: float,
                       write_seconds: float,
                       write_dilation: float = 1.0) -> DedicationBenefit:
    """Predicted per-cycle times for the two configurations."""
    if compute_seconds <= 0 or write_seconds < 0:
        raise ReproError("compute must be > 0, write >= 0")
    n = cores_per_node
    if n < 2:
        raise ReproError("need at least 2 cores to dedicate one")
    standard = compute_seconds + write_seconds
    dedicated = max(compute_seconds * n / (n - 1),
                    write_seconds * write_dilation)
    return DedicationBenefit(standard_cycle=standard,
                             dedicated_cycle=dedicated)
