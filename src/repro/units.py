"""Unit helpers: byte sizes, rates and human-readable formatting.

Conventions used across the package:

- **time** is a float in seconds of simulated (or wall-clock) time;
- **size** is an int (or float for aggregate statistics) in bytes;
- **rate** is a float in bytes per second.
"""

from __future__ import annotations

# Binary byte-size units (IEC).
KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB
TiB: int = 1024 * GiB

# Decimal units, used when quoting the paper's MB/s and GB/s figures.
KB: int = 1000
MB: int = 1000 * KB
GB: int = 1000 * MB

_SIZE_STEPS = (
    (TiB, "TiB"),
    (GiB, "GiB"),
    (MiB, "MiB"),
    (KiB, "KiB"),
)

_RATE_STEPS = (
    (GB, "GB/s"),
    (MB, "MB/s"),
    (KB, "KB/s"),
)


def fmt_bytes(nbytes: float) -> str:
    """Format a byte count with a binary suffix, e.g. ``24.0 MiB``."""
    sign = "-" if nbytes < 0 else ""
    nbytes = abs(nbytes)
    for step, suffix in _SIZE_STEPS:
        if nbytes >= step:
            return f"{sign}{nbytes / step:.2f} {suffix}"
    return f"{sign}{nbytes:.0f} B"


def fmt_rate(bytes_per_s: float) -> str:
    """Format a throughput with a decimal suffix, matching the paper's units."""
    sign = "-" if bytes_per_s < 0 else ""
    bytes_per_s = abs(bytes_per_s)
    for step, suffix in _RATE_STEPS:
        if bytes_per_s >= step:
            return f"{sign}{bytes_per_s / step:.2f} {suffix}"
    return f"{sign}{bytes_per_s:.0f} B/s"


def fmt_time(seconds: float) -> str:
    """Format a duration, picking s / ms / µs as appropriate."""
    sign = "-" if seconds < 0 else ""
    seconds = abs(seconds)
    if seconds >= 60.0:
        minutes, rem = divmod(seconds, 60.0)
        return f"{sign}{int(minutes)}m{rem:04.1f}s"
    if seconds >= 1.0:
        return f"{sign}{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{sign}{seconds * 1e3:.2f} ms"
    return f"{sign}{seconds * 1e6:.2f} us"


def parse_size(text: str) -> int:
    """Parse a human-entered size such as ``"32MB"``, ``"1 MiB"`` or ``"512"``.

    Decimal (kB/MB/GB) and binary (KiB/MiB/GiB) suffixes are both accepted;
    a bare number is bytes.
    """
    text = text.strip()
    suffixes = {
        "tib": TiB, "gib": GiB, "mib": MiB, "kib": KiB,
        "tb": 1000 * GB, "gb": GB, "mb": MB, "kb": KB,
        "b": 1,
    }
    lowered = text.lower()
    for suffix in sorted(suffixes, key=len, reverse=True):
        if lowered.endswith(suffix):
            number = lowered[: -len(suffix)].strip()
            return int(float(number) * suffixes[suffix])
    return int(float(lowered))
