"""Deployment facade: wire Damaris onto a machine (DES back-end).

``DamarisDeployment`` dedicates the last ``config.dedicated_cores`` cores
of every SMP node, builds one server per dedicated core, partitions the
remaining cores into clients (space-partitioning, Section V-A), starts the
server processes and exposes the per-core client handles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.core.client import DamarisClient
from repro.core.config import DamarisConfig
from repro.core.plugins import PluginRegistry
from repro.core.server import DamarisOptions, DedicatedCoreServer
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.core import Core
    from repro.cluster.machine import Machine
    from repro.storage.filesystem import ParallelFileSystem

__all__ = ["DamarisDeployment"]


class DamarisDeployment:
    """Damaris instantiated across every node of a machine."""

    def __init__(self, machine: "Machine", fs: "ParallelFileSystem",
                 config: DamarisConfig,
                 options: Optional[DamarisOptions] = None,
                 registry: Optional[PluginRegistry] = None) -> None:
        config.validate()
        self.machine = machine
        self.fs = fs
        self.config = config
        self.options = options if options is not None else DamarisOptions()
        self.registry = registry if registry is not None else PluginRegistry()

        ncores = machine.spec.cores_per_node
        ndedicated = config.dedicated_cores
        if ndedicated >= ncores:
            raise ConfigurationError(
                f"cannot dedicate {ndedicated} of {ncores} cores per node")

        self.servers: List[DedicatedCoreServer] = []
        self.clients: List[DamarisClient] = []
        self._client_by_core: Dict[int, DamarisClient] = {}

        total_dedicated = ndedicated * len(machine.nodes)
        slot = 0
        for node in machine.nodes:
            dedicated = node.cores[ncores - ndedicated:]
            compute = node.cores[:ncores - ndedicated]
            for core in dedicated:
                core.dedicated = True
            # Symmetric semantics (Section V-A): each dedicated core serves
            # a disjoint group of the node's compute cores.
            groups = np.array_split(np.arange(len(compute)), ndedicated)
            for dedicated_index, core in enumerate(dedicated):
                group = [compute[i] for i in groups[dedicated_index]]
                server = DedicatedCoreServer(
                    machine, fs, config, self.options, self.registry,
                    core=core, nclients=len(group),
                    slot_index=slot, nslots=total_dedicated)
                slot += 1
                self.servers.append(server)
                for local_id, client_core in enumerate(group):
                    client = DamarisClient(
                        server, client_core, local_id=local_id,
                        rank=client_core.global_index)
                    self.clients.append(client)
                    self._client_by_core[client_core.global_index] = client

        self._started = False

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Spawn every server's main loop."""
        if self._started:
            raise ConfigurationError("deployment already started")
        self.server_processes = [
            self.machine.sim.process(server.run()) for server in self.servers
        ]
        self._started = True

    def signal(self, event: str, iteration: int,
               node: Optional[int] = None) -> None:
        """Send a *steering* event from outside the simulation (the
        paper's "events sent … by external tools"): fires the bound
        action immediately on the targeted node's servers (all when
        ``node`` is None), bypassing the per-client rendezvous."""
        from repro.core.equeue import UserEvent
        self.config.action_for(event)
        for server in self.servers:
            if node is not None and server.node.index != node:
                continue
            server.queue.put(UserEvent(name=event, iteration=iteration,
                                       source=-1))

    def client_for_core(self, global_core_index: int) -> DamarisClient:
        try:
            return self._client_by_core[global_core_index]
        except KeyError:
            raise ConfigurationError(
                f"core {global_core_index} has no Damaris client (is it "
                "dedicated?)") from None

    @property
    def nclients(self) -> int:
        return len(self.clients)

    # ------------------------------------------------------------------ #
    # aggregate accounting (used by the figure benches)
    # ------------------------------------------------------------------ #
    def dedicated_write_times(self) -> List[float]:
        """Per-(server, iteration) write busy times."""
        return [busy for server in self.servers
                for busy in server.busy_by_iteration.values()]

    def mean_spare_fraction(self, iteration_period: float) -> float:
        if not self.servers:
            return 1.0
        return float(np.mean([server.spare_time(iteration_period)
                              for server in self.servers]))

    def total_bytes(self) -> Dict[str, float]:
        return {
            "raw": sum(server.bytes_raw for server in self.servers),
            "out": sum(server.bytes_out for server in self.servers),
        }

    def files_written(self) -> int:
        return sum(server.files_written for server in self.servers)
