"""Variable metadata store.

Section III-B, "Metadata management": *"All variables written by the
clients are characterized by a tuple ⟨name, iteration, source, layout⟩.
[...] Upon reception of a write-notification, the EPE will add an entry in
a metadata structure associating the tuple with the received data. The
data stay in shared memory until actions are performed on them."*
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.shm import Block
from repro.errors import ReproError
from repro.formats.layout import Layout

__all__ = ["StoredVariable", "VariableStore"]


@dataclass
class StoredVariable:
    """One buffered variable instance awaiting action."""

    name: str
    iteration: int
    source: int
    layout: Layout
    block: Block
    #: Bytes actually occupied (== layout.nbytes unless zero-copy tricks).
    nbytes: int
    #: Node-local client index (allocator region key).
    local_client: int = 0
    #: Shape override for dynamically-sized variables (particle arrays).
    shape: Optional[tuple] = None
    #: Set by plugins (e.g. compression) before persistence.
    processed_bytes: Optional[int] = None

    @property
    def effective_shape(self) -> tuple:
        return self.shape if self.shape is not None else self.layout.shape

    @property
    def key(self) -> Tuple[str, int, int]:
        return (self.name, self.iteration, self.source)

    @property
    def output_bytes(self) -> int:
        """Bytes that will hit storage (post-processing if any)."""
        return self.processed_bytes if self.processed_bytes is not None \
            else self.nbytes


class VariableStore:
    """Index of buffered variables, keyed ⟨name, iteration, source⟩."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, int, int], StoredVariable] = {}
        self._by_iteration: Dict[int, List[Tuple[str, int, int]]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, entry: StoredVariable) -> None:
        key = entry.key
        if key in self._entries:
            raise ReproError(
                f"duplicate write of {entry.name!r} (iteration "
                f"{entry.iteration}, source {entry.source})")
        self._entries[key] = entry
        self._by_iteration.setdefault(entry.iteration, []).append(key)

    def get(self, name: str, iteration: int, source: int) -> StoredVariable:
        try:
            return self._entries[(name, iteration, source)]
        except KeyError:
            raise ReproError(
                f"no buffered variable {name!r} for iteration {iteration}, "
                f"source {source}") from None

    def iteration_entries(self, iteration: int) -> List[StoredVariable]:
        """All variables buffered for one iteration (stable order)."""
        keys = self._by_iteration.get(iteration, [])
        return [self._entries[key] for key in keys]

    def iterations(self) -> List[int]:
        return sorted(self._by_iteration)

    def pop_iteration(self, iteration: int) -> List[StoredVariable]:
        """Remove and return all entries of an iteration (post-persist)."""
        keys = self._by_iteration.pop(iteration, [])
        return [self._entries.pop(key) for key in keys]

    def total_buffered_bytes(self) -> int:
        return sum(entry.nbytes for entry in self._entries.values())

    def __iter__(self) -> Iterator[StoredVariable]:
        return iter(list(self._entries.values()))
