"""Client-side Damaris API (DES back-end).

The four functions of Section III-D, as generator processes:

- ``df_write(name, iteration)`` — reserve shared memory (mutex or
  lock-free), copy the variable (one bandwidth-shared ``memcpy``), notify
  the server;
- ``df_signal(name, iteration)`` — push a user event;
- ``dc_alloc(name, iteration)`` / ``dc_commit(...)`` — the zero-copy
  variant: the simulation computes directly inside the shared buffer, so
  committing costs only a notification;
- ``df_finalize()`` — tell the server this client is done.

A full buffer blocks ``df_write``/``dc_alloc`` until the server releases
space — exactly the back-pressure a too-small real buffer produces.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.equeue import Shutdown, UserEvent, WriteNotification
from repro.core.shm import Block
from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Core
    from repro.core.server import DedicatedCoreServer

__all__ = ["DamarisClient"]


class DamarisClient:
    """Handle used by one simulation core to talk to its node's server."""

    def __init__(self, server: "DedicatedCoreServer", core: "Core",
                 local_id: int, rank: int) -> None:
        self.server = server
        self.core = core
        self.local_id = local_id
        self.rank = rank
        self.writes = 0
        self.bytes_written = 0
        self.stall_time = 0.0
        self._finalized = False

    @property
    def trace_actor(self) -> str:
        """Trace row identity of this client ("pid/tid" in Chrome terms)."""
        return f"node{self.core.node.index}/rank{self.rank}"

    # ------------------------------------------------------------------ #
    # the API
    # ------------------------------------------------------------------ #
    def df_write(self, name: str, iteration: int,
                 nbytes: Optional[int] = None):
        """Process: copy one variable into shared memory and notify.

        ``nbytes`` overrides the layout size (for variables whose actual
        extent differs, e.g. particle arrays)."""
        self._check_live()
        sim = self.server.machine.sim
        started = sim.now
        size = nbytes if nbytes is not None \
            else self.server.config.layout_of(name).nbytes
        block = yield from self._reserve(size)
        flow = self.core.node.memcpy(size, label=f"dfwrite.{name}")
        yield flow.event
        yield from self._notify(WriteNotification(
            variable=name, iteration=iteration, source=self.rank,
            block=block, client=self.local_id))
        self.writes += 1
        self.bytes_written += size
        tracer = sim.tracer
        if tracer.enabled:
            tracer.record_span(
                "df_write", name, self.trace_actor, started, sim.now,
                variable=name, iteration=iteration, nbytes=int(size),
                rank=self.rank)
        return size

    def dc_alloc(self, name: str, iteration: int):
        """Process: reserve the variable's space for in-place computation.

        Returns the :class:`Block`; pair with :meth:`dc_commit`."""
        self._check_live()
        size = self.server.config.layout_of(name).nbytes
        block = yield from self._reserve(size)
        return block

    def dc_commit(self, name: str, iteration: int, block: Block):
        """Process: mark a ``dc_alloc``'d variable ready (zero copy)."""
        self._check_live()
        yield from self._notify(WriteNotification(
            variable=name, iteration=iteration, source=self.rank,
            block=block, client=self.local_id))
        self.writes += 1
        self.bytes_written += block.size

    def df_signal(self, name: str, iteration: int):
        """Process: send a user-defined event to the server."""
        self._check_live()
        # Validate the event exists before queueing it.
        self.server.config.action_for(name)
        yield from self._notify(UserEvent(
            name=name, iteration=iteration, source=self.rank))
        sim = self.server.machine.sim
        tracer = sim.tracer
        if tracer.enabled:
            tracer.record_event(
                "df_signal", name, self.trace_actor,
                event=name, iteration=iteration, rank=self.rank)

    def df_finalize(self):
        """Process: release this client (server stops after the last one)."""
        self._check_live()
        self._finalized = True
        yield from self._notify(Shutdown(source=self.rank))

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _reserve(self, size: int):
        """Process: allocate ``size`` bytes, blocking while the buffer is
        full; charges the allocator's serialisation cost."""
        sim = self.server.machine.sim
        options = self.server.options
        mutex_based = self.server.segment.allocator.name == "mutex"
        stall_started = None
        while True:
            if mutex_based:
                request = self.server.alloc_mutex.request()
                yield request
                if options.mutex_latency > 0:
                    yield sim.timeout(options.mutex_latency)
                block = self.server.segment.allocate(size,
                                                     client=self.local_id)
                self.server.alloc_mutex.release(request)
            else:
                block = self.server.segment.allocate(size,
                                                     client=self.local_id)
            if block is not None:
                if stall_started is not None:
                    self.stall_time += sim.now - stall_started
                    tracer = sim.tracer
                    if tracer.enabled:
                        tracer.record_span(
                            "shm_stall", "buffer_full", self.trace_actor,
                            stall_started, sim.now, nbytes=int(size),
                            rank=self.rank)
                return block
            if stall_started is None:
                stall_started = sim.now
            yield self.server.wait_for_free()

    def _notify(self, message):
        sim = self.server.machine.sim
        if self.server.options.queue_latency > 0:
            yield sim.timeout(self.server.options.queue_latency)
        yield self.server.queue.put(message)

    def _check_live(self) -> None:
        if self._finalized:
            raise ReproError(
                f"client rank {self.rank} used after df_finalize")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DamarisClient rank={self.rank} node={self.core.node.index}>"
