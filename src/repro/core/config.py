"""Damaris XML configuration.

The paper (Section III-B) keeps static metadata out of the shared-memory
path: layouts, variables and event→action bindings live in an external XML
file, directly inspired by ADIOS. The example from the paper::

    <layout name="my_layout" type="real" dimensions="64,16,2"
            language="fortran" />
    <variable name="my_variable" layout="my_layout" />
    <event name="my_event" action="do_something"
           using="my_plugin.so" scope="local" />

This module parses that dialect (plus an ``<architecture>`` section for
buffer size, allocator choice and the number of dedicated cores) and
offers a programmatic builder for tests and examples.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import (
    ConfigurationError,
    UnknownLayoutError,
    UnknownVariableError,
)
from repro.formats.layout import Layout
from repro.units import MiB, parse_size

__all__ = ["VariableSpec", "ActionSpec", "DamarisConfig"]

_VALID_SCOPES = ("local", "global")
_VALID_ALLOCATORS = ("mutex", "partitioned")


@dataclass(frozen=True)
class VariableSpec:
    """A declared variable: name + layout reference + descriptive metadata."""

    name: str
    layout: str
    group: str = ""
    unit: str = ""
    description: str = ""


@dataclass(frozen=True)
class ActionSpec:
    """An event→action binding: which plugin runs when the event arrives."""

    event: str
    action: str
    using: str = ""
    scope: str = "local"

    def __post_init__(self) -> None:
        if self.scope not in _VALID_SCOPES:
            raise ConfigurationError(
                f"event {self.event!r}: scope must be one of "
                f"{_VALID_SCOPES}, got {self.scope!r}")


@dataclass
class DamarisConfig:
    """The parsed configuration: layouts, variables, actions, architecture."""

    layouts: Dict[str, Layout] = field(default_factory=dict)
    variables: Dict[str, VariableSpec] = field(default_factory=dict)
    actions: Dict[str, ActionSpec] = field(default_factory=dict)
    buffer_size: int = 256 * MiB
    allocator: str = "mutex"
    dedicated_cores: int = 1
    queue_size: int = 1024

    # ------------------------------------------------------------------ #
    # builder API
    # ------------------------------------------------------------------ #
    def add_layout(self, name: str, type: str, dimensions, *,
                   language: str = "c") -> "DamarisConfig":
        if isinstance(dimensions, str):
            layout = Layout.parse(name, type, dimensions, language)
        else:
            layout = Layout(name, type, tuple(dimensions), language)
        if name in self.layouts:
            raise ConfigurationError(f"duplicate layout {name!r}")
        self.layouts[name] = layout
        return self

    def add_variable(self, name: str, layout: str, *, group: str = "",
                     unit: str = "", description: str = "") -> "DamarisConfig":
        if name in self.variables:
            raise ConfigurationError(f"duplicate variable {name!r}")
        self.variables[name] = VariableSpec(name, layout, group, unit,
                                            description)
        return self

    def add_event(self, name: str, action: str, *, using: str = "",
                  scope: str = "local") -> "DamarisConfig":
        if name in self.actions:
            raise ConfigurationError(f"duplicate event {name!r}")
        self.actions[name] = ActionSpec(name, action, using, scope)
        return self

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def layout_of(self, variable: str) -> Layout:
        try:
            spec = self.variables[variable]
        except KeyError:
            raise UnknownVariableError(variable) from None
        try:
            return self.layouts[spec.layout]
        except KeyError:
            raise UnknownLayoutError(
                f"variable {variable!r} references undeclared layout "
                f"{spec.layout!r}") from None

    def action_for(self, event: str) -> ActionSpec:
        try:
            return self.actions[event]
        except KeyError:
            from repro.errors import UnknownEventError
            raise UnknownEventError(event) from None

    def bytes_per_iteration(self) -> int:
        """Total bytes one client writes per iteration (all variables)."""
        return sum(self.layout_of(name).nbytes for name in self.variables)

    def validate(self) -> None:
        """Check referential integrity and architecture sanity."""
        for name in self.variables:
            self.layout_of(name)  # raises on dangling layout references
        if self.buffer_size < 1:
            raise ConfigurationError("buffer size must be positive")
        if self.allocator not in _VALID_ALLOCATORS:
            raise ConfigurationError(
                f"allocator must be one of {_VALID_ALLOCATORS}, got "
                f"{self.allocator!r}")
        if self.dedicated_cores < 1:
            raise ConfigurationError("need at least one dedicated core")
        if self.queue_size < 1:
            raise ConfigurationError("queue size must be positive")

    # ------------------------------------------------------------------ #
    # XML
    # ------------------------------------------------------------------ #
    @classmethod
    def from_xml(cls, text: str) -> "DamarisConfig":
        """Parse a configuration document (see the module docstring)."""
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise ConfigurationError(f"malformed XML: {exc}") from exc
        config = cls()

        for element in root.iter("layout"):
            config.add_layout(
                _require(element, "name"),
                _require(element, "type"),
                _require(element, "dimensions"),
                language=element.get("language", "c"),
            )
        for element in root.iter("variable"):
            config.add_variable(
                _require(element, "name"),
                _require(element, "layout"),
                group=element.get("group", ""),
                unit=element.get("unit", ""),
                description=element.get("description", ""),
            )
        for element in root.iter("event"):
            config.add_event(
                _require(element, "name"),
                _require(element, "action"),
                using=element.get("using", ""),
                scope=element.get("scope", "local"),
            )
        buffer_element = root.find(".//buffer")
        if buffer_element is not None:
            if buffer_element.get("size"):
                config.buffer_size = parse_size(buffer_element.get("size"))
            config.allocator = buffer_element.get("allocator",
                                                  config.allocator)
        dedicated = root.find(".//dedicated")
        if dedicated is not None and dedicated.get("cores"):
            config.dedicated_cores = int(dedicated.get("cores"))
        queue = root.find(".//queue")
        if queue is not None and queue.get("size"):
            config.queue_size = int(queue.get("size"))

        config.validate()
        return config

    @classmethod
    def from_file(cls, path: str) -> "DamarisConfig":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_xml(fh.read())

    def to_xml(self) -> str:
        """Render back to the XML dialect (round-trip support)."""
        root = ET.Element("damaris")
        arch = ET.SubElement(root, "architecture")
        ET.SubElement(arch, "buffer", size=str(self.buffer_size),
                      allocator=self.allocator)
        ET.SubElement(arch, "dedicated", cores=str(self.dedicated_cores))
        ET.SubElement(arch, "queue", size=str(self.queue_size))
        data = ET.SubElement(root, "data")
        for layout in self.layouts.values():
            ET.SubElement(
                data, "layout", name=layout.name, type=layout.type,
                dimensions=",".join(str(d) for d in layout.dimensions),
                language=layout.language)
        for variable in self.variables.values():
            attrs = {"name": variable.name, "layout": variable.layout}
            if variable.group:
                attrs["group"] = variable.group
            if variable.unit:
                attrs["unit"] = variable.unit
            if variable.description:
                attrs["description"] = variable.description
            ET.SubElement(data, "variable", **attrs)
        actions = ET.SubElement(root, "actions")
        for action in self.actions.values():
            ET.SubElement(actions, "event", name=action.event,
                          action=action.action, using=action.using,
                          scope=action.scope)
        return ET.tostring(root, encoding="unicode")


def _require(element: ET.Element, attribute: str) -> str:
    value = element.get(attribute)
    if value is None:
        raise ConfigurationError(
            f"<{element.tag}> element is missing the {attribute!r} attribute")
    return value
