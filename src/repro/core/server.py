"""The dedicated-core server (DES back-end).

One server runs on each dedicated core. It owns the node's shared-memory
segment and event queue, keeps the variable metadata store, and reacts to
user events through the EPE: compressing, scheduling and persisting the
buffered variables into **one large file per node per iteration** — the
aggregation that gives Damaris its throughput advantage (fewer metadata
operations, bigger contiguous writes, no inter-node synchronisation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.config import DamarisConfig
from repro.core.equeue import Shutdown, UserEvent, WriteNotification
from repro.core.metadata import StoredVariable, VariableStore
from repro.core.plugins import PluginRegistry
from repro.core.epe import EventProcessingEngine
from repro.core.scheduler import TransferScheduler
from repro.core.shm import SharedMemorySegment
from repro.des.core import Event
from repro.des.resources import Resource, Store
from repro.formats.compression import CompressionModel
from repro.formats.hdf5model import HDF5CostModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.machine import Machine
    from repro.cluster.node import Core, SMPNode
    from repro.storage.filesystem import ParallelFileSystem

__all__ = ["DamarisOptions", "DedicatedCoreServer"]


@dataclass
class DamarisOptions:
    """Deployment-wide tunables of the DES back-end."""

    #: Post-process data with this model before writing (None = raw).
    compression: Optional[CompressionModel] = None
    #: Stagger dedicated-core writes into slots (Section IV-D).
    use_scheduler: bool = False
    #: Format cost model for the persistency layer.
    hdf5: HDF5CostModel = field(default_factory=HDF5CostModel)
    #: Cost of one mutex-protected shm reservation (Boost allocator).
    mutex_latency: float = 2.0e-6
    #: Cost of pushing one message onto the shared event queue.
    queue_latency: float = 1.0e-6
    #: Where per-node files land inside the simulated file system.
    output_dir: str = "damaris"
    #: Stripe count for the per-node output files (None = fs default).
    stripe_count: Optional[int] = None


class DedicatedCoreServer:
    """Damaris server process bound to one dedicated core."""

    def __init__(self, machine: "Machine", fs: "ParallelFileSystem",
                 config: DamarisConfig, options: DamarisOptions,
                 registry: PluginRegistry, core: "Core", nclients: int,
                 slot_index: int = 0, nslots: int = 1) -> None:
        self.machine = machine
        self.fs = fs
        self.config = config
        self.options = options
        self.core = core
        self.node: "SMPNode" = core.node
        self.nclients = nclients

        self.segment = SharedMemorySegment(
            config.buffer_size, allocator=config.allocator,
            nclients=max(nclients, 1))
        self.queue = Store(machine.sim, capacity=config.queue_size)
        self.store = VariableStore()
        self.epe = EventProcessingEngine(config, registry, self, nclients)
        #: Serialisation point of the mutex-based allocator.
        self.alloc_mutex = Resource(machine.sim, capacity=1)
        self.scheduler: Optional[TransferScheduler] = (
            TransferScheduler(slot_index, nslots)
            if options.use_scheduler else None)

        # Accounting.
        self.busy_by_iteration: Dict[int, float] = {}
        self.persist_start_by_iteration: Dict[int, float] = {}
        self.persist_end_by_iteration: Dict[int, float] = {}
        self.bytes_raw = 0.0
        self.bytes_out = 0.0
        self.files_written = 0
        self.stats_runs = 0
        self._finalized_clients = 0
        self._free_waiters: List[Event] = []
        self._busy_accumulator: Dict[int, float] = {}
        self.running = False
        #: Iterations whose persist is in flight right now. Fault
        #: injection consults this: a crash must not double-free blocks
        #: of an iteration mid-persist, and a failover replay must not
        #: re-persist one.
        self.persisting: set = set()
        #: Failover crash state: while True the server process is dead —
        #: end-of-iteration signals are consumed without persisting
        #: anything (the data stays buffered in the surviving shm
        #: segment) until the restarted server replays it.
        self.suspended = False

    @property
    def trace_actor(self) -> str:
        """Trace row identity of this server ("pid/tid" in Chrome terms)."""
        return f"node{self.node.index}/server-core{self.core.index}"

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #
    def run(self):
        """The server process body (spawn with ``sim.process``)."""
        self.running = True
        while True:
            message = yield self.queue.get()
            if isinstance(message, WriteNotification):
                self._on_write(message)
            elif isinstance(message, UserEvent):
                yield from self.epe.handle(message)
            elif isinstance(message, Shutdown):
                self._finalized_clients += 1
                if self._finalized_clients >= self.nclients:
                    break
        # Drain: persist anything still buffered (flush-on-finalize).
        for iteration in self.store.iterations():
            yield from self.persist_iteration(iteration)
        self.running = False

    def _on_write(self, message: WriteNotification) -> None:
        layout = self.config.layout_of(message.variable)
        self.store.add(StoredVariable(
            name=message.variable,
            iteration=message.iteration,
            source=message.source,
            layout=layout,
            block=message.block,
            nbytes=message.block.size,
            local_client=message.client,
        ))

    # ------------------------------------------------------------------ #
    # actions (invoked by plugins through the EPE)
    # ------------------------------------------------------------------ #
    def compress_iteration(self, iteration: int):
        """Process: run the compression model over the iteration's data."""
        model = self.options.compression
        entries = self.store.iteration_entries(iteration)
        if model is None or not entries:
            return
        sim = self.machine.sim
        started = sim.now
        total = sum(entry.nbytes for entry in entries)
        yield sim.timeout(model.cpu_seconds(total))
        for entry in entries:
            entry.processed_bytes = int(model.output_bytes(entry.nbytes))
        self._busy_accumulator[iteration] = (
            self._busy_accumulator.get(iteration, 0.0)
            + (sim.now - started))
        tracer = sim.tracer
        if tracer.enabled:
            tracer.record_span(
                "compress", f"iter{iteration}", self.trace_actor,
                started, sim.now, iteration=iteration, nbytes=int(total))

    def persist_iteration(self, iteration: int):
        """Process: write the iteration's variables as one per-node file."""
        if self.suspended:
            # Crashed (failover semantics): the signal is lost with the
            # process image, but the data stays buffered in shm for the
            # restarted server to replay.
            return
        entries = self.store.iteration_entries(iteration)
        if not entries or iteration in self.persisting:
            # Nothing buffered, or another persist of the same iteration
            # is already in flight (a failover replay racing the
            # client's own end-of-iteration signal) — writing the
            # per-node file twice would double-charge the storage path.
            return
        self.persisting.add(iteration)
        try:
            yield from self._persist_iteration(iteration, entries)
        finally:
            self.persisting.discard(iteration)

    def _persist_iteration(self, iteration: int, entries):
        phase_start = self.machine.sim.now
        if self.scheduler is not None:
            self.scheduler.observe_phase_start(phase_start)
            delay = self.scheduler.delay_until_slot(self.machine.sim.now,
                                                    phase_start)
            if delay > 0:
                yield self.machine.sim.timeout(delay)

        busy_start = self.machine.sim.now
        raw = sum(entry.nbytes for entry in entries)
        out = sum(entry.output_bytes for entry in entries)
        file_bytes = self.options.hdf5.file_bytes(out, len(entries))

        pack = self.options.hdf5.pack_time(out)
        if pack > 0:
            yield self.machine.sim.timeout(pack)

        path = (f"{self.options.output_dir}/node{self.node.index}"
                f"/core{self.core.index}/iter{iteration}.h5")
        sim = self.machine.sim
        handle = yield sim.process(self.fs.create(
            self.node, path, stripe_count=self.options.stripe_count))
        yield sim.process(self.fs.write(handle, 0, int(file_bytes),
                                        label="damaris"))
        yield sim.process(self.fs.close(handle))

        self.release_iteration(iteration)
        busy = (self.machine.sim.now - busy_start
                + self._busy_accumulator.pop(iteration, 0.0))
        self.busy_by_iteration[iteration] = busy
        self.persist_start_by_iteration[iteration] = busy_start
        self.persist_end_by_iteration[iteration] = self.machine.sim.now
        self.bytes_raw += raw
        self.bytes_out += out
        self.files_written += 1
        tracer = sim.tracer
        if tracer.enabled:
            tracer.record_span(
                "persist", f"iter{iteration}", self.trace_actor,
                busy_start, sim.now, iteration=iteration, path=path,
                nbytes=int(out), raw_bytes=int(raw),
                entries=len(entries))
        monitor = self.machine.monitor
        monitor.series(f"damaris.node{self.node.index}.write_time").record(
            self.machine.sim.now, busy)
        monitor.counter("damaris.bytes_raw").add(raw)
        monitor.counter("damaris.bytes_out").add(out)

    def drop_buffered(self):
        """Crash semantics: discard buffered-but-unpersisted iterations.

        Iterations whose persist is already in flight are left alone —
        their flows stall on the crashed NIC and complete after
        recovery; everything else is lost with the process image.
        Returns ``(iterations dropped, bytes dropped)`` so the injector
        can account data loss.
        """
        dropped_iters = 0
        dropped_bytes = 0.0
        for iteration in list(self.store.iterations()):
            if iteration in self.persisting:
                continue
            dropped_iters += 1
            for entry in self.store.pop_iteration(iteration):
                dropped_bytes += entry.nbytes
                self.segment.free(entry.block, client=entry.local_client)
        if dropped_iters:
            waiters, self._free_waiters = self._free_waiters, []
            for waiter in waiters:
                waiter.succeed()
        return dropped_iters, dropped_bytes

    def replayable_iterations(self):
        """Buffered iterations a failover restart must re-persist.

        The named shm segment survives a dedicated-core crash, so
        everything buffered (including writes that landed during the
        outage) is recoverable; iterations already mid-persist are
        excluded — their flows merely stalled on the dead NIC and
        finish on their own after recovery.
        """
        return sorted(iteration for iteration in self.store.iterations()
                      if iteration not in self.persisting)

    def release_iteration(self, iteration: int) -> None:
        """Free the iteration's shared-memory blocks and wake any client
        stalled on a full buffer."""
        for entry in self.store.pop_iteration(iteration):
            self.segment.free(entry.block, client=entry.local_client)
        waiters, self._free_waiters = self._free_waiters, []
        for waiter in waiters:
            waiter.succeed()

    def wait_for_free(self) -> Event:
        """Event that fires the next time buffer space is released."""
        event = Event(self.machine.sim)
        self._free_waiters.append(event)
        return event

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def spare_time(self, iteration_period: float) -> float:
        """Average fraction of each iteration the dedicated core is idle."""
        if not self.busy_by_iteration or iteration_period <= 0:
            return 1.0
        import numpy as np
        busy = float(np.mean(list(self.busy_by_iteration.values())))
        return max(0.0, 1.0 - busy / iteration_period)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DedicatedCoreServer node={self.node.index} "
                f"clients={self.nclients} files={self.files_written}>")
