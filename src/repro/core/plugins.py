"""Plugin registry and the standard action plugins.

Section III-C: *"The EPE can be enriched by plugins provided by the user.
A plugin is a function [...] that the EPE will load and call in response
to events sent by the application."*

A plugin is a callable ``plugin(context)`` returning a generator (a DES
process body) or ``None``. The :class:`PluginContext` hands it the server,
the triggering event and the buffered variables of that iteration.

Standard plugins (referenced from configuration ``action=`` attributes):

- ``persist``      — write the iteration's variables to one file per node
  through the server's persistency layer (the paper's HDF5 plugin);
- ``compress``     — run the configured compression pipeline on the
  buffered data (CPU time on the dedicated core; shrinks output bytes),
  then persist;
- ``statistics``   — compute summary statistics (cheap CPU), no output;
- ``discard``      — drop the iteration's data without writing (useful to
  measure pure overlap capacity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.errors import PluginError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.equeue import UserEvent
    from repro.core.metadata import StoredVariable
    from repro.core.server import DedicatedCoreServer

__all__ = ["PluginContext", "PluginRegistry"]


@dataclass
class PluginContext:
    """Everything a plugin may touch."""

    server: "DedicatedCoreServer"
    event: "UserEvent"

    @property
    def iteration(self) -> int:
        return self.event.iteration

    @property
    def entries(self) -> List["StoredVariable"]:
        return self.server.store.iteration_entries(self.event.iteration)


class PluginRegistry:
    """Name → plugin callable. Users register their own; the standard
    plugins are pre-registered."""

    def __init__(self, include_standard: bool = True) -> None:
        self._plugins: Dict[str, Callable] = {}
        if include_standard:
            self.register("persist", _persist_plugin)
            self.register("compress", _compress_plugin)
            self.register("statistics", _statistics_plugin)
            self.register("discard", _discard_plugin)

    def register(self, name: str, plugin: Callable) -> None:
        if not callable(plugin):
            raise PluginError(f"plugin {name!r} is not callable")
        if name in self._plugins:
            raise PluginError(f"plugin {name!r} already registered")
        self._plugins[name] = plugin

    def get(self, name: str) -> Callable:
        try:
            return self._plugins[name]
        except KeyError:
            raise PluginError(f"no plugin registered under {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._plugins

    def names(self) -> List[str]:
        return sorted(self._plugins)


# ---------------------------------------------------------------------- #
# standard plugins (DES process bodies)
# ---------------------------------------------------------------------- #
def _persist_plugin(context: PluginContext):
    yield from context.server.persist_iteration(context.iteration)


def _compress_plugin(context: PluginContext):
    yield from context.server.compress_iteration(context.iteration)
    yield from context.server.persist_iteration(context.iteration)


def _statistics_plugin(context: PluginContext):
    # A cheap streaming pass over the buffered bytes (min/max/mean ~ one
    # read of the data at memory speed on the dedicated core).
    server = context.server
    total = sum(entry.nbytes for entry in context.entries)
    scan_bandwidth = 4e9  # bytes/s of a single-core streaming reduction
    if total > 0:
        yield server.machine.sim.timeout(total / scan_bandwidth)
    server.stats_runs += 1


def _discard_plugin(context: PluginContext):
    server = context.server
    yield server.machine.sim.timeout(0.0)
    server.release_iteration(context.iteration)
