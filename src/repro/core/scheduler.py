"""Data-transfer slot scheduling (Section IV-D).

*"each dedicated core computes an estimation of the computation time of an
iteration from a first run of the simulation [...]. This time is then
divided into as many slots as dedicated cores. Each dedicated core then
waits for its slot before writing. This avoids access contention at the
level of the file system."*

No inter-process communication is involved: each scheduler instance knows
only its own slot index and the (estimated) iteration period.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ReproError

__all__ = ["TransferScheduler"]


class TransferScheduler:
    """Contention-free write staggering for one dedicated core."""

    def __init__(self, slot_index: int, nslots: int,
                 estimated_period: Optional[float] = None) -> None:
        if nslots < 1:
            raise ReproError(f"need >= 1 slot, got {nslots}")
        if not 0 <= slot_index < nslots:
            raise ReproError(
                f"slot index {slot_index} out of range 0..{nslots - 1}")
        self.slot_index = slot_index
        self.nslots = nslots
        self.estimated_period = estimated_period
        self._last_phase_start: Optional[float] = None

    def observe_phase_start(self, now: float) -> None:
        """Learn the iteration period from successive write-phase starts
        (the paper's 'estimation from a first run')."""
        if self._last_phase_start is not None and self.estimated_period is None:
            self.estimated_period = now - self._last_phase_start
        self._last_phase_start = now

    def slot_offset(self) -> float:
        """Seconds after the phase start at which this core may write."""
        if self.estimated_period is None:
            return 0.0  # first phase: no estimate yet, write immediately
        return self.estimated_period * self.slot_index / self.nslots

    def delay_until_slot(self, now: float, phase_start: float) -> float:
        """How long to wait from ``now`` before starting the write."""
        target = phase_start + self.slot_offset()
        return max(0.0, target - now)
