"""Shared-memory segment and its two allocation algorithms.

Section III-B: *"A large memory buffer is created by the dedicated core at
start time, with a size chosen by the user. [...] Damaris uses the default
mutex-based allocation algorithm of the Boost library to allow concurrent
atomic reservation of segments by multiple clients. We also implemented
another lock-free reservation algorithm: when all clients are expected to
write the same amount of data, the shared-memory buffer is split in as
many parts as clients and each client uses its own region."*

Both allocators here are pure bookkeeping (offset arithmetic, no clock):
the DES charges their time costs explicitly, and the threaded runtime
wraps them in real locks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ShmAllocationError

__all__ = ["Block", "SharedMemorySegment", "MutexAllocator",
           "PartitionedAllocator"]


@dataclass(frozen=True)
class Block:
    """A reserved region of the shared buffer."""

    offset: int
    size: int

    @property
    def end(self) -> int:
        return self.offset + self.size


class Allocator:
    """Interface shared by the two reservation algorithms."""

    #: Registry name (matches the XML ``allocator=`` attribute).
    name = "abstract"

    def allocate(self, nbytes: int, client: int = 0) -> Optional[Block]:
        """Reserve ``nbytes``; None when the buffer cannot satisfy it now."""
        raise NotImplementedError

    def free(self, block: Block, client: int = 0) -> None:
        raise NotImplementedError

    @property
    def used_bytes(self) -> int:
        raise NotImplementedError


class MutexAllocator(Allocator):
    """First-fit free-list allocator (Boost's default, mutex-protected).

    Any client may reserve any amount; adjacent free regions coalesce on
    release. The *mutex* aspect is a serialisation cost charged by the
    caller (DES) or a real lock (runtime) — the bookkeeping itself is
    identical.
    """

    name = "mutex"

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ShmAllocationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        # Sorted list of (offset, size) free extents.
        self._free: List[Tuple[int, int]] = [(0, capacity)]
        self._used = 0

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity - self._used

    @property
    def largest_free_extent(self) -> int:
        return max((size for _, size in self._free), default=0)

    def allocate(self, nbytes: int, client: int = 0) -> Optional[Block]:
        if nbytes < 1:
            raise ShmAllocationError(f"cannot allocate {nbytes} bytes")
        if nbytes > self.capacity:
            raise ShmAllocationError(
                f"request of {nbytes} B exceeds the whole buffer "
                f"({self.capacity} B)")
        for position, (offset, size) in enumerate(self._free):
            if size >= nbytes:
                if size == nbytes:
                    self._free.pop(position)
                else:
                    self._free[position] = (offset + nbytes, size - nbytes)
                self._used += nbytes
                return Block(offset, nbytes)
        return None

    def free(self, block: Block, client: int = 0) -> None:
        self._used -= block.size
        if self._used < 0:
            raise ShmAllocationError("double free detected")
        # Insert and coalesce with neighbours.
        entry = (block.offset, block.size)
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < entry[0]:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, entry)
        self._coalesce(lo)

    def _coalesce(self, position: int) -> None:
        # Merge with successor first, then predecessor.
        if position + 1 < len(self._free):
            offset, size = self._free[position]
            next_offset, next_size = self._free[position + 1]
            if offset + size > next_offset:
                raise ShmAllocationError("overlapping free (double free?)")
            if offset + size == next_offset:
                self._free[position] = (offset, size + next_size)
                self._free.pop(position + 1)
        if position > 0:
            prev_offset, prev_size = self._free[position - 1]
            offset, size = self._free[position]
            if prev_offset + prev_size > offset:
                raise ShmAllocationError("overlapping free (double free?)")
            if prev_offset + prev_size == offset:
                self._free[position - 1] = (prev_offset, prev_size + size)
                self._free.pop(position)


class PartitionedAllocator(Allocator):
    """Lock-free allocator: one fixed region per client, bump-allocated.

    Requires all clients to write comparable volumes (the paper's stated
    precondition). Each client's region is a private bump arena, reset
    when all of its blocks are freed.
    """

    name = "partitioned"

    def __init__(self, capacity: int, nclients: int) -> None:
        if capacity < 1:
            raise ShmAllocationError(f"capacity must be >= 1, got {capacity}")
        if nclients < 1:
            raise ShmAllocationError(f"need >= 1 client, got {nclients}")
        self.capacity = capacity
        self.nclients = nclients
        self.region_size = capacity // nclients
        if self.region_size < 1:
            raise ShmAllocationError(
                f"buffer of {capacity} B cannot be split into {nclients} "
                "client regions")
        self._cursor: Dict[int, int] = {}
        self._live: Dict[int, int] = {}
        self._used = 0

    @property
    def used_bytes(self) -> int:
        return self._used

    def region_of(self, client: int) -> Block:
        self._check_client(client)
        return Block(client * self.region_size, self.region_size)

    def allocate(self, nbytes: int, client: int = 0) -> Optional[Block]:
        self._check_client(client)
        if nbytes < 1:
            raise ShmAllocationError(f"cannot allocate {nbytes} bytes")
        if nbytes > self.region_size:
            raise ShmAllocationError(
                f"request of {nbytes} B exceeds the client region "
                f"({self.region_size} B)")
        cursor = self._cursor.get(client, 0)
        if cursor + nbytes > self.region_size:
            return None
        base = client * self.region_size
        self._cursor[client] = cursor + nbytes
        self._live[client] = self._live.get(client, 0) + 1
        self._used += nbytes
        return Block(base + cursor, nbytes)

    def free(self, block: Block, client: int = 0) -> None:
        self._check_client(client)
        live = self._live.get(client, 0)
        if live < 1:
            raise ShmAllocationError(
                f"client {client} frees a block it does not hold")
        self._live[client] = live - 1
        self._used -= block.size
        if self._live[client] == 0:
            # Arena empty: rewind the bump cursor.
            self._cursor[client] = 0

    def _check_client(self, client: int) -> None:
        if not 0 <= client < self.nclients:
            raise ShmAllocationError(
                f"client id {client} out of range 0..{self.nclients - 1}")


class SharedMemorySegment:
    """The buffer one dedicated core serves, with a pluggable allocator."""

    def __init__(self, capacity: int, allocator: str = "mutex",
                 nclients: int = 1) -> None:
        self.capacity = capacity
        if allocator == "mutex":
            self.allocator: Allocator = MutexAllocator(capacity)
        elif allocator == "partitioned":
            self.allocator = PartitionedAllocator(capacity, nclients)
        else:
            raise ShmAllocationError(f"unknown allocator {allocator!r}")
        #: Total bytes that ever passed through the buffer.
        self.bytes_reserved = 0
        #: Allocation attempts that had to wait for space.
        self.stalls = 0

    def allocate(self, nbytes: int, client: int = 0) -> Optional[Block]:
        block = self.allocator.allocate(nbytes, client)
        if block is not None:
            self.bytes_reserved += nbytes
        else:
            self.stalls += 1
        return block

    def free(self, block: Block, client: int = 0) -> None:
        self.allocator.free(block, client)

    @property
    def used_bytes(self) -> int:
        return self.allocator.used_bytes
