"""Messages travelling on the Damaris event queue.

Clients push two kinds of messages (Section III-B, "Event queue"):
*write-notifications* telling the server a variable landed in shared
memory, and *user-defined events* that trigger configured actions. The
server's event-processing engine pulls them in order.

The message classes are shared by the DES back-end (where the queue is a
:class:`repro.des.resources.Store`) and the threaded runtime (a deque +
condition variable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.shm import Block

__all__ = ["WriteNotification", "UserEvent", "EndOfIteration", "Shutdown"]


@dataclass(frozen=True)
class WriteNotification:
    """`df_write` completed: ``variable`` for ``iteration`` from ``source``
    is in shared memory at ``block``. ``client`` is the node-local client
    index (the allocator's region key for the lock-free algorithm).
    ``shape`` overrides the layout's shape for dynamically-sized
    variables (particle arrays — Section III-D's "arrays that don't have
    a static shape")."""

    variable: str
    iteration: int
    source: int
    block: Block
    client: int = 0
    shape: Optional[tuple] = None


@dataclass(frozen=True)
class UserEvent:
    """`df_signal`: fire the action configured for ``name``."""

    name: str
    iteration: int
    source: int


@dataclass(frozen=True)
class EndOfIteration:
    """Internal marker the server synthesises when every client of the
    node has signalled the end of ``iteration``."""

    iteration: int


@dataclass(frozen=True)
class Shutdown:
    """`df_finalize` from the last client: drain and stop the server."""

    source: int = -1
