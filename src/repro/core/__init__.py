"""Damaris — dedicated-core asynchronous I/O middleware (the paper's
contribution).

Architecture (Section III of the paper):

- clients (simulation cores) hand data to the node's dedicated core
  through a shared-memory buffer (:mod:`repro.core.shm`) — a write costs a
  single ``memcpy``, or nothing at all with ``dc_alloc``/``dc_commit``;
- an event queue (:mod:`repro.core.equeue`) carries write-notifications
  and user-defined events to the server;
- the server's event-processing engine (:mod:`repro.core.epe`) matches
  events against the XML configuration (:mod:`repro.core.config`) and runs
  actions — plugins (:mod:`repro.core.plugins`) that persist, compress,
  index or analyse the buffered variables
  (:mod:`repro.core.metadata` keeps the ⟨name, iteration, source, layout⟩
  index);
- an optional transfer scheduler (:mod:`repro.core.scheduler`) staggers
  the dedicated cores' writes to avoid file-system contention
  (Section IV-D).

Two back-ends share this package: the DES back-end
(:mod:`repro.core.client` / :mod:`repro.core.server`, used by the paper
benchmarks) and the real threaded runtime (:mod:`repro.runtime`, used by
the examples).
"""

from repro.core.config import ActionSpec, DamarisConfig, VariableSpec
from repro.core.shm import (
    Block,
    MutexAllocator,
    PartitionedAllocator,
    SharedMemorySegment,
)
from repro.core.equeue import EndOfIteration, UserEvent, WriteNotification
from repro.core.metadata import VariableStore, StoredVariable
from repro.core.plugins import PluginRegistry
from repro.core.scheduler import TransferScheduler
from repro.core.api import DamarisDeployment

__all__ = [
    "ActionSpec",
    "Block",
    "DamarisConfig",
    "DamarisDeployment",
    "EndOfIteration",
    "MutexAllocator",
    "PartitionedAllocator",
    "PluginRegistry",
    "SharedMemorySegment",
    "StoredVariable",
    "TransferScheduler",
    "UserEvent",
    "VariableSpec",
    "VariableStore",
    "WriteNotification",
]
