"""Event-processing engine: match queue messages to configured actions.

Scope semantics (documented divergence from the C++ implementation, which
has richer scopes):

- ``scope="local"`` — the action fires **once per (event, iteration)**,
  after *every* client of the node has signalled it. This is the
  end-of-iteration persistence pattern from the paper's example program
  (each rank calls ``df_signal("my_event", step)``).
- ``scope="global"`` — the action fires immediately on **each** received
  signal (steering commands from external tools).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.core.config import ActionSpec, DamarisConfig
from repro.core.equeue import UserEvent
from repro.core.plugins import PluginContext, PluginRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.server import DedicatedCoreServer

__all__ = ["EventProcessingEngine"]


class EventProcessingEngine:
    """Per-server dispatcher from user events to plugin invocations."""

    def __init__(self, config: DamarisConfig, registry: PluginRegistry,
                 server: "DedicatedCoreServer", nclients: int) -> None:
        self.config = config
        self.registry = registry
        self.server = server
        self.nclients = nclients
        self._arrivals: Dict[Tuple[str, int], int] = {}
        self.events_processed = 0
        self.actions_fired = 0

    def handle(self, event: UserEvent):
        """Process (generator): dispatch one user event.

        Events with a negative ``source`` are *external* (steering tools,
        not clients) and fire immediately, bypassing the per-client
        rendezvous of local-scope events."""
        self.events_processed += 1
        spec = self.config.action_for(event.name)
        if spec.scope == "local" and event.source >= 0:
            key = (event.name, event.iteration)
            count = self._arrivals.get(key, 0) + 1
            if count < self.nclients:
                self._arrivals[key] = count
                return
            self._arrivals.pop(key, None)
        yield from self._fire(spec, event)

    def _fire(self, spec: ActionSpec, event: UserEvent):
        plugin = self.registry.get(spec.action)
        self.actions_fired += 1
        body = plugin(PluginContext(server=self.server, event=event))
        if body is not None:
            yield from body
