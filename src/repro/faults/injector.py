"""Compile a :class:`~repro.faults.schedule.FaultSchedule` into sim events.

The injector is armed once per experiment, after the strategy's
``setup`` and before any rank process starts. For every fault it
schedules an *injection* callback at the fault's start and a matching
*recovery* callback at its end, both at
:data:`~repro.des.core.PRIORITY_FAULT` so state mutations land before
any same-timestamp model event observes them. Injections mutate exactly
the knobs the models expose for this purpose (``StorageTarget.
set_fault_factor``, ``MetadataServer.slowdown``, ``SMPNode.slowdown``,
``ExtentLockManager.storm_revokes``, NIC ``set_capacity``); recoveries
restore the saved healthy values exactly, so post-window behaviour is
bit-identical to a never-faulted run from the same state.

Node crashes additionally notify the strategy through
:meth:`~repro.strategies.base.IOStrategy.on_fault` (which reports crash
data loss) and :meth:`~repro.strategies.base.IOStrategy.on_recover`
(which may return replay events — the dedicated-core failover variant
re-persists the surviving shm buffer); a fault only counts *recovered*
once those events complete, which is what the recovery-time metric
measures.

Zero-overhead contract: with no schedule the injector is never
constructed, no callback is scheduled, and no sequence number is
consumed — a fault-free run is bit-identical to one produced before
this module existed (gated by ``bench_des_kernel.py --check``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.des.core import Event, PRIORITY_FAULT
from repro.des.process import AllOf
from repro.faults.schedule import FaultSchedule, FaultScheduleError, FaultSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.strategies.base import IOStrategy, StrategyContext

__all__ = ["FaultRecord", "FaultInjector", "CRASH_BANDWIDTH"]

#: Residual NIC bandwidth of a crashed node, bytes/s. The flow network
#: requires strictly positive capacities; 1 B/s stalls in-flight
#: transfers for the outage (they resume at full rate on recovery)
#: instead of tearing them down, which is how a peer experiences a
#: crashed-and-rebooted node.
CRASH_BANDWIDTH = 1.0


@dataclass
class FaultRecord:
    """What one injected fault did, for the degradation metrics."""

    kind: str
    label: str
    #: Injection time of this fault (per node for correlated crashes).
    time: float
    #: Scheduled end of the outage window.
    window_end: float
    #: Entity names hit (``node3``, ``lustre.t17``, ...).
    affected: Tuple[str, ...] = ()
    #: Bytes of buffered user data lost to the fault.
    data_loss_bytes: float = 0.0
    #: Buffered iterations dropped (Damaris crash semantics).
    iterations_lost: int = 0
    #: Iterations a failover restart re-persisted.
    iterations_replayed: int = 0
    #: When the fault finished recovering (window end, or replay
    #: completion for failover crashes). None until then.
    recovered_at: Optional[float] = None

    @property
    def recovery_time(self) -> Optional[float]:
        """Injection-to-fully-recovered, the degradation-curve metric."""
        if self.recovered_at is None:
            return None
        return self.recovered_at - self.time

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "label": self.label,
            "time": self.time,
            "window_end": self.window_end,
            "affected": list(self.affected),
            "data_loss_bytes": self.data_loss_bytes,
            "iterations_lost": self.iterations_lost,
            "iterations_replayed": self.iterations_replayed,
            "recovered_at": self.recovered_at,
            "recovery_time": self.recovery_time,
        }


class FaultInjector:
    """Arms a schedule against one experiment's machine + strategy."""

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self.records: List[FaultRecord] = []
        self.done: Optional[Event] = None
        self._outstanding = 0
        self._saved_nic: Dict[int, Tuple[float, float]] = {}

    # ------------------------------------------------------------------ #
    # arming
    # ------------------------------------------------------------------ #
    def arm(self, ctx: "StrategyContext",
            strategy: "IOStrategy") -> Event:
        """Schedule every fault; returns the all-recovered event.

        Must be called before the simulation starts (all fault times
        are absolute and must not be in the simulator's past).
        """
        sim = ctx.machine.sim
        if self.done is not None:
            raise FaultScheduleError("injector already armed")
        self.done = Event(sim)
        for fault in self.schedule:
            self._validate(ctx, fault)
            if fault.kind in ("node_crash", "correlated_crash"):
                stagger = (fault.stagger
                           if fault.kind == "correlated_crash" else 0.0)
                for k, node_index in enumerate(fault.nodes):
                    start = fault.time + k * stagger
                    record = self._record(
                        fault, start, start + fault.duration,
                        (f"node{node_index}",))
                    sim.call_at(start, partial(
                        self._crash, ctx, strategy, fault, node_index,
                        record), priority=PRIORITY_FAULT)
                    sim.call_at(start + fault.duration, partial(
                        self._restore_crash, ctx, strategy, fault,
                        node_index, record), priority=PRIORITY_FAULT)
            else:
                inject, restore, affected = self._window_handlers(
                    ctx, fault)
                record = self._record(fault, fault.time,
                                      fault.time + fault.duration,
                                      affected)
                sim.call_at(fault.time,
                            partial(self._inject_window, ctx, fault,
                                    record, inject),
                            priority=PRIORITY_FAULT)
                sim.call_at(fault.time + fault.duration,
                            partial(self._restore_window, ctx, fault,
                                    record, restore),
                            priority=PRIORITY_FAULT)
        if self._outstanding == 0:
            self.done.succeed()
        return self.done

    def _record(self, fault: FaultSpec, start: float, end: float,
                affected: Tuple[str, ...]) -> FaultRecord:
        record = FaultRecord(kind=fault.kind, label=fault.display,
                             time=start, window_end=end,
                             affected=affected)
        self.records.append(record)
        self._outstanding += 1
        return record

    def _validate(self, ctx: "StrategyContext",
                  fault: FaultSpec) -> None:
        nnodes = len(ctx.machine.nodes)
        for node in fault.nodes:
            if not 0 <= node < nnodes:
                raise FaultScheduleError(
                    f"{fault.display}: node {node} does not exist "
                    f"(machine has {nnodes})")
        if fault.kind in ("ost_brownout",):
            limit = len(ctx.fs.targets)
        elif fault.kind in ("mds_brownout",):
            limit = len(ctx.fs.metadata_servers)
        else:
            return
        for target in fault.targets:
            if not 0 <= target < limit:
                raise FaultScheduleError(
                    f"{fault.display}: target {target} does not exist "
                    f"({limit} available)")

    # ------------------------------------------------------------------ #
    # node crashes
    # ------------------------------------------------------------------ #
    def _crash(self, ctx: "StrategyContext", strategy: "IOStrategy",
               fault: FaultSpec, node_index: int,
               record: FaultRecord) -> None:
        node = ctx.machine.nodes[node_index]
        self._saved_nic[id(record)] = (node.nic_tx.capacity,
                                       node.nic_rx.capacity)
        node.nic_tx.set_capacity(CRASH_BANDWIDTH)
        node.nic_rx.set_capacity(CRASH_BANDWIDTH)
        if fault.compute_factor != 1.0:
            node.slowdown = fault.compute_factor
        iters, nbytes = strategy.on_fault(ctx, fault, node)
        record.iterations_lost += iters
        record.data_loss_bytes += nbytes
        self._trace_inject(ctx, fault, record)

    def _restore_crash(self, ctx: "StrategyContext",
                       strategy: "IOStrategy", fault: FaultSpec,
                       node_index: int, record: FaultRecord) -> None:
        node = ctx.machine.nodes[node_index]
        tx, rx = self._saved_nic.pop(id(record))
        node.nic_tx.set_capacity(tx)
        node.nic_rx.set_capacity(rx)
        node.slowdown = 1.0
        replays = list(strategy.on_recover(ctx, fault, node))
        record.iterations_replayed += len(replays)
        if replays:
            sim = ctx.machine.sim
            AllOf(sim, replays).callbacks.append(
                lambda _evt: self._complete(ctx, fault, record))
        else:
            self._complete(ctx, fault, record)

    # ------------------------------------------------------------------ #
    # window faults (degrade at start, restore exactly at end)
    # ------------------------------------------------------------------ #
    def _window_handlers(self, ctx: "StrategyContext",
                         fault: FaultSpec):
        """Build (inject, restore, affected-names) for a window fault."""
        machine = ctx.machine
        fs = ctx.fs
        if fault.kind == "straggler":
            nodes = [machine.nodes[i] for i in fault.nodes] \
                if fault.nodes else list(machine.nodes)

            def inject() -> None:
                for node in nodes:
                    node.slowdown = fault.factor

            def restore() -> None:
                for node in nodes:
                    node.slowdown = 1.0

            return inject, restore, tuple(
                f"node{node.index}" for node in nodes)

        if fault.kind == "nic_degrade":
            nodes = [machine.nodes[i] for i in fault.nodes] \
                if fault.nodes else list(machine.nodes)
            saved: List[Tuple[float, float]] = []

            def inject() -> None:
                saved.clear()
                for node in nodes:
                    saved.append((node.nic_tx.capacity,
                                  node.nic_rx.capacity))
                    node.nic_tx.set_capacity(
                        max(node.nic_tx.capacity * fault.factor, 1.0))
                    node.nic_rx.set_capacity(
                        max(node.nic_rx.capacity * fault.factor, 1.0))

            def restore() -> None:
                for node, (tx, rx) in zip(nodes, saved):
                    node.nic_tx.set_capacity(tx)
                    node.nic_rx.set_capacity(rx)

            return inject, restore, tuple(
                f"node{node.index}" for node in nodes)

        if fault.kind == "ost_brownout":
            targets = [fs.targets[i] for i in fault.targets] \
                if fault.targets else list(fs.targets)

            def inject() -> None:
                for target in targets:
                    target.set_fault_factor(fault.factor)

            def restore() -> None:
                for target in targets:
                    target.set_fault_factor(1.0)

            return inject, restore, tuple(t.name for t in targets)

        if fault.kind == "mds_brownout":
            servers = [fs.metadata_servers[i] for i in fault.targets] \
                if fault.targets else list(fs.metadata_servers)

            def inject() -> None:
                for server in servers:
                    server.slowdown = fault.factor

            def restore() -> None:
                for server in servers:
                    server.slowdown = 1.0

            return inject, restore, tuple(s.name for s in servers)

        if fault.kind == "lock_storm":
            locks = fs.locks

            def inject() -> None:
                if locks is not None:
                    locks.storm_revokes += fault.extra_revokes

            def restore() -> None:
                if locks is not None:
                    locks.storm_revokes -= fault.extra_revokes

            affected = ("locks",) if locks is not None else ()
            return inject, restore, affected

        raise FaultScheduleError(  # pragma: no cover - schedule validates
            f"unhandled fault kind {fault.kind!r}")

    def _inject_window(self, ctx: "StrategyContext", fault: FaultSpec,
                       record: FaultRecord, inject) -> None:
        inject()
        self._trace_inject(ctx, fault, record)

    def _restore_window(self, ctx: "StrategyContext", fault: FaultSpec,
                        record: FaultRecord, restore) -> None:
        restore()
        self._complete(ctx, fault, record)

    # ------------------------------------------------------------------ #
    # completion + tracing
    # ------------------------------------------------------------------ #
    def _complete(self, ctx: "StrategyContext", fault: FaultSpec,
                  record: FaultRecord) -> None:
        sim = ctx.machine.sim
        record.recovered_at = sim.now
        tracer = sim.tracer
        if tracer.enabled:
            tracer.record_event(
                "fault", f"{fault.kind}:recover", "faults",
                time=sim.now, label=record.label,
                affected=list(record.affected),
                recovery_time=record.recovery_time,
                data_loss_bytes=record.data_loss_bytes,
                iterations_replayed=record.iterations_replayed)
            tracer.record_span(
                "fault", record.label, "faults", record.time, sim.now,
                kind=fault.kind, affected=list(record.affected),
                data_loss_bytes=record.data_loss_bytes)
        self._outstanding -= 1
        if self._outstanding == 0:
            self.done.succeed()

    def _trace_inject(self, ctx: "StrategyContext", fault: FaultSpec,
                      record: FaultRecord) -> None:
        tracer = ctx.machine.sim.tracer
        if tracer.enabled:
            tracer.record_event(
                "fault", f"{fault.kind}:inject", "faults",
                time=ctx.machine.sim.now, label=record.label,
                affected=list(record.affected), factor=fault.factor,
                duration=fault.duration,
                data_loss_bytes=record.data_loss_bytes,
                iterations_lost=record.iterations_lost)
