"""Declarative fault injection for the DES cluster/storage models.

The paper shows a dedicated core *hides* I/O jitter; this subsystem asks
how each strategy *survives* faults. A :class:`FaultSchedule` (typed
specs: node crash+restart, straggler slowdown, NIC degradation, OST and
metadata-server brownouts, lock-revocation storms, correlated failures)
compiles — via :class:`FaultInjector` — into simulator events that
mutate model state at the scheduled times, with matching recovery
events, ``fault``-category trace output, and per-fault recovery-time /
data-loss records for the strategy-degradation figures.
"""

from repro.faults.injector import CRASH_BANDWIDTH, FaultInjector, FaultRecord
from repro.faults.schedule import (
    FAULT_KINDS,
    FaultSchedule,
    FaultScheduleError,
    FaultSpec,
)

__all__ = [
    "CRASH_BANDWIDTH",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultRecord",
    "FaultSchedule",
    "FaultScheduleError",
    "FaultSpec",
]
