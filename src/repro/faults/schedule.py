"""Declarative fault schedules.

A :class:`FaultSchedule` is a validated list of typed :class:`FaultSpec`
entries — *when* something breaks, *what* it hits and *how hard* — that
the :class:`~repro.faults.injector.FaultInjector` compiles into simulator
events. Schedules are plain data: they round-trip through dicts and JSON
(the ``--faults <schedule.json>`` knob of the figure drivers), embed into
sweep specs, and therefore fold into the content-addressed cache keys
automatically.

Fault classes
-------------

``node_crash``
    The listed nodes lose their I/O path at ``time`` (NIC capacities cut
    to ~0) and recover ``duration`` seconds later. A dedicated-core
    Damaris server on a crashed node loses every buffered-but-unpersisted
    iteration (data loss); the failover strategy variant instead replays
    them from the surviving shm buffer after restart. ``compute_factor``
    optionally slows the node's compute blocks during the outage
    (default: compute continues — the fault models the I/O path).
``correlated_crash``
    ``node_crash`` over several nodes with an optional ``stagger``
    between successive crashes (cascading failure).
``straggler``
    The listed nodes' cores run ``factor``× slower for the window
    (applied to compute blocks that *start* inside the window).
``nic_degrade``
    The listed nodes' NIC tx/rx capacities scale by ``factor`` ∈ (0, 1]
    for the window.
``ost_brownout``
    The listed storage targets (all when empty) serve at ``factor`` of
    their modelled bandwidth for the window.
``mds_brownout``
    The listed metadata servers (all when empty) serve every operation
    ``factor``× slower for the window.
``lock_storm``
    Every lock acquisition during the window behaves as if revoked from
    another holder: ``extra_revokes`` forced revocation round-trips per
    acquisition (models a revocation storm from a competing job).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ReproError

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultSchedule"]


class FaultScheduleError(ReproError):
    """An invalid fault specification."""


#: Recognised fault classes.
FAULT_KINDS = (
    "node_crash",
    "correlated_crash",
    "straggler",
    "nic_degrade",
    "ost_brownout",
    "mds_brownout",
    "lock_storm",
)

#: Kinds whose ``factor`` is a capacity fraction in (0, 1].
_FRACTION_KINDS = frozenset({"nic_degrade", "ost_brownout"})
#: Kinds whose ``factor`` is a slowdown multiplier >= 1.
_SLOWDOWN_KINDS = frozenset({"straggler", "mds_brownout"})
#: Kinds that target node indices.
_NODE_KINDS = frozenset({"node_crash", "correlated_crash", "straggler",
                         "nic_degrade"})


@dataclass(frozen=True)
class FaultSpec:
    """One typed fault: a window plus the entities and severity it hits."""

    kind: str
    #: Injection time (simulated seconds).
    time: float
    #: Window length; recovery fires at ``time + duration``.
    duration: float
    #: Node indices hit (node-targeted kinds). Empty = all nodes.
    nodes: Tuple[int, ...] = ()
    #: Storage-target / metadata-server indices hit. Empty = all.
    targets: Tuple[int, ...] = ()
    #: Severity: capacity fraction in (0,1] for ``nic_degrade`` /
    #: ``ost_brownout``; slowdown multiplier >= 1 for ``straggler`` /
    #: ``mds_brownout``. Unused by crashes and lock storms.
    factor: float = 1.0
    #: ``correlated_crash``: seconds between successive node crashes.
    stagger: float = 0.0
    #: Crashes: compute slowdown of the node during the outage
    #: (1.0 = compute unaffected; the fault models the I/O path).
    compute_factor: float = 1.0
    #: ``lock_storm``: forced revocation round-trips per acquisition.
    extra_revokes: int = 1
    #: Free-form label carried into trace events and fault records.
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultScheduleError(
                f"unknown fault kind {self.kind!r}; known kinds: "
                f"{sorted(FAULT_KINDS)}")
        if self.time < 0:
            raise FaultScheduleError(
                f"{self.kind}: injection time must be >= 0, got {self.time}")
        if self.duration <= 0:
            raise FaultScheduleError(
                f"{self.kind}: duration must be > 0, got {self.duration}")
        if self.kind in _FRACTION_KINDS and not 0 < self.factor <= 1:
            raise FaultScheduleError(
                f"{self.kind}: factor must be a capacity fraction in "
                f"(0, 1], got {self.factor}")
        if self.kind in _SLOWDOWN_KINDS and self.factor < 1:
            raise FaultScheduleError(
                f"{self.kind}: factor must be a slowdown >= 1, "
                f"got {self.factor}")
        if self.stagger < 0:
            raise FaultScheduleError(
                f"{self.kind}: stagger must be >= 0, got {self.stagger}")
        if self.compute_factor < 1:
            raise FaultScheduleError(
                f"{self.kind}: compute_factor must be >= 1, "
                f"got {self.compute_factor}")
        if self.extra_revokes < 1:
            raise FaultScheduleError(
                f"{self.kind}: extra_revokes must be >= 1, "
                f"got {self.extra_revokes}")
        if self.kind in ("node_crash", "correlated_crash") \
                and not self.nodes:
            raise FaultScheduleError(
                f"{self.kind}: needs an explicit node list")

    @property
    def end(self) -> float:
        """Time of the last recovery this fault schedules."""
        extra = self.stagger * max(0, len(self.nodes) - 1) \
            if self.kind == "correlated_crash" else 0.0
        return self.time + self.duration + extra

    @property
    def display(self) -> str:
        return self.label or self.kind

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-ready; defaults omitted)."""
        out: Dict[str, Any] = {"kind": self.kind, "time": self.time,
                               "duration": self.duration}
        if self.nodes:
            out["nodes"] = list(self.nodes)
        if self.targets:
            out["targets"] = list(self.targets)
        if self.factor != 1.0:
            out["factor"] = self.factor
        if self.stagger:
            out["stagger"] = self.stagger
        if self.compute_factor != 1.0:
            out["compute_factor"] = self.compute_factor
        if self.extra_revokes != 1:
            out["extra_revokes"] = self.extra_revokes
        if self.label:
            out["label"] = self.label
        return out

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "FaultSpec":
        known = {"kind", "time", "duration", "nodes", "targets", "factor",
                 "stagger", "compute_factor", "extra_revokes", "label"}
        unknown = set(raw) - known
        if unknown:
            raise FaultScheduleError(
                f"unknown fault spec field(s): {sorted(unknown)} "
                f"(known: {sorted(known)})")
        if "kind" not in raw or "time" not in raw or "duration" not in raw:
            raise FaultScheduleError(
                f"a fault spec needs 'kind', 'time' and 'duration'; "
                f"got {sorted(raw)}")
        return cls(
            kind=str(raw["kind"]),
            time=float(raw["time"]),
            duration=float(raw["duration"]),
            nodes=tuple(int(n) for n in raw.get("nodes", ())),
            targets=tuple(int(t) for t in raw.get("targets", ())),
            factor=float(raw.get("factor", 1.0)),
            stagger=float(raw.get("stagger", 0.0)),
            compute_factor=float(raw.get("compute_factor", 1.0)),
            extra_revokes=int(raw.get("extra_revokes", 1)),
            label=str(raw.get("label", "")),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """A named, ordered list of fault specs."""

    faults: Tuple[FaultSpec, ...] = ()
    name: str = "faults"

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.faults)

    @property
    def kinds(self) -> Tuple[str, ...]:
        """Distinct fault classes present, in first-appearance order."""
        seen: List[str] = []
        for fault in self.faults:
            if fault.kind not in seen:
                seen.append(fault.kind)
        return tuple(seen)

    def of_kind(self, kind: str) -> "FaultSchedule":
        """Sub-schedule containing only one fault class."""
        if kind not in FAULT_KINDS:
            raise FaultScheduleError(f"unknown fault kind {kind!r}")
        return FaultSchedule(
            faults=tuple(f for f in self.faults if f.kind == kind),
            name=f"{self.name}/{kind}")

    @property
    def end(self) -> float:
        """Time of the last scheduled recovery (0.0 when empty)."""
        return max((fault.end for fault in self.faults), default=0.0)

    # -- plain-data round-trips ---------------------------------------- #
    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name,
                "faults": [fault.to_dict() for fault in self.faults]}

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "FaultSchedule":
        if not isinstance(raw, dict) or "faults" not in raw:
            raise FaultScheduleError(
                "a fault schedule is a dict with a 'faults' list "
                "(and an optional 'name')")
        faults = raw["faults"]
        if not isinstance(faults, (list, tuple)):
            raise FaultScheduleError("'faults' must be a list of specs")
        return cls(
            faults=tuple(FaultSpec.from_dict(item) for item in faults),
            name=str(raw.get("name", "faults")))

    @classmethod
    def from_json(cls, path: str) -> "FaultSchedule":
        """Load a schedule from a JSON file (the ``--faults`` format)."""
        with open(path, "r", encoding="utf-8") as fh:
            try:
                raw = json.load(fh)
            except json.JSONDecodeError as exc:
                raise FaultScheduleError(
                    f"{path}: not valid JSON ({exc})") from None
        schedule = cls.from_dict(raw)
        if schedule.name == "faults" and "name" not in raw:
            import os
            base = os.path.splitext(os.path.basename(path))[0]
            schedule = cls(faults=schedule.faults, name=base)
        return schedule

    def to_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
