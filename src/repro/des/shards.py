"""Persistent shard workers for the ``sharded`` max-min solver.

:mod:`repro.des.partition` splits one oversized contention component
into K resource-disjoint *shards* plus a thin set of cut classes; this
module runs the per-shard water-filling solves. Two execution modes,
chosen by the worker count:

- **in-process** (``workers <= 1``, the default whenever
  ``os.cpu_count()`` is 1): shard subproblems are solved sequentially
  in the parent by the same kernel the network uses. Even serially the
  shard decomposition wins — each shard's freeze rounds only wade
  through its *own* capacity range instead of the fused component's
  full spread, and the sharded solver caches per-shard results so a
  tick that only disturbs one shard re-solves one shard;
- **worker pool** (``workers > 1``): a pool of forked processes spawned
  once per :class:`~repro.des.bandwidth.FlowNetwork`, fed through
  shared-memory arenas (``multiprocessing.RawArray``). The parent packs
  each shard's flow-class/table/capacity arrays into the arenas and
  sends only *(command, problem indices)* over a pipe — no per-tick
  pickling of numpy arrays in either direction; workers write rates and
  consumed-capacity straight back into the output arena.

Workers and parent run the *same* solve routine on the same packed
inputs (the compiled kernel when the network uses it, otherwise
:func:`repro.des.kernels.maxmin_class_solve_np`), so results are
bit-identical whichever mode executes a shard — ``REPRO_SHARD_WORKERS``
is a throughput knob, never a results knob.

Knobs
-----

``REPRO_SHARDS`` / ``FlowNetwork(shards=K)`` — target shard count for
the partitioning pass. An *algorithmic* knob: it changes (slack-bounded)
results, so it is validated strictly, folded into sweep-cache keys, and
deliberately **not** capped by the machine's core count — a 4-shard
solve on one core still reaps the smaller-range/cached-shard wins and
stays reproducible on any host.

``REPRO_SHARD_WORKERS`` / ``FlowNetwork(shard_workers=N)`` — processes
actually solving shards. A *throughput* knob resolved like
``REPRO_PARALLEL`` (warn and fall back on malformed values) and capped
at ``min(shards, os.cpu_count())`` the same way
:func:`repro.experiments.executor.default_parallelism` consumers cap
pool fan-out; 1 means in-process.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import warnings
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.des.kernels import (KERNEL_COMPILED, MaxminKernel,
                               compiled_kernel, maxmin_class_solve_np)
from repro.errors import SimulationError

__all__ = [
    "DEFAULT_SHARDS",
    "ShardProblem",
    "ShardWorkerPool",
    "resolve_shard_workers",
    "resolve_shards",
    "solve_problem",
]

#: Default shard count for ``REPRO_SOLVER=sharded``. Machine-independent
#: on purpose (see module docstring): 4 splits the mega-components the
#: cluster models produce without shredding mid-size ones.
DEFAULT_SHARDS = 4

#: Int64 header fields per packed problem (offsets into the arenas).
_HDR_FIELDS = 10
_H_FLOW_OFF, _H_NFLOWS, _H_CRES_OFF, _H_NCLASSES, _H_KMAX, \
    _H_CCAP_OFF, _H_CAPS_OFF, _H_NRES, _H_RATE_OFF, _H_USED_OFF = range(10)


def resolve_shards(shards: Optional[int]) -> int:
    """Explicit argument beats ``REPRO_SHARDS`` beats the default.

    Strict like ``REPRO_SOLVER`` — the shard count is folded into cache
    keys and bounds the fairness deviation, so a typo must fail loudly
    at construction, not degrade results quietly.
    """
    if shards is None:
        raw = os.environ.get("REPRO_SHARDS", "").strip()
        if not raw:
            return DEFAULT_SHARDS
        try:
            shards = int(raw)
        except ValueError:
            raise SimulationError(
                f"REPRO_SHARDS={raw!r} is not an integer; expected a "
                f"shard count >= 1") from None
    shards = int(shards)
    if shards < 1:
        raise SimulationError(
            f"shard count must be >= 1, got {shards} (REPRO_SHARDS)")
    return shards


def resolve_shard_workers(workers: Optional[int], shards: int) -> int:
    """Worker-process count, capped at ``min(shards, os.cpu_count())``.

    A throughput knob (results are bit-identical at any value), so a
    malformed ``REPRO_SHARD_WORKERS`` warns and falls back to the
    default instead of raising — mirroring ``REPRO_PARALLEL``.
    """
    ncpu = os.cpu_count() or 1
    if workers is None:
        raw = os.environ.get("REPRO_SHARD_WORKERS", "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                warnings.warn(
                    f"REPRO_SHARD_WORKERS={raw!r} is not an integer; "
                    f"solving shards in-process", RuntimeWarning,
                    stacklevel=2)
                workers = 1
            else:
                if workers < 1:
                    warnings.warn(
                        f"REPRO_SHARD_WORKERS={raw!r} must be a positive "
                        f"worker count; solving shards in-process",
                        RuntimeWarning, stacklevel=2)
                    workers = 1
        else:
            workers = min(shards, ncpu)
    return max(1, min(int(workers), int(shards), ncpu))


class ShardProblem(NamedTuple):
    """One shard's packed solve input (local resource numbering)."""

    #: Class id per flow, ascending slot order (ids index the tables).
    flow_class: np.ndarray
    #: ``(C, K)`` -1-padded resource lists, *local* resource indices.
    class_res: np.ndarray
    #: Per-class rate cap.
    class_cap: np.ndarray
    #: Local capacity array (only the shard's resources).
    capacities: np.ndarray
    fairness_slack: float


def solve_problem(problem: ShardProblem,
                  kernel_impl: Optional[MaxminKernel]
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Solve one shard in-process with the network's kernel."""
    if kernel_impl is not None:
        return kernel_impl.solve(
            problem.flow_class, problem.class_res, problem.class_cap,
            problem.capacities, problem.fairness_slack)
    return maxmin_class_solve_np(
        problem.flow_class, problem.class_res, problem.class_cap,
        problem.capacities, problem.fairness_slack)


def _worker_main(conn, hdr_raw, i64_raw, f64_raw, slack_raw,
                 kernel_name: str) -> None:
    """Worker loop: solve the problems named by each command.

    All array traffic goes through the shared arenas; the pipe carries
    only small index lists. The worker loads the same kernel the parent
    uses (the fork inherits an already-built compiled kernel, so this
    never recompiles) and falls back to the numpy solve if the compiled
    backend cannot load in the child.
    """
    hdr = np.frombuffer(hdr_raw, dtype=np.int64)
    i64 = np.frombuffer(i64_raw, dtype=np.int64)
    f64 = np.frombuffer(f64_raw, dtype=np.float64)
    slack = np.frombuffer(slack_raw, dtype=np.float64)
    kern = None
    if kernel_name == KERNEL_COMPILED:
        try:
            kern = compiled_kernel()
        except Exception:
            kern = None
    try:
        while True:
            msg = conn.recv()
            if msg[0] == "exit":
                break
            if msg[0] != "solve":  # pragma: no cover - protocol guard
                conn.send(("err", f"unknown command {msg[0]!r}"))
                continue
            indices = msg[1]
            try:
                for p in indices:
                    h = hdr[p * _HDR_FIELDS:(p + 1) * _HDR_FIELDS]
                    nflows = int(h[_H_NFLOWS])
                    nclasses = int(h[_H_NCLASSES])
                    kmax = int(h[_H_KMAX])
                    nres = int(h[_H_NRES])
                    flow_class = i64[h[_H_FLOW_OFF]:h[_H_FLOW_OFF] + nflows]
                    class_res = i64[h[_H_CRES_OFF]:
                                    h[_H_CRES_OFF] + nclasses * kmax
                                    ].reshape(nclasses, kmax)
                    class_cap = f64[h[_H_CCAP_OFF]:h[_H_CCAP_OFF] + nclasses]
                    caps = f64[h[_H_CAPS_OFF]:h[_H_CAPS_OFF] + nres]
                    rate_out = f64[h[_H_RATE_OFF]:h[_H_RATE_OFF] + nflows]
                    used_out = f64[h[_H_USED_OFF]:h[_H_USED_OFF] + nres]
                    problem = ShardProblem(flow_class, class_res, class_cap,
                                           caps, float(slack[p]))
                    rate, used = solve_problem(problem, kern)
                    rate_out[:] = rate
                    used_out[:] = used
                conn.send(("done", indices))
            except Exception as exc:  # surface, don't hang the parent
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover
        pass
    finally:
        conn.close()


class ShardWorkerPool:
    """A persistent pool of forked shard solvers over shared memory.

    Spawned once (lazily) per :class:`FlowNetwork`; arenas grow by
    respawning with doubled sizes, which is rare because a network's
    packed-solve footprint stabilises after the first storm. Any worker
    failure flips the pool to ``broken`` so the owner can fall back to
    in-process solving for the rest of the run instead of crashing the
    simulation mid-tick.
    """

    def __init__(self, workers: int, kernel: str,
                 i64_capacity: int = 1 << 16,
                 f64_capacity: int = 1 << 16,
                 max_problems: int = 256) -> None:
        if workers < 1:
            raise SimulationError(
                f"shard worker pool needs >= 1 worker, got {workers}")
        try:
            self._ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            raise SimulationError(
                "shard workers need the fork start method; set "
                "REPRO_SHARD_WORKERS=1 to solve in-process") from None
        self.workers = int(workers)
        self.kernel = kernel
        self.broken = False
        self.batches = 0
        self.respawns = -1  # first _spawn is the initial spawn, not a respawn
        self._procs: List = []
        self._conns: List = []
        self._spawn(i64_capacity, f64_capacity, max_problems)

    # -- lifecycle ------------------------------------------------------ #
    def _spawn(self, i64_capacity: int, f64_capacity: int,
               max_problems: int) -> None:
        self._i64_capacity = int(i64_capacity)
        self._f64_capacity = int(f64_capacity)
        self._max_problems = int(max_problems)
        self._hdr_raw = self._ctx.RawArray(
            "q", self._max_problems * _HDR_FIELDS)
        self._slack_raw = self._ctx.RawArray("d", self._max_problems)
        self._i64_raw = self._ctx.RawArray("q", self._i64_capacity)
        self._f64_raw = self._ctx.RawArray("d", self._f64_capacity)
        self._hdr = np.frombuffer(self._hdr_raw, dtype=np.int64)
        self._slack = np.frombuffer(self._slack_raw, dtype=np.float64)
        self._i64 = np.frombuffer(self._i64_raw, dtype=np.int64)
        self._f64 = np.frombuffer(self._f64_raw, dtype=np.float64)
        self._procs = []
        self._conns = []
        self.respawns += 1
        for _ in range(self.workers):
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, self._hdr_raw, self._i64_raw,
                      self._f64_raw, self._slack_raw, self.kernel),
                daemon=True)
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    def _shutdown(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("exit",))
            except (OSError, BrokenPipeError):
                pass
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=1.0)
        self._procs = []
        self._conns = []

    def close(self) -> None:
        """Stop the workers (idempotent)."""
        self._shutdown()
        self.broken = True

    def _ensure(self, n_problems: int, i64_needed: int,
                f64_needed: int) -> None:
        """Respawn with bigger arenas when a batch does not fit."""
        if (n_problems <= self._max_problems
                and i64_needed <= self._i64_capacity
                and f64_needed <= self._f64_capacity):
            return
        i64_cap = self._i64_capacity
        while i64_cap < i64_needed:
            i64_cap *= 2
        f64_cap = self._f64_capacity
        while f64_cap < f64_needed:
            f64_cap *= 2
        max_problems = self._max_problems
        while max_problems < n_problems:
            max_problems *= 2
        self._shutdown()
        self._spawn(i64_cap, f64_cap, max_problems)

    # -- solving -------------------------------------------------------- #
    def solve_batch(self, problems: Sequence[ShardProblem]
                    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Solve every problem, distributing them across the workers.

        Problems are packed into the shared arenas, index lists are
        dealt round-robin (problem ``i`` to worker ``i % workers``), and
        results are copied out of the output arena in problem order —
        deterministic regardless of worker completion order. Raises
        :class:`~repro.errors.SimulationError` (and marks the pool
        ``broken``) if a worker dies or reports a solve failure.
        """
        if self.broken:
            raise SimulationError("shard worker pool is closed/broken")
        n = len(problems)
        if n == 0:
            return []
        i64_needed = 0
        f64_needed = 0
        for prob in problems:
            i64_needed += prob.flow_class.size + prob.class_res.size
            f64_needed += (prob.class_cap.size + 2 * prob.capacities.size
                           + prob.flow_class.size)
        self._ensure(n, i64_needed, f64_needed)

        hdr, i64, f64 = self._hdr, self._i64, self._f64
        i64_off = 0
        f64_off = 0
        for p, prob in enumerate(problems):
            h = hdr[p * _HDR_FIELDS:(p + 1) * _HDR_FIELDS]
            nflows = prob.flow_class.size
            nclasses, kmax = prob.class_res.shape
            nres = prob.capacities.size
            h[_H_FLOW_OFF] = i64_off
            h[_H_NFLOWS] = nflows
            i64[i64_off:i64_off + nflows] = prob.flow_class
            i64_off += nflows
            h[_H_CRES_OFF] = i64_off
            h[_H_NCLASSES] = nclasses
            h[_H_KMAX] = kmax
            i64[i64_off:i64_off + nclasses * kmax] = prob.class_res.ravel()
            i64_off += nclasses * kmax
            h[_H_CCAP_OFF] = f64_off
            f64[f64_off:f64_off + nclasses] = prob.class_cap
            f64_off += nclasses
            h[_H_CAPS_OFF] = f64_off
            h[_H_NRES] = nres
            f64[f64_off:f64_off + nres] = prob.capacities
            f64_off += nres
            h[_H_RATE_OFF] = f64_off
            f64_off += nflows
            h[_H_USED_OFF] = f64_off
            f64_off += nres
            self._slack[p] = prob.fairness_slack

        assignments: Dict[int, List[int]] = {}
        for p in range(n):
            assignments.setdefault(p % self.workers, []).append(p)
        active = []
        try:
            for w, indices in assignments.items():
                self._conns[w].send(("solve", indices))
                active.append(w)
            for w in active:
                reply = self._conns[w].recv()
                if reply[0] != "done":
                    raise SimulationError(
                        f"shard worker {w} failed: {reply[1]}")
        except (EOFError, OSError, BrokenPipeError) as exc:
            self.close()
            raise SimulationError(
                f"shard worker pool died mid-batch: {exc}") from None

        self.batches += 1
        out: List[Tuple[np.ndarray, np.ndarray]] = []
        for p, prob in enumerate(problems):
            h = hdr[p * _HDR_FIELDS:(p + 1) * _HDR_FIELDS]
            nflows = prob.flow_class.size
            nres = prob.capacities.size
            rate = f64[h[_H_RATE_OFF]:h[_H_RATE_OFF] + nflows].copy()
            used = f64[h[_H_USED_OFF]:h[_H_USED_OFF] + nres].copy()
            out.append((rate, used))
        return out
