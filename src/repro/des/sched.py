"""Event schedulers for :class:`repro.des.core.Simulator`.

The simulator's pending-event set is a priority queue ordered by
``(time, priority, seq)``. Two interchangeable implementations live
here, selected with ``REPRO_SCHEDULER`` (or the ``scheduler=`` argument
to :class:`~repro.des.core.Simulator`):

- ``heap`` — a binary heap (:mod:`heapq`), the original scheduler.
  O(log n) per operation, unbeatable for small queues.
- ``calendar`` (default) — a calendar queue in the classic DES-scheduler
  tradition: a window of time-bucketed sorted lists gives O(1)-ish
  push/pop when events cluster (a write storm schedules thousands of
  completion ticks into a narrow time band), while a *far heap* absorbs
  everything beyond the current window — the heap fallback for sparse
  or irregular regimes. When the window drains, it snaps forward to the
  earliest far event and resizes its bucket count/width from the
  pending population.

Both pop in exactly the same total order: equal times land in the same
bucket, buckets are kept sorted on the full ``(time, priority, seq)``
key, and bucket time-ranges are disjoint and ascending — so the head of
the first non-empty bucket *is* the global minimum. Event traces are
therefore bit-identical across schedulers (asserted by
``tests/test_kernel_equivalence.py``), and the scheduler choice is
folded into sweep-cache keys purely as a guard.

Scheduling into the past is a bug in the caller, and the calendar
queue's bucket-0 clamp used to accept it silently (window times before
``win_start`` all collapse into the first bucket). Both schedulers now
keep a *pop watermark* — the time of the last popped entry — and
``push`` raises :class:`~repro.errors.SimulationError` for any time
strictly below it, mirroring the simulator's own past-scheduling guard
on ``call_at``/``schedule_callback_at``. Pushing *at* the watermark
stays legal: triggering an urgent event at the current timestamp is
ordinary DES usage.
"""

from __future__ import annotations

import heapq
import math
import os
from bisect import insort
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = [
    "SCHED_CALENDAR",
    "SCHED_HEAP",
    "CalendarScheduler",
    "HeapScheduler",
    "make_scheduler",
    "resolve_scheduler",
]

#: Calendar-queue scheduler (bucketed window + far-heap fallback).
SCHED_CALENDAR = "calendar"
#: Binary-heap scheduler (the original implementation).
SCHED_HEAP = "heap"

_Entry = Tuple[float, int, int, Any]


def resolve_scheduler(scheduler: Optional[str]) -> str:
    """Explicit argument beats ``REPRO_SCHEDULER`` beats the default."""
    if scheduler is None:
        scheduler = (os.environ.get("REPRO_SCHEDULER", "").strip()
                     or SCHED_CALENDAR)
    scheduler = scheduler.strip().lower()
    if scheduler not in (SCHED_CALENDAR, SCHED_HEAP):
        raise SimulationError(
            f"unknown scheduler {scheduler!r} (REPRO_SCHEDULER); expected "
            f"{SCHED_CALENDAR!r} or {SCHED_HEAP!r}")
    return scheduler


def _past_push_error(time: float, watermark: float) -> SimulationError:
    """A push strictly before the last popped time (caller bug)."""
    return SimulationError(
        f"cannot schedule into the past (time={time}, last popped "
        f"time={watermark})")


class HeapScheduler:
    """The classic binary heap of ``(time, priority, seq, entry)``."""

    name = SCHED_HEAP

    __slots__ = ("_heap", "_watermark")

    def __init__(self) -> None:
        self._heap: List[_Entry] = []
        self._watermark = -math.inf

    def push(self, time: float, priority: int, seq: int,
             entry: Any) -> None:
        # Inline comparison: this is the hot loop, a call per push costs
        # measurable wall time (the bench gates it).
        if time < self._watermark:
            raise _past_push_error(time, self._watermark)
        heapq.heappush(self._heap, (time, priority, seq, entry))

    def pop(self) -> _Entry:
        item = heapq.heappop(self._heap)
        self._watermark = item[0]
        return item

    def peek_time(self) -> float:
        heap = self._heap
        return heap[0][0] if heap else math.inf

    def __len__(self) -> int:
        return len(self._heap)

    def entries(self) -> List[_Entry]:
        """Pending entries in pop order (a sorted snapshot)."""
        return sorted(self._heap, key=lambda item: item[:3])

    @property
    def stats(self) -> Dict[str, Any]:
        return {"scheduler": self.name, "pending": len(self._heap)}


class CalendarScheduler:
    """Calendar queue with an auto-resizing bucket window and far-heap.

    Entries with ``time < win_end`` live in ``nbuckets`` sorted lists
    covering ``[win_start, win_end)`` in equal ``width`` slices (times
    before ``win_start`` but at or after the pop watermark clamp into
    bucket 0, which keeps the first-non-empty-bucket-head-is-minimum
    property because clamped times sort before everything else there;
    times before the watermark are rejected outright). Entries at
    or beyond ``win_end`` — including ``inf`` sentinels — wait in a
    binary far-heap. Popping scans forward from the current bucket
    cursor; when the window is empty the queue either pops straight from
    the far-heap (non-finite head) or advances: the window snaps to the
    earliest far time, bucket count and width are re-derived from the
    far population (count → next power of two, width → mean gap of a
    head sample), and every far entry inside the new window migrates.
    ``on_resize`` fires on each advance/growth with the stats dict, so
    the simulator can surface resize events through the tracer.
    """

    name = SCHED_CALENDAR

    #: Bucket-count bounds; growth doubles within these.
    MIN_BUCKETS = 8
    MAX_BUCKETS = 1 << 15
    #: Mid-window growth trigger: average bucket occupancy above this
    #: re-buckets the window at the next power of two.
    MAX_LOAD = 8
    #: Far-heap head sample used to derive the bucket width.
    WIDTH_SAMPLE = 64

    __slots__ = ("_buckets", "_far", "_cur", "_nbucketed", "_win_start",
                 "_win_end", "_width", "_watermark", "resizes",
                 "migrations", "max_pending", "on_resize")

    def __init__(self) -> None:
        self._buckets: List[List[_Entry]] = [
            [] for _ in range(self.MIN_BUCKETS)]
        self._far: List[_Entry] = []
        self._cur = 0
        self._nbucketed = 0
        self._win_start = 0.0
        self._width = 1.0
        self._win_end = self.MIN_BUCKETS * 1.0
        self._watermark = -math.inf
        self.resizes = 0
        self.migrations = 0
        self.max_pending = 0
        self.on_resize: Optional[Callable[[Dict[str, Any]], None]] = None

    # -- queue interface ---------------------------------------------- #

    def push(self, time: float, priority: int, seq: int,
             entry: Any) -> None:
        if time < self._watermark:
            raise _past_push_error(time, self._watermark)
        item = (time, priority, seq, entry)
        if time >= self._win_end:
            heapq.heappush(self._far, item)
        else:
            buckets = self._buckets
            idx = int((time - self._win_start) / self._width)
            if idx < 0:
                idx = 0
            elif idx >= len(buckets):
                idx = len(buckets) - 1
            insort(buckets[idx], item)
            if idx < self._cur:
                self._cur = idx
            self._nbucketed += 1
            if (self._nbucketed > self.MAX_LOAD * len(buckets)
                    and len(buckets) < self.MAX_BUCKETS):
                self._grow_window()
        pending = self._nbucketed + len(self._far)
        if pending > self.max_pending:
            self.max_pending = pending

    def pop(self) -> _Entry:
        if self._nbucketed == 0:
            far = self._far
            if not far:
                raise IndexError("pop from an empty scheduler")
            if not math.isfinite(far[0][0]):
                # inf (or nan-free non-finite) sentinels never enter the
                # window; serve them heap-style.
                item = heapq.heappop(far)
                self._watermark = item[0]
                return item
            self._advance_window()
            if self._nbucketed == 0:  # pragma: no cover - defensive
                item = heapq.heappop(far)
                self._watermark = item[0]
                return item
        buckets = self._buckets
        cur = self._cur
        last = len(buckets) - 1
        while not buckets[cur] and cur < last:
            cur += 1
        self._cur = cur
        self._nbucketed -= 1
        item = buckets[cur].pop(0)
        self._watermark = item[0]
        return item

    def peek_time(self) -> float:
        if self._nbucketed:
            buckets = self._buckets
            cur = self._cur
            last = len(buckets) - 1
            while not buckets[cur] and cur < last:
                cur += 1
            self._cur = cur
            return buckets[cur][0][0]
        if self._far:
            return self._far[0][0]
        return math.inf

    def __len__(self) -> int:
        return self._nbucketed + len(self._far)

    def entries(self) -> List[_Entry]:
        """Pending entries in pop order (a sorted snapshot)."""
        flat: List[_Entry] = []
        for bucket in self._buckets:
            flat.extend(bucket)
        flat.extend(self._far)
        flat.sort(key=lambda item: item[:3])
        return flat

    # -- window management -------------------------------------------- #

    def _grow_window(self) -> None:
        """Double the bucket count over the *same* time window.

        Shrinking the width without moving ``win_end`` keeps the
        far-heap invariant (all far times ≥ ``win_end``) untouched, so
        only the bucketed entries re-shelve. Concatenated in bucket
        order they are already globally sorted (disjoint ascending time
        ranges; bucket-0 clamping only prepends earlier times), so the
        rebuild appends — no per-entry insort.
        """
        old = self._buckets
        nbuckets = min(len(old) * 2, self.MAX_BUCKETS)
        width = (self._win_end - self._win_start) / nbuckets
        buckets: List[List[_Entry]] = [[] for _ in range(nbuckets)]
        win_start = self._win_start
        last = nbuckets - 1
        for bucket in old:
            for item in bucket:
                idx = int((item[0] - win_start) / width)
                if idx < 0:
                    idx = 0
                elif idx > last:
                    idx = last
                buckets[idx].append(item)
        self._buckets = buckets
        self._width = width
        self._cur = 0
        self.resizes += 1
        self._emit_resize()

    def _advance_window(self) -> None:
        """Snap the (drained) window onto the earliest far event.

        Bucket count tracks the far population; width is the mean gap
        over a head sample of far times, so a burst of co-scheduled
        completions gets a narrow dense window while sparse regimes get
        a wide one (and mostly stay on the far-heap).
        """
        far = self._far
        t0 = far[0][0]
        finite = [item[0] for item in far[:self.WIDTH_SAMPLE]
                  if math.isfinite(item[0])]
        span = (max(finite) - min(finite)) if finite else 0.0
        if span > 0.0 and len(finite) > 1:
            width = span / (len(finite) - 1)
        else:
            width = self._width if self._width > 0.0 else 1.0
        nbuckets = self.MIN_BUCKETS
        while nbuckets < len(far) and nbuckets < self.MAX_BUCKETS:
            nbuckets *= 2
        win_end = t0 + nbuckets * width
        buckets: List[List[_Entry]] = [[] for _ in range(nbuckets)]
        last = nbuckets - 1
        moved = 0
        # heappop yields ascending (time, priority, seq): each bucket is
        # appended in sorted order, no insort needed.
        while far and far[0][0] < win_end:
            item = heapq.heappop(far)
            idx = int((item[0] - t0) / width)
            if idx < 0:
                idx = 0
            elif idx > last:
                idx = last
            buckets[idx].append(item)
            moved += 1
        self._buckets = buckets
        self._width = width
        self._win_start = t0
        self._win_end = win_end
        self._cur = 0
        self._nbucketed = moved
        self.resizes += 1
        self.migrations += moved
        self._emit_resize()

    def _emit_resize(self) -> None:
        hook = self.on_resize
        if hook is not None:
            hook(self.stats)

    @property
    def stats(self) -> Dict[str, Any]:
        return {
            "scheduler": self.name,
            "pending": len(self),
            "buckets": len(self._buckets),
            "width": self._width,
            "far_pending": len(self._far),
            "resizes": self.resizes,
            "migrations": self.migrations,
            "max_pending": self.max_pending,
        }


_SCHEDULERS = {
    SCHED_HEAP: HeapScheduler,
    SCHED_CALENDAR: CalendarScheduler,
}


def make_scheduler(scheduler: Optional[str]):
    """Resolve the mode (argument > ``REPRO_SCHEDULER`` > default) and
    build the scheduler instance."""
    return _SCHEDULERS[resolve_scheduler(scheduler)]()
