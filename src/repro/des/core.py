"""Event loop, simulated clock and primitive events.

The kernel is deliberately small: a priority queue of ``(time, priority,
seq)`` keys mapped to :class:`Event` objects (or bare callables from the
slim-callback API). Everything else (processes, resources, flows) is
built on top of events and callbacks. The queue itself is pluggable —
see :mod:`repro.des.sched` for the calendar-queue default and the
binary-heap fallback, selected with ``REPRO_SCHEDULER`` or the
``scheduler=`` constructor argument; all schedulers pop in the same
``(time, priority, seq)`` total order, so the choice never changes
simulation results.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional

from repro.errors import SimulationError
from repro.des.sched import CalendarScheduler, make_scheduler
from repro.observe.tracer import NULL_TRACER

__all__ = ["Event", "Simulator", "Timeout", "PRIORITY_FAULT",
           "PRIORITY_URGENT", "PRIORITY_NORMAL", "PRIORITY_LATE"]

#: Scheduling priority for fault-injection state mutations
#: (:mod:`repro.faults`): a fault that strikes at time *t* must mutate
#: capacities/slowdowns before any same-time urgent or normal event
#: observes them.
PRIORITY_FAULT = -1
#: Scheduling priority for events that must run before same-time normal events
#: (used e.g. to batch flow arrivals before the bandwidth recomputation).
PRIORITY_URGENT = 0
#: Default scheduling priority.
PRIORITY_NORMAL = 1
#: Scheduling priority for events that must run after all same-time normal
#: events (e.g. bandwidth-share recomputation after a batch of flow arrivals).
PRIORITY_LATE = 2

# Event lifecycle states.
_PENDING = 0
_TRIGGERED = 1  # scheduled in the heap, not yet processed
_PROCESSED = 2


class Event:
    """A one-shot occurrence that callbacks (and processes) can wait on.

    An event starts *pending*; :meth:`succeed` or :meth:`fail` *triggers* it,
    scheduling it on its simulator's queue; when the simulator pops it, its
    callbacks run and it becomes *processed*.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_state", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._state = _PENDING
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled (succeeded or failed)."""
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The event's value. Raises if the event failed."""
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    def defuse(self) -> None:
        """Mark a failed event as handled so the simulator does not crash."""
        self._defused = True

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0,
                priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self._state != _PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        self._value = value
        self._state = _TRIGGERED
        self.sim._schedule(self, delay, priority)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0,
             priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event as failed with ``exception`` after ``delay``."""
        if self._state != _PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._state = _TRIGGERED
        self.sim._schedule(self, delay, priority)
        return self

    def _process(self) -> None:
        """Run callbacks; called by the simulator event loop."""
        self._state = _PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)
        if self._exception is not None and not self._defused:
            raise self._exception

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {_PENDING: "pending", _TRIGGERED: "triggered",
                 _PROCESSED: "processed"}[self._state]
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        self._state = _TRIGGERED
        sim._schedule(self, delay, PRIORITY_NORMAL)


class Simulator:
    """The discrete-event simulator: clock plus event queue.

    >>> sim = Simulator()
    >>> done = []
    >>> def hello(sim):
    ...     yield sim.timeout(3.0)
    ...     done.append(sim.now)
    >>> _ = sim.process(hello(sim))
    >>> sim.run()
    >>> done
    [3.0]
    """

    def __init__(self, scheduler: Optional[str] = None) -> None:
        self._now = 0.0
        self._sched = make_scheduler(scheduler)
        self._seq = 0
        self._running = False
        #: Resolved scheduler mode ("calendar" or "heap").
        self.scheduler = self._sched.name
        #: Instrumentation sink every model layer reaches through the
        #: simulator it already holds. The shared no-op tracer keeps the
        #: disabled hot path to one attribute load + one branch; swap in
        #: a real :class:`repro.observe.Tracer` (sim-time clock) to
        #: record — see :meth:`repro.cluster.machine.Machine.attach_tracer`.
        self.tracer = NULL_TRACER
        if isinstance(self._sched, CalendarScheduler):
            self._sched.on_resize = self._on_sched_resize

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def queue_depth(self) -> int:
        """Number of outstanding queue entries (events + slim callbacks)."""
        return len(self._sched)

    @property
    def _heap(self) -> List[Any]:
        """Pending ``(time, priority, seq, entry)`` tuples in pop order.

        A sorted snapshot, kept for tests and debugging; the live queue
        is ``self._sched`` (which may not be a heap at all).
        """
        return self._sched.entries()

    @property
    def scheduler_stats(self) -> Dict[str, Any]:
        """The active scheduler's counters (shape depends on the mode)."""
        return self._sched.stats

    def _on_sched_resize(self, stats: Dict[str, Any]) -> None:
        tracer = self.tracer
        if tracer.enabled:
            tracer.record_event("sched", "resize", "simulator",
                                time=self._now, **stats)

    # -- factory helpers ---------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator) -> "Process":
        """Start a new process from a generator. See :class:`Process`."""
        from repro.des.process import Process  # cycle: process builds on core

        return Process(self, generator)

    # -- scheduling ---------------------------------------------------------
    def _push(self, time: float, priority: int, entry: Any) -> None:
        """The single queue-insertion point: every scheduling path —
        events and slim callbacks, relative and absolute — funnels
        through here, so the sequence counter (the FIFO tie-break) and
        the scheduler interface live in exactly one place."""
        self._seq += 1
        self._sched.push(time, priority, self._seq, entry)

    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = PRIORITY_NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._push(self._now + delay, priority, event)

    def _schedule_at(self, event: Event, time: float,
                     priority: int = PRIORITY_NORMAL) -> None:
        self._push(time, priority, event)

    def schedule_callback(self, delay: float, callback: Callable[[], None],
                          priority: int = PRIORITY_NORMAL) -> Event:
        """Schedule a plain callable to run after ``delay`` seconds."""
        event = Event(self)
        event.callbacks.append(lambda _evt: callback())
        return event.succeed(delay=delay, priority=priority)

    def call_later(self, delay: float, callback: Callable[[], None],
                   priority: int = PRIORITY_NORMAL) -> None:
        """Schedule a bare callable after ``delay`` — no :class:`Event`.

        The callable itself is the heap entry: nothing is allocated
        beyond the heap tuple, where :meth:`schedule_callback` pays an
        ``Event`` + wrapper lambda + callback list per call. The price
        is that nothing can wait on it — fire-and-forget only, which is
        exactly what the kernel-internal timers
        (:meth:`repro.des.bandwidth.FlowNetwork._request_recompute`,
        the completion tick) need on the hottest path. Ordering is
        bit-identical to an event scheduled with the same (time,
        priority): both consume one sequence number.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._push(self._now + delay, priority, callback)

    def call_at(self, time: float, callback: Callable[[], None],
                priority: int = PRIORITY_NORMAL) -> None:
        """:meth:`call_later` with an *absolute* timestamp heap key.

        Like :meth:`schedule_callback_at`, the key is exactly ``time``
        (no ``now + delay`` round-trip), so re-arming a timer at a
        previously computed timestamp is free of floating-point drift.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past (time={time}, now={self._now})")
        self._push(time, priority, callback)

    def schedule_callback_at(self, time: float, callback: Callable[[], None],
                             priority: int = PRIORITY_NORMAL) -> Event:
        """Schedule a plain callable at an *absolute* simulated time.

        Unlike :meth:`schedule_callback`, the heap key is exactly ``time``
        (no ``now + delay`` round-trip), so a caller can re-arm a timer at
        a previously computed timestamp without floating-point drift.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past (time={time}, now={self._now})")
        event = Event(self)
        event.callbacks.append(lambda _evt: callback())
        event._state = _TRIGGERED
        self._schedule_at(event, time, priority)
        return event

    # -- the loop ------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._sched.peek_time()

    def step(self) -> None:
        """Process exactly one queue entry (an event or a slim callback)."""
        sched = self._sched
        if not len(sched):
            raise SimulationError("step() on an empty event queue")
        time, _prio, _seq, entry = sched.pop()
        self._now = time
        if isinstance(entry, Event):
            entry._process()
        else:
            entry()  # slim callback from call_later()/call_at()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue is empty or simulated time reaches ``until``."""
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        sched = self._sched
        try:
            if until is None:
                while len(sched):
                    self.step()
            else:
                if until < self._now:
                    raise SimulationError(
                        f"run(until={until}) is in the past (now={self._now})")
                while len(sched) and sched.peek_time() <= until:
                    self.step()
                # Advance the clock to the bound, but only for a finite
                # bound: run(until=inf) drains the queue and leaves the
                # clock at the last processed event; run(until=now) is a
                # no-op on the clock.
                if math.isfinite(until) and until > self._now:
                    self._now = until
        finally:
            self._running = False

    def run_until_complete(self, process: "Event") -> Any:
        """Run until ``process`` (or any event) completes; return its value."""
        finished = []
        process.callbacks.append(finished.append)
        while not finished:
            if not len(self._sched):
                raise SimulationError(
                    "event queue exhausted before the awaited event completed")
            self.step()
        return process.value
