"""Queued resources: FIFO servers, priority servers and object stores.

These model anything with limited concurrency — a metadata server that
serves one request at a time, a disk with a bounded queue depth, a pool of
I/O aggregators. For *bandwidth-shared* components (NICs, links, storage
targets) use :mod:`repro.des.bandwidth` instead.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, List, Optional

from repro.des.core import Event, Simulator
from repro.errors import SimulationError

__all__ = ["Resource", "PriorityResource", "Store"]


class Request(Event):
    """A pending acquisition of a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim)
        self.resource = resource

    # Support ``with resource.request() as req: yield req``.
    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)


class Resource:
    """A resource with ``capacity`` slots and a FIFO wait queue.

    >>> sim = Simulator()
    >>> server = Resource(sim, capacity=1)
    >>> def client(sim, server, log, name):
    ...     with server.request() as req:
    ...         yield req
    ...         yield sim.timeout(1.0)
    ...         log.append((name, sim.now))
    >>> log = []
    >>> _ = sim.process(client(sim, server, log, "a"))
    >>> _ = sim.process(client(sim, server, log, "b"))
    >>> sim.run()
    >>> log
    [('a', 1.0), ('b', 2.0)]
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._users: List[Request] = []
        self._queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self) -> Request:
        """Ask for a slot; the returned event fires when the slot is held."""
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.append(req)
            req.succeed()
        else:
            self._queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Give back a slot (or cancel a queued request)."""
        try:
            self._users.remove(request)
        except ValueError:
            # Not a holder: cancel from the wait queue if still there.
            try:
                self._queue.remove(request)
            except ValueError:
                pass
            return
        self._grant_next()

    def _grant_next(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            nxt = self._queue.popleft()
            self._users.append(nxt)
            nxt.succeed()


class _PriorityRequest(Request):
    __slots__ = ("priority", "_seq")

    def __init__(self, resource: "PriorityResource", priority: int,
                 seq: int) -> None:
        super().__init__(resource)
        self.priority = priority
        self._seq = seq

    def __lt__(self, other: "_PriorityRequest") -> bool:
        return (self.priority, self._seq) < (other.priority, other._seq)


class PriorityResource(Resource):
    """A :class:`Resource` whose wait queue is ordered by priority.

    Lower ``priority`` values are served first; ties are FIFO.
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        super().__init__(sim, capacity)
        self._pqueue: List[_PriorityRequest] = []
        self._seq = 0

    @property
    def queue_length(self) -> int:
        return len(self._pqueue)

    def request(self, priority: int = 0) -> _PriorityRequest:  # type: ignore[override]
        self._seq += 1
        req = _PriorityRequest(self, priority, self._seq)
        if len(self._users) < self.capacity:
            self._users.append(req)
            req.succeed()
        else:
            heapq.heappush(self._pqueue, req)
        return req

    def release(self, request: Request) -> None:
        try:
            self._users.remove(request)
        except ValueError:
            try:
                self._pqueue.remove(request)  # type: ignore[arg-type]
                heapq.heapify(self._pqueue)
            except ValueError:
                pass
            return
        self._grant_next()

    def _grant_next(self) -> None:
        while self._pqueue and len(self._users) < self.capacity:
            nxt = heapq.heappop(self._pqueue)
            self._users.append(nxt)
            nxt.succeed()


class Store:
    """An unbounded (or bounded) FIFO store of Python objects.

    ``put`` returns an event that fires once the item is stored; ``get``
    returns an event that fires with the next item (waiting if empty).
    Used for message queues (e.g. the Damaris event queue in the DES
    back-end).
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"store capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()  # events carrying a pending item

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        event = Event(self.sim)
        event._value = item
        if self.capacity is not None and len(self._items) >= self.capacity:
            self._putters.append(event)
        else:
            self._store(item)
            event.succeed(item)
        return event

    def get(self) -> Event:
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def _store(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def _admit_putter(self) -> None:
        if self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            pending = self._putters.popleft()
            item = pending._value
            self._store(item)
            pending.succeed(item)
