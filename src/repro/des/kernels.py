"""Compiled water-filling kernels for :mod:`repro.des.bandwidth`.

The max-min fair-share solve is the hottest loop of the whole DES once
storms reach ~10⁵ concurrent flows: the numpy flow-class solver pays a
handful of O(F) vectorised passes *per freeze round*, which flattens
out around 10⁴ flows. This module provides a compiled implementation of
the same per-component solve — capacity residuals, bottleneck
selection, grant scatter — selected with ``REPRO_KERNEL``:

- ``python`` (default): the numpy implementation in
  :meth:`repro.des.bandwidth.FlowNetwork._maxmin_rates`. Always
  available, no dependencies beyond numpy.
- ``compiled``: a C translation of the flow-class water-filling rounds,
  built on first use with the system C compiler into a content-addressed
  shared library (``~/.cache/repro/kernels``, override with
  ``REPRO_KERNEL_CACHE``) and loaded through :mod:`ctypes`. When no C
  compiler is available the optional :mod:`numba` dependency
  (``pip install repro[compiled]``) jit-compiles the same algorithm;
  if neither backend can be built, requesting ``compiled`` raises a
  :class:`~repro.errors.SimulationError` naming both failures — loud
  beats silently running 10x slower.

Bit-identity contract
---------------------

The compiled kernel reproduces the numpy solve *bit for bit*, not just
to tolerance: every floating-point operation happens on the same values
in the same order (IEEE-754 doubles, round-to-nearest), in particular

- per-resource occupancy counts are exact small-integer sums, so their
  accumulation order is free;
- candidate rates are ``min(min_k share[res_k], cap)`` with divisions
  on identical operands;
- the capacity consumed by a freeze batch is accumulated **per flow in
  ascending slot order** (the C side merges the frozen classes' member
  lists and sorts), exactly like the numpy scatter, then subtracted
  from the residuals in one elementwise pass.

``tests/test_kernel_equivalence.py`` asserts equality with
``np.ndarray.tobytes()`` on randomized storms, at ``fairness_slack=0``
and above, so either kernel can serve any cached sweep — the kernel
name is still folded into cache keys as a guard.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import Callable, Optional, Tuple

import numpy as np

from repro.errors import SimulationError

__all__ = [
    "KERNEL_COMPILED",
    "KERNEL_PYTHON",
    "MaxminKernel",
    "compiled_kernel",
    "kernel_status",
    "maxmin_class_solve_np",
    "maxmin_class_solve_py",
    "resolve_kernel",
]

#: Use the compiled (C or numba) water-filling kernel.
KERNEL_COMPILED = "compiled"
#: Use the pure numpy water-filling solve (always available).
KERNEL_PYTHON = "python"

#: Mirrors ``repro.des.bandwidth.MAX_RES_PER_FLOW`` (asserted on import
#: there; duplicated to keep this module importable on its own).
_KMAX = 4


def resolve_kernel(kernel: Optional[str]) -> str:
    """Explicit argument beats ``REPRO_KERNEL`` beats the default."""
    if kernel is None:
        kernel = os.environ.get("REPRO_KERNEL", "").strip() or KERNEL_PYTHON
    kernel = kernel.strip().lower()
    if kernel not in (KERNEL_COMPILED, KERNEL_PYTHON):
        raise SimulationError(
            f"unknown kernel {kernel!r} (REPRO_KERNEL); expected "
            f"{KERNEL_COMPILED!r} or {KERNEL_PYTHON!r}")
    return kernel


# --------------------------------------------------------------------- #
# the C backend
# --------------------------------------------------------------------- #
# A direct translation of FlowNetwork._maxmin_rates' flow-class rounds.
# Comments reference the numpy statements being reproduced; the order of
# every floating-point operation matches (see module docstring).
_C_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>

static int cmp_i64(const void *a, const void *b) {
    int64_t x = *(const int64_t *)a, y = *(const int64_t *)b;
    return (x > y) - (x < y);
}

/* Max-min fair rates over flow equivalence classes.
 *
 * flow_class[f] is the interned class id of the f-th solved flow, in
 * ascending slot order; class_res/class_cap are the full interned class
 * tables (rows indexed by class id, -1-padded resource lists). Outputs:
 * rate_out[f] (floored at 1e-12) and cap_used_out[r] = capacity -
 * residual. Returns the number of freeze rounds, or -1 on allocation
 * failure. */
int64_t repro_maxmin_class_solve(
    int64_t nflows, const int64_t *flow_class,
    int64_t nclasses_total, int64_t kmax,
    const int64_t *class_res, const double *class_cap,
    int64_t nres, const double *capacities,
    double fairness_slack,
    double *rate_out, double *cap_used_out)
{
    int64_t f, c, k, r, id, ui;
    int64_t nclasses = 0, rounds = 0;
    /* batch = 1.0 + self.fairness_slack + 1e-12 */
    const double batch = 1.0 + fairness_slack + 1e-12;

    int64_t *cmap = NULL, *cres = NULL, *inverse = NULL, *members = NULL;
    int64_t *cstart = NULL, *cfill = NULL, *unf = NULL, *newly = NULL;
    int64_t *buf = NULL;
    double *ccap = NULL, *cmult = NULL, *crate = NULL, *cand = NULL;
    double *counts = NULL, *cap_rem = NULL, *consumed = NULL;

    for (r = 0; r < nres; r++)
        cap_used_out[r] = 0.0;
    if (nflows == 0)
        return 0;

    /* -- intern the classes present in this solve ---------------------- */
    cmap = (int64_t *)malloc((size_t)nclasses_total * sizeof(int64_t));
    if (!cmap) goto fail;
    for (id = 0; id < nclasses_total; id++)
        cmap[id] = -1;
    for (f = 0; f < nflows; f++)
        cmap[flow_class[f]] = -2;
    /* present classes in ascending id order, as np.unique returns them */
    for (id = 0; id < nclasses_total; id++)
        if (cmap[id] == -2)
            cmap[id] = nclasses++;

    cres = (int64_t *)malloc((size_t)(nclasses * kmax) * sizeof(int64_t));
    ccap = (double *)malloc((size_t)nclasses * sizeof(double));
    cmult = (double *)malloc((size_t)nclasses * sizeof(double));
    crate = (double *)calloc((size_t)nclasses, sizeof(double));
    cand = (double *)malloc((size_t)nclasses * sizeof(double));
    inverse = (int64_t *)malloc((size_t)nflows * sizeof(int64_t));
    members = (int64_t *)malloc((size_t)nflows * sizeof(int64_t));
    buf = (int64_t *)malloc((size_t)nflows * sizeof(int64_t));
    cstart = (int64_t *)calloc((size_t)(nclasses + 1), sizeof(int64_t));
    cfill = (int64_t *)malloc((size_t)nclasses * sizeof(int64_t));
    unf = (int64_t *)malloc((size_t)nclasses * sizeof(int64_t));
    newly = (int64_t *)malloc((size_t)nclasses * sizeof(int64_t));
    counts = (double *)malloc((size_t)nres * sizeof(double));
    cap_rem = (double *)malloc((size_t)nres * sizeof(double));
    consumed = (double *)malloc((size_t)nres * sizeof(double));
    if (!cres || !ccap || !cmult || !crate || !cand || !inverse ||
        !members || !buf || !cstart || !cfill || !unf || !newly ||
        !counts || !cap_rem || !consumed)
        goto fail;

    for (id = 0; id < nclasses_total; id++) {
        c = cmap[id];
        if (c < 0)
            continue;
        for (k = 0; k < kmax; k++)
            cres[c * kmax + k] = class_res[id * kmax + k];
        ccap[c] = class_cap[id];
        cmult[c] = 0.0;
    }
    for (f = 0; f < nflows; f++) {
        c = cmap[flow_class[f]];
        inverse[f] = c;
        cmult[c] += 1.0;          /* exact: multiplicities are integers */
        cstart[c + 1] += 1;
    }
    for (c = 0; c < nclasses; c++)
        cstart[c + 1] += cstart[c];
    for (c = 0; c < nclasses; c++)
        cfill[c] = cstart[c];
    /* member lists ascend within each class: flows scanned in order */
    for (f = 0; f < nflows; f++)
        members[cfill[inverse[f]]++] = f;

    for (c = 0; c < nclasses; c++)
        unf[c] = c;               /* unfrozen, ascending present order */
    for (r = 0; r < nres; r++)
        cap_rem[r] = capacities[r];

    /* -- the freeze rounds: for _ in range(nclasses + nres + 1) -------- */
    {
        int64_t n_unf = nclasses;
        int64_t iter, max_iter = nclasses + nres + 1;
        for (iter = 0; iter < max_iter; iter++) {
            int64_t have_res = 0, n_new = 0, m = 0, wi = 0, i;
            double s_star = INFINITY, thresh;
            if (n_unf == 0)
                break;
            /* occupancy counts over unfrozen classes (exact int sums) */
            memset(counts, 0, (size_t)nres * sizeof(double));
            for (ui = 0; ui < n_unf; ui++) {
                c = unf[ui];
                for (k = 0; k < kmax; k++) {
                    r = cres[c * kmax + k];
                    if (r < 0)
                        break;
                    counts[r] += cmult[c];
                    have_res = 1;
                }
            }
            if (!have_res) {
                /* remaining flows touch no capacity: bounded by caps */
                for (ui = 0; ui < n_unf; ui++) {
                    c = unf[ui];
                    crate[c] = ccap[c];
                }
                break;
            }
            /* candidate per class: min share across resources, then cap
             * (share = max(cap_rem, 0) / counts, as the numpy solve) */
            for (ui = 0; ui < n_unf; ui++) {
                double cd = INFINITY;
                c = unf[ui];
                for (k = 0; k < kmax; k++) {
                    double sh, rem;
                    r = cres[c * kmax + k];
                    if (r < 0)
                        break;
                    rem = cap_rem[r];
                    if (rem < 0.0)
                        rem = 0.0;
                    sh = rem / counts[r];
                    if (sh < cd)
                        cd = sh;
                }
                if (ccap[c] < cd)
                    cd = ccap[c];
                cand[c] = cd;
                if (cd < s_star)
                    s_star = cd;
            }
            /* freeze = unfrozen & (candidate <= s_star * batch) */
            thresh = s_star * batch;
            for (ui = 0; ui < n_unf; ui++) {
                c = unf[ui];
                if (cand[c] <= thresh) {
                    crate[c] = cand[c];
                    newly[n_new++] = c;
                } else {
                    unf[wi++] = c;  /* stable compaction keeps order */
                }
            }
            n_unf = wi;
            /* scatter consumption per flow in ascending slot order, as
             * np.add.at over the frozen flows does, then subtract */
            for (i = 0; i < n_new; i++) {
                c = newly[i];
                for (f = cstart[c]; f < cstart[c + 1]; f++)
                    buf[m++] = members[f];
            }
            if (n_new > 1)
                qsort(buf, (size_t)m, sizeof(int64_t), cmp_i64);
            memset(consumed, 0, (size_t)nres * sizeof(double));
            for (i = 0; i < m; i++) {
                double rr;
                c = inverse[buf[i]];
                rr = crate[c];
                for (k = 0; k < kmax; k++) {
                    r = cres[c * kmax + k];
                    if (r < 0)
                        break;
                    consumed[r] += rr;
                }
            }
            for (r = 0; r < nres; r++)
                cap_rem[r] -= consumed[r];
            rounds++;
        }
    }

    /* rate = max(crate[inverse], 1e-12); cap_used = capacities - cap_rem */
    for (f = 0; f < nflows; f++) {
        double rr = crate[inverse[f]];
        rate_out[f] = rr > 1e-12 ? rr : 1e-12;
    }
    for (r = 0; r < nres; r++)
        cap_used_out[r] = capacities[r] - cap_rem[r];

    free(cmap); free(cres); free(ccap); free(cmult); free(crate);
    free(cand); free(inverse); free(members); free(buf); free(cstart);
    free(cfill); free(unf); free(newly); free(counts); free(cap_rem);
    free(consumed);
    return rounds;

fail:
    free(cmap); free(cres); free(ccap); free(cmult); free(crate);
    free(cand); free(inverse); free(members); free(buf); free(cstart);
    free(cfill); free(unf); free(newly); free(counts); free(cap_rem);
    free(consumed);
    return -1;
}
"""


def _kernel_cache_dir() -> str:
    override = os.environ.get("REPRO_KERNEL_CACHE", "").strip()
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro",
                        "kernels")


def _find_compiler() -> Optional[str]:
    cc = os.environ.get("CC", "").strip()
    if cc and shutil.which(cc):
        return cc
    for candidate in ("cc", "gcc", "clang"):
        if shutil.which(candidate):
            return candidate
    return None


def _build_c_library() -> str:
    """Compile the kernel into a content-addressed ``.so``; return its path.

    The library name embeds a hash of the C source, so editing the
    kernel never reuses a stale binary; concurrent builders (sweep
    worker processes) race benignly through an atomic ``os.replace``.
    """
    cc = _find_compiler()
    if cc is None:
        raise SimulationError(
            "no C compiler found (tried $CC, cc, gcc, clang)")
    digest = hashlib.blake2b(_C_SOURCE.encode("utf-8"),
                             digest_size=10).hexdigest()
    cache_dir = _kernel_cache_dir()
    lib_path = os.path.join(cache_dir, f"maxmin_{digest}.so")
    if os.path.exists(lib_path):
        return lib_path
    os.makedirs(cache_dir, exist_ok=True)
    fd, src_path = tempfile.mkstemp(suffix=".c", dir=cache_dir)
    tmp_lib = src_path[:-2] + ".so"
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(_C_SOURCE)
        cmd = [cc, "-O2", "-shared", "-fPIC", "-o", tmp_lib, src_path]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            raise SimulationError(
                f"kernel compilation failed ({' '.join(cmd)}):\n"
                f"{proc.stderr.strip()}")
        os.replace(tmp_lib, lib_path)
    finally:
        for leftover in (src_path, tmp_lib):
            try:
                os.unlink(leftover)
            except OSError:
                pass
    return lib_path


_F64 = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
_I64 = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")


def _load_c_solver() -> Callable:
    lib = ctypes.CDLL(_build_c_library())
    fn = lib.repro_maxmin_class_solve
    fn.restype = ctypes.c_int64
    fn.argtypes = [
        ctypes.c_int64, _I64,              # nflows, flow_class
        ctypes.c_int64, ctypes.c_int64,    # nclasses_total, kmax
        _I64, _F64,                        # class_res, class_cap
        ctypes.c_int64, _F64,              # nres, capacities
        ctypes.c_double,                   # fairness_slack
        _F64, _F64,                        # rate_out, cap_used_out
    ]
    return fn


# --------------------------------------------------------------------- #
# the vectorised numpy solve (the ``python`` kernel, callable standalone)
# --------------------------------------------------------------------- #
def maxmin_class_solve_np(flow_class: np.ndarray, class_res: np.ndarray,
                          class_cap: np.ndarray, capacities: np.ndarray,
                          fairness_slack: float
                          ) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised flow-class water-filling over an explicit class table.

    The body of ``FlowNetwork._maxmin_rates``'s class path, factored out
    so callers that hold their own packed tables — shard workers solving
    a sub-network, the sharded solver's reconciliation loop — run the
    exact same floating-point operation sequence as an in-network solve.
    Returns ``(rate, cap_used)`` like :meth:`MaxminKernel.solve`.
    """
    nres = capacities.size
    batch = 1.0 + fairness_slack + 1e-12

    present, inverse, mult = np.unique(
        flow_class, return_inverse=True, return_counts=True)
    cres = class_res[present]                 # (C, K)
    cvalid = cres >= 0                        # (C, K)
    cres_clipped = np.where(cvalid, cres, 0)  # (C, K)
    ccaps = class_cap[present]                # (C,)
    cmult = mult.astype(float)                # (C,)
    nclasses = present.size
    kmax = class_res.shape[1]

    crate = np.zeros(nclasses, dtype=float)
    cfrozen = np.zeros(nclasses, dtype=bool)
    cap_rem = capacities.astype(float).copy()
    # Round-invariant buffers, hoisted out of the freeze loop.
    counts = np.empty(nres, dtype=float)
    share = np.empty(nres, dtype=float)
    consumed = np.empty(nres, dtype=float)

    for _ in range(nclasses + nres + 1):
        unfrozen = ~cfrozen
        if not unfrozen.any():
            break
        live_valid = cvalid[unfrozen]
        members = cres[unfrozen][live_valid]
        if members.size == 0:
            # Remaining flows touch no capacity: bounded by caps only.
            crate[unfrozen] = ccaps[unfrozen]
            break
        weights = np.broadcast_to(
            cmult[unfrozen, None], live_valid.shape)[live_valid]
        counts.fill(0.0)
        np.add.at(counts, members, weights)
        used = counts > 0
        share.fill(np.inf)
        share[used] = np.maximum(cap_rem[used], 0.0) / counts[used]
        # Per-class candidate: min share across its resources, then cap.
        class_share = np.where(cvalid, share[cres_clipped], np.inf)
        candidate = np.minimum(class_share.min(axis=1), ccaps)
        s_star = float(candidate[unfrozen].min())

        freeze = unfrozen & (candidate <= s_star * batch)
        crate[freeze] = candidate[freeze]
        cfrozen[freeze] = True
        # Scatter consumption per flow, in ascending slot order, so the
        # floating-point accumulation matches the per-flow solve.
        rows = inverse[freeze[inverse]]       # class row per frozen flow
        consumed.fill(0.0)
        flat_rate = np.repeat(candidate[rows], kmax)
        flat_res = cres_clipped[rows].ravel()
        flat_valid = cvalid[rows].ravel()
        np.add.at(consumed, flat_res[flat_valid], flat_rate[flat_valid])
        cap_rem -= consumed

    rate = crate[inverse]
    # Numerical safety: every active flow must make progress.
    np.maximum(rate, 1e-12, out=rate)
    # The residual capacities double as the consumed-bandwidth table
    # for the incremental-arrival fast path.
    return rate, capacities - cap_rem


# --------------------------------------------------------------------- #
# the scalar spec (numba backend, and the C kernel's executable spec)
# --------------------------------------------------------------------- #
def maxmin_class_solve_py(flow_class: np.ndarray, class_res: np.ndarray,
                          class_cap: np.ndarray, capacities: np.ndarray,
                          fairness_slack: float, rate_out: np.ndarray,
                          cap_used_out: np.ndarray) -> int:
    """Scalar-loop water-filling: the C kernel's algorithm in Python.

    Written in the numba-jittable subset (arrays + scalars, no dicts or
    lists) so it serves two purposes: ``@njit``-compiled it is the
    ``compiled`` backend on machines with numba but no C compiler, and
    interpreted it is the executable specification the equivalence
    tests diff the C kernel against bit-for-bit.
    """
    nflows = flow_class.shape[0]
    nct = class_cap.shape[0]
    kmax = class_res.shape[1]
    nres = capacities.shape[0]
    batch = 1.0 + fairness_slack + 1e-12

    for r in range(nres):
        cap_used_out[r] = 0.0
    if nflows == 0:
        return 0

    cmap = np.full(nct, -1, dtype=np.int64)
    for f in range(nflows):
        cmap[flow_class[f]] = -2
    nclasses = 0
    for cid in range(nct):
        if cmap[cid] == -2:
            cmap[cid] = nclasses
            nclasses += 1

    cres = np.empty((nclasses, kmax), dtype=np.int64)
    ccap = np.empty(nclasses, dtype=np.float64)
    cmult = np.zeros(nclasses, dtype=np.float64)
    crate = np.zeros(nclasses, dtype=np.float64)
    cand = np.zeros(nclasses, dtype=np.float64)
    inverse = np.empty(nflows, dtype=np.int64)
    cstart = np.zeros(nclasses + 1, dtype=np.int64)
    for cid in range(nct):
        c = cmap[cid]
        if c < 0:
            continue
        for k in range(kmax):
            cres[c, k] = class_res[cid, k]
        ccap[c] = class_cap[cid]
    for f in range(nflows):
        c = cmap[flow_class[f]]
        inverse[f] = c
        cmult[c] += 1.0
        cstart[c + 1] += 1
    for c in range(nclasses):
        cstart[c + 1] += cstart[c]
    cfill = cstart[:nclasses].copy()
    members = np.empty(nflows, dtype=np.int64)
    for f in range(nflows):
        c = inverse[f]
        members[cfill[c]] = f
        cfill[c] += 1

    unf = np.arange(nclasses, dtype=np.int64)
    n_unf = nclasses
    cap_rem = capacities.astype(np.float64).copy()
    counts = np.zeros(nres, dtype=np.float64)
    consumed = np.zeros(nres, dtype=np.float64)
    newly = np.empty(nclasses, dtype=np.int64)
    buf = np.empty(nflows, dtype=np.int64)
    rounds = 0

    for _ in range(nclasses + nres + 1):
        if n_unf == 0:
            break
        have_res = False
        for r in range(nres):
            counts[r] = 0.0
        for ui in range(n_unf):
            c = unf[ui]
            for k in range(kmax):
                r = cres[c, k]
                if r < 0:
                    break
                counts[r] += cmult[c]
                have_res = True
        if not have_res:
            for ui in range(n_unf):
                c = unf[ui]
                crate[c] = ccap[c]
            break
        s_star = np.inf
        for ui in range(n_unf):
            c = unf[ui]
            cd = np.inf
            for k in range(kmax):
                r = cres[c, k]
                if r < 0:
                    break
                rem = cap_rem[r]
                if rem < 0.0:
                    rem = 0.0
                sh = rem / counts[r]
                if sh < cd:
                    cd = sh
            if ccap[c] < cd:
                cd = ccap[c]
            cand[c] = cd
            if cd < s_star:
                s_star = cd
        thresh = s_star * batch
        n_new = 0
        wi = 0
        for ui in range(n_unf):
            c = unf[ui]
            if cand[c] <= thresh:
                crate[c] = cand[c]
                newly[n_new] = c
                n_new += 1
            else:
                unf[wi] = c
                wi += 1
        n_unf = wi
        m = 0
        for i in range(n_new):
            c = newly[i]
            for p in range(cstart[c], cstart[c + 1]):
                buf[m] = members[p]
                m += 1
        frozen_flows = np.sort(buf[:m]) if n_new > 1 else buf[:m]
        for r in range(nres):
            consumed[r] = 0.0
        for i in range(m):
            c = inverse[frozen_flows[i]]
            rr = crate[c]
            for k in range(kmax):
                r = cres[c, k]
                if r < 0:
                    break
                consumed[r] += rr
        for r in range(nres):
            cap_rem[r] -= consumed[r]
        rounds += 1

    for f in range(nflows):
        rr = crate[inverse[f]]
        rate_out[f] = rr if rr > 1e-12 else 1e-12
    for r in range(nres):
        cap_used_out[r] = capacities[r] - cap_rem[r]
    return rounds


def _load_numba_solver() -> Callable:
    import numba  # optional dependency: pip install repro[compiled]

    jitted = numba.njit(cache=True)(maxmin_class_solve_py)

    def call(nflows, flow_class, nct, kmax, class_res, class_cap, nres,
             capacities, fairness_slack, rate_out, cap_used_out):
        return jitted(flow_class, class_res, class_cap, capacities,
                      fairness_slack, rate_out, cap_used_out)

    # Force compilation now so a broken numba install fails the probe
    # (and falls through to the error message) instead of the first solve.
    call(0, np.zeros(0, dtype=np.int64), 0, _KMAX,
         np.zeros((0, _KMAX), dtype=np.int64), np.zeros(0),
         0, np.zeros(0), 0.0, np.zeros(0), np.zeros(0))
    return call


class MaxminKernel:
    """Handle on a loaded compiled backend (``.backend`` is ``c`` or
    ``numba``); ``solve`` mirrors ``FlowNetwork._maxmin_rates``."""

    __slots__ = ("backend", "_fn")

    def __init__(self, backend: str, fn: Callable) -> None:
        self.backend = backend
        self._fn = fn

    def solve(self, flow_class: np.ndarray, class_res: np.ndarray,
              class_cap: np.ndarray, capacities: np.ndarray,
              fairness_slack: float) -> Tuple[np.ndarray, np.ndarray]:
        rate = np.empty(flow_class.size, dtype=np.float64)
        cap_used = np.empty(capacities.size, dtype=np.float64)
        rounds = self._fn(
            flow_class.size, flow_class, class_cap.size,
            class_res.shape[1], class_res, class_cap,
            capacities.size, capacities, float(fairness_slack),
            rate, cap_used)
        if rounds < 0:
            raise SimulationError(
                f"compiled maxmin kernel ({self.backend}) ran out of "
                f"memory for {flow_class.size} flows")
        return rate, cap_used


# Probe memo: (kernel-or-None, error-message-or-None); probing compiles,
# so it must run at most once per process.
_PROBE: Optional[Tuple[Optional[MaxminKernel], Optional[str]]] = None


def _probe() -> Tuple[Optional[MaxminKernel], Optional[str]]:
    global _PROBE
    if _PROBE is not None:
        return _PROBE
    errors = []
    kernel = None
    try:
        kernel = MaxminKernel("c", _load_c_solver())
    except Exception as exc:  # compiler missing, cc error, bad cache dir
        errors.append(f"C backend: {exc}")
        try:
            kernel = MaxminKernel("numba", _load_numba_solver())
        except Exception as exc2:
            errors.append(f"numba backend: {exc2}")
    _PROBE = (kernel, None if kernel else "; ".join(errors))
    return _PROBE


def compiled_kernel() -> MaxminKernel:
    """The compiled backend, building it on first call; raises
    :class:`~repro.errors.SimulationError` when none can be loaded."""
    kernel, error = _probe()
    if kernel is None:
        raise SimulationError(
            f"REPRO_KERNEL=compiled requested but no compiled backend "
            f"is available ({error}); set REPRO_KERNEL=python or "
            f"install a C compiler / pip install repro[compiled]")
    return kernel


def kernel_status() -> str:
    """``c``/``numba`` when a compiled backend loads, else ``unavailable``
    (for diagnostics; never raises, but does build on first call)."""
    kernel, _error = _probe()
    return kernel.backend if kernel is not None else "unavailable"
