"""Named deterministic random streams.

Every stochastic model in the package (OS noise, service-time variability,
cross-application interference) draws from a stream obtained by name from a
single :class:`RandomStreams` object. Two runs with the same root seed see
identical randomness regardless of the order in which streams are first
requested, because each stream is derived by hashing its name against the
root seed (``numpy.random.SeedSequence`` spawn-key semantics).
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of independent, name-keyed ``numpy.random.Generator`` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically."""
        gen = self._streams.get(name)
        if gen is None:
            # Derive a child seed from the stream name so creation order
            # does not matter.
            child = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.root_seed,
                                         spawn_key=(child,))
            gen = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RandomStreams":
        """A new independent family of streams (e.g. per experiment repeat)."""
        return RandomStreams(root_seed=self.root_seed * 1_000_003 + salt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RandomStreams(root_seed={self.root_seed}, "
                f"streams={sorted(self._streams)})")
