"""Generator-coroutine processes and composite wait conditions.

A :class:`Process` wraps a generator. Each ``yield`` must produce an
:class:`~repro.des.core.Event`; the process suspends until the event is
processed, then resumes with the event's value (or the event's exception is
thrown into the generator). The process itself is an event that succeeds
with the generator's return value, so processes can wait on each other.
"""

from __future__ import annotations

from typing import Any, Iterable, List

from repro.des.core import Event, Simulator
from repro.errors import ProcessKilled, SimulationError

__all__ = ["Process", "Interrupt", "AnyOf", "AllOf"]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running simulation process built from a generator.

    >>> sim = Simulator()
    >>> def child(sim):
    ...     yield sim.timeout(1.0)
    ...     return "done"
    >>> def parent(sim):
    ...     value = yield sim.process(child(sim))
    ...     assert value == "done"
    >>> _ = sim.process(parent(sim))
    >>> sim.run()
    """

    __slots__ = ("_generator", "_waiting_on", "_alive")

    def __init__(self, sim: Simulator, generator) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process() requires a generator, got {type(generator).__name__}"
            )
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Event | None = None
        self._alive = True
        # Bootstrap: resume the generator at the next simulator step.
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if not self._alive:
            raise SimulationError("cannot interrupt a terminated process")
        if self._waiting_on is None:
            raise SimulationError("cannot interrupt a process that is running")
        target, self._waiting_on = self._waiting_on, None
        # Stop listening to the event we were waiting on; resume immediately
        # with the interrupt.
        try:
            target.callbacks.remove(self._resume)
        except ValueError:
            pass
        wakeup = Event(self.sim)
        wakeup.callbacks.append(
            lambda _evt: self._resume_with_exception(Interrupt(cause)))
        wakeup.succeed()

    def kill(self) -> None:
        """Terminate the process without running any more of its code."""
        if not self._alive:
            return
        if self._waiting_on is not None:
            try:
                self._waiting_on.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._waiting_on = None
        self._generator.close()
        self._alive = False
        if not self.triggered:
            self.fail(ProcessKilled("process killed"))
            self.defuse()

    # -- internal ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event.exception is not None:
            event.defuse()
            self._resume_with_exception(event.exception)
        else:
            self._step(lambda: self._generator.send(event._value))

    def _resume_with_exception(self, exc: BaseException) -> None:
        if not self._alive:
            return
        self._step(lambda: self._generator.throw(exc))

    def _step(self, advance) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            self._alive = False
            self.succeed(stop.value)
            return
        except ProcessKilled as exc:
            self._alive = False
            self.fail(exc)
            self.defuse()
            return
        except BaseException as exc:
            self._alive = False
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self._alive = False
            self.fail(SimulationError(
                f"process yielded {target!r}, expected an Event"))
            return
        if target.processed:
            # Already done: resume on the next step to preserve FIFO order.
            wakeup = Event(self.sim)
            self._waiting_on = wakeup
            wakeup.callbacks.append(self._resume)
            if target._exception is not None:
                wakeup.fail(target._exception)
            else:
                wakeup.succeed(target._value)
            return
        self._waiting_on = target
        target.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("_events", "_done")

    def __init__(self, sim: Simulator, events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._events: List[Event] = list(events)
        self._done = 0
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.processed:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if event.exception is not None:
                event.defuse()
            return
        if event.exception is not None:
            event.defuse()
            self.fail(event.exception)
            return
        self._done += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> dict:
        return {
            event: event._value for event in self._events if event.processed
        }


class AnyOf(_Condition):
    """Succeeds when any child event has succeeded."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._done >= 1


class AllOf(_Condition):
    """Succeeds when all child events have succeeded."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._done >= len(self._events)
