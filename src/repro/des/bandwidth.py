"""Flow-level bandwidth sharing with max-min fairness.

Every contended byte-moving component in the cluster models — a node's NIC,
a network bisection, a storage target, a node's memory bus — is a
:class:`LinkCapacity`. A data movement is a :class:`Flow` spanning one or
more capacities (e.g. source NIC → interconnect → storage target). Active
flows share each capacity max-min fairly; per-flow rate caps (used to model
per-stream efficiency limits and injected interference) participate in the
water-filling.

The implementation is a structure-of-arrays over numpy so that a
barrier-synchronised I/O storm of ~10⁴ flows costs a handful of O(F)
vectorised solves rather than O(F²) Python loops: shares are recomputed
only when the set of active flows changes (arrivals are batched per
timestamp; completions are discovered by a single "next completion" event).

Four further optimisations keep the hot loop O(changed) rather than
O(everything):

- **component-partitioned incremental solves** — the simulated topologies
  (node-local shmem/NIC links, per-OST stripes, file-per-process targets)
  split the active flow set into many resource-disjoint *connected
  components* of the contention graph that cannot affect each other's
  max-min rates. A union-find over capacity indices tracks the partition
  (resources merge when a flow spans them; a lazy rebuild splits stale
  unions once enough multi-resource flows have departed), and
  :meth:`FlowNetwork._recompute` re-runs the water-filling only over the
  *dirty* components — the ones an arrival, departure or capacity change
  actually touched — while every clean component keeps its rates. Exact
  max-min decomposes over resource-disjoint components, so at
  ``fairness_slack=0`` the result is bit-identical to solving the whole
  network (``REPRO_SOLVER=global`` forces that path for debugging). The
  cheap O(active) vectorised bookkeeping — advancing progress, detecting
  completions, arming the next-completion tick — deliberately stays
  global: per-component next-completion targets are merged with a single
  vectorised min (the min of per-component minima *is* the global
  minimum, bit-for-bit), because caching a clean component's absolute
  target across recomputes would drift by float ulps from what the
  forced-global solve computes and silently break bit-identity.
- **flow-class water-filling** — flows with an identical (resource
  signature, rate cap) pair are provably allocated identical rates by
  max-min fairness, so the freeze rounds of :meth:`FlowNetwork._maxmin_rates`
  run over *equivalence classes* instead of flows. A barrier-synchronised
  storm of thousands of identical writers collapses to a handful of
  classes; the per-round cost drops from O(F·K) to O(C·K). Rates are
  bit-identical to the per-flow solve at ``fairness_slack=0``.
- **packed active indices** — :meth:`_advance` and
  :meth:`_complete_finished` touch only the packed array of active slots,
  not the whole (grown) slot arrays; the packed ascending array is
  maintained incrementally under insert/release (batched
  ``searchsorted`` merges) instead of being re-sorted from scratch.
- **incremental arrivals + a reschedulable completion tick** — an arrival
  batch whose flows are all rate-cap-limited and fit into the slack of
  every capacity they touch cannot change existing allocations (each new
  flow is cap-limited, every touched capacity stays unsaturated, so the
  Bertsekas–Gallager bottleneck conditions still hold for every flow);
  such batches are granted their caps without a solve, per component.
  The "next completion" timer is a single re-armable tick backed by a
  small heap of outstanding fire times instead of one version-stale
  callback per recomputation piling up in the event heap.
"""

from __future__ import annotations

import hashlib
import heapq
import math
import os
import weakref
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.des.core import Event, Simulator, PRIORITY_LATE
from repro.des.kernels import (KERNEL_COMPILED, KERNEL_PYTHON,
                               compiled_kernel, maxmin_class_solve_np,
                               resolve_kernel)
from repro.des.partition import partition_graph
from repro.des.shards import (ShardProblem, ShardWorkerPool,
                              resolve_shard_workers, resolve_shards,
                              solve_problem)
from repro.errors import SimulationError

__all__ = ["LinkCapacity", "Flow", "FlowNetwork",
           "SOLVER_COMPONENT", "SOLVER_GLOBAL", "SOLVER_SHARDED",
           "KERNEL_COMPILED", "KERNEL_PYTHON"]

#: Maximum number of capacities a single flow may traverse.
MAX_RES_PER_FLOW = 4

_REL_EPS = 1e-9

#: Relative slack a capacity must keep for the incremental arrival path:
#: a touched capacity must stay below this fraction of its size after the
#: batch is granted, otherwise a full water-filling solve runs.
_FAST_PATH_HEADROOM = 1.0 - 1e-9

#: Solve only the dirty connected components of the contention graph.
SOLVER_COMPONENT = "component"
#: Re-solve the whole network on every structural change (debug escape
#: hatch; bit-identical to the component solver at ``fairness_slack=0``).
SOLVER_GLOBAL = "global"
#: Like ``component``, but additionally min-cut-partition oversized
#: weakly coupled components into ``shards`` sub-networks solved
#: independently (see :mod:`repro.des.partition` /
#: :mod:`repro.des.shards`), with cut flows reconciled by a bounded
#: fixed-point loop. Engages only at ``fairness_slack > 0``; at slack 0
#: (or ``shards=1``) it is bit-identical to ``component``.
SOLVER_SHARDED = "sharded"

#: Component id of flows that touch no capacity (bounded by their rate
#: cap only); they never contend with anything and are never re-solved.
_CAPLESS_ROOT = -1

#: Sharding pays a partitioning + reconciliation tax; solves with fewer
#: flow classes than this are always cheaper unsharded. Module-level so
#: tests can lower it to exercise sharding on small networks.
_SHARD_MIN_CLASSES = 24
#: Iteration cap of the cut-flow reconciliation fixed point. Pins only
#: decrease, so the loop converges; the cap bounds the worst case, and
#: exceeding it with a residual above the slack falls back to the exact
#: component solve for that tick.
_SHARD_MAX_RECONCILE = 8
#: Relative pin movement below which the reconciliation has converged.
_SHARD_CONVERGED = 1e-9
#: Bounds for the memo tables (partition labels / per-shard solve
#: results); both are cleared wholesale on overflow.
_PART_CACHE_MAX = 16
_SHARD_CACHE_MAX = 256


def _resolve_solver(solver: Optional[str]) -> str:
    """Explicit argument beats ``REPRO_SOLVER`` beats the default."""
    if solver is None:
        solver = os.environ.get("REPRO_SOLVER", "").strip() or SOLVER_COMPONENT
    solver = solver.strip().lower()
    if solver not in (SOLVER_COMPONENT, SOLVER_GLOBAL, SOLVER_SHARDED):
        raise SimulationError(
            f"unknown solver {solver!r} (REPRO_SOLVER); expected "
            f"{SOLVER_COMPONENT!r}, {SOLVER_GLOBAL!r} or "
            f"{SOLVER_SHARDED!r}")
    return solver


class LinkCapacity:
    """A named, shared capacity (bytes/s) inside a :class:`FlowNetwork`."""

    __slots__ = ("network", "index", "name")

    def __init__(self, network: "FlowNetwork", index: int, name: str) -> None:
        self.network = network
        self.index = index
        self.name = name

    @property
    def capacity(self) -> float:
        return float(self.network._capacities[self.index])

    def set_capacity(self, capacity: float) -> None:
        """Change the capacity (e.g. background interference); reshapes flows."""
        if capacity <= 0:
            raise SimulationError(f"capacity must be > 0, got {capacity}")
        self.network._capacities[self.index] = capacity
        self.network._mark_capacity_changed(self.index)
        self.network._request_recompute()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LinkCapacity {self.name!r} {self.capacity:.3g} B/s>"


class Flow:
    """Handle on an in-flight transfer. ``flow.event`` fires on completion."""

    __slots__ = ("network", "index", "event", "nbytes", "start_time",
                 "end_time", "label")

    def __init__(self, network: "FlowNetwork", index: int, event: Event,
                 nbytes: float, start_time: float, label: str) -> None:
        self.network = network
        self.index = index
        self.event = event
        self.nbytes = nbytes
        self.start_time = start_time
        self.end_time: Optional[float] = None
        self.label = label

    @property
    def duration(self) -> float:
        """Completion time minus start time (only valid once completed)."""
        if self.end_time is None:
            raise SimulationError(f"flow {self.label!r} has not completed")
        return self.end_time - self.start_time

    @property
    def remaining(self) -> float:
        """Bytes still to transfer, as of the last share recomputation."""
        return float(self.network._remaining[self.index])

    def cancel(self) -> None:
        """Abort the transfer; the completion event never fires."""
        self.network._cancel(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Flow {self.label!r} {self.nbytes:.3g} B>"


class FlowNetwork:
    """All capacities and flows of one simulated machine.

    ``completion_slack`` bounds a deliberate approximation: when the
    earliest flow completes, every flow within ``completion_slack ×
    elapsed`` of its own finish completes in the same batch (i.e. each
    flow's duration may be shortened by at most that relative fraction).
    This turns an N-flow I/O storm with near-identical finish times from N
    share recomputations into a handful, at a bounded per-flow timing
    error. The default is exact (0.0); cluster-scale models opt in.

    ``solver`` picks the share-recomputation strategy: ``"component"``
    (default, or via ``REPRO_SOLVER``) re-solves only the connected
    components of the resource-contention graph touched since the last
    solve; ``"global"`` re-solves the whole network every time. At
    ``fairness_slack=0`` the two are bit-identical; with a positive
    fairness slack the component solver batches freeze rounds per
    component instead of across the whole network, a slightly different
    (but equally bounded) approximation.
    """

    def __init__(self, sim: Simulator, completion_slack: float = 0.0,
                 fairness_slack: float = 0.0,
                 solver: Optional[str] = None,
                 kernel: Optional[str] = None,
                 shards: Optional[int] = None,
                 shard_workers: Optional[int] = None) -> None:
        if completion_slack < 0:
            raise SimulationError(
                f"completion_slack must be >= 0, got {completion_slack}")
        if fairness_slack < 0:
            raise SimulationError(
                f"fairness_slack must be >= 0, got {fairness_slack}")
        self.sim = sim
        self.completion_slack = float(completion_slack)
        #: Rate levels within this relative tolerance of the bottleneck
        #: freeze together in one water-filling round — an approximation
        #: that turns hundreds of near-equal bottleneck levels (distinct
        #: per-target loads) into a handful of vectorised rounds.
        self.fairness_slack = float(fairness_slack)
        self.solver = _resolve_solver(solver)
        #: Water-filling implementation: ``python`` (numpy, always
        #: available) or ``compiled`` (see :mod:`repro.des.kernels`);
        #: bit-identical at any slack, so this is pure speed.
        self.kernel = resolve_kernel(kernel)
        self._kernel_impl = (compiled_kernel()
                             if self.kernel == KERNEL_COMPILED else None)
        #: Target shard count for ``solver="sharded"`` (algorithmic knob,
        #: folded into cache keys) and the worker processes solving them
        #: (throughput knob, capped by ``os.cpu_count()``). Both resolve
        #: and validate at construction regardless of the active solver,
        #: so a typo in ``REPRO_SHARDS`` fails here, not mid-run.
        self.shards = resolve_shards(shards)
        self.shard_workers = resolve_shard_workers(shard_workers,
                                                   self.shards)
        self._shard_pool: Optional[ShardWorkerPool] = None
        self._pool_finalizer = None
        #: Partition-label memo keyed by the touched-resource set; a
        #: stale layout is still a *valid* layout (the cut gate re-runs
        #: every solve), so keys ignore the class mix.
        self._part_cache: Dict[bytes, np.ndarray] = {}
        #: Per-shard solve results keyed by an input digest: a tick that
        #: only disturbs one shard re-solves one shard.
        self._shard_cache: Dict[bytes, Tuple[np.ndarray, float]] = {}
        self._capacities = np.zeros(0, dtype=float)
        self._cap_names: List[str] = []
        self._links: Dict[str, LinkCapacity] = {}

        size = 64
        self._remaining = np.zeros(size, dtype=float)
        self._rate = np.zeros(size, dtype=float)
        self._flow_cap = np.full(size, np.inf, dtype=float)
        self._active = np.zeros(size, dtype=bool)
        self._start = np.zeros(size, dtype=float)
        self._res = np.full((size, MAX_RES_PER_FLOW), -1, dtype=np.int64)
        self._flows: List[Optional[Flow]] = [None] * size
        self._free: List[int] = list(range(size - 1, -1, -1))

        # Flow-class registry: flows with an identical (resource
        # signature, rate cap) share a class id; the water-filling rounds
        # run over classes. Maintained incrementally — a dict lookup per
        # arrival, a refcount decrement per departure — so a solve never
        # has to factor the flow set from scratch.
        self._slot_class = np.zeros(size, dtype=np.int64)
        self._class_ids: Dict[tuple, int] = {}
        self._class_keys: List[Optional[tuple]] = []
        self._class_refs: List[int] = []
        self._class_free: List[int] = []
        self._class_res = np.full((64, MAX_RES_PER_FLOW), -1, dtype=np.int64)
        self._class_cap = np.zeros(64, dtype=float)
        #: Number of classes with at least one live flow. When this equals
        #: the active flow count every class is a singleton and the solver
        #: takes the plain per-flow path (no indirection to pay for).
        self._live_classes = 0

        # Packed active-slot bookkeeping: the set mutates in O(1) per
        # arrival/departure; the packed ascending index array absorbs the
        # pending inserts/removals in one batched searchsorted merge on
        # next access, so the vectorised paths touch O(active) slots and
        # maintenance costs O(active + changed·log changed) per batch —
        # never a from-scratch sort of the whole set.
        self._active_set: Set[int] = set()
        self._active_idx = np.zeros(0, dtype=np.int64)
        self._idx_add: Set[int] = set()
        self._idx_del: Set[int] = set()

        # Contention-component registry: a union-find over capacity
        # indices tracks the connected components of the resource graph.
        # Flows merge their resources' components on arrival; departures
        # can only *split* components, which the union-find cannot
        # express, so a counter of departed multi-resource flows triggers
        # a lazy rebuild of the partition from the live flow set.
        self._res_parent: List[int] = []
        self._comp_slots: Dict[int, Set[int]] = {}
        self._comp_dirty: Set[int] = set()
        self._slot_root = np.full(size, _CAPLESS_ROOT, dtype=np.int64)
        #: Active flows per capacity; reaching zero resets the consumed
        #: bandwidth entry so the fast path never sees a stale value.
        self._res_nflows = np.zeros(0, dtype=np.int64)
        self._departed_since_rebuild = 0

        # Incremental-arrival fast path state.
        self._pending_new: List[int] = []
        self._pending_structural = False
        #: Per-capacity bandwidth consumed by the current allocation
        #: (valid between recomputations; refreshed by every solve that
        #: touches the capacity's component).
        self._cap_used = np.zeros(0, dtype=float)

        # Reschedulable "next completion" tick: `_tick_target` is the
        # absolute time of the next predicted completion; `_tick_heap`
        # holds the (few) outstanding heap-entry fire times.
        self._tick_target = math.inf
        self._tick_heap: List[float] = []

        self._last_update = 0.0
        self._recompute_scheduled = False
        self.total_bytes_moved = 0.0
        self.completed_flows = 0

        # Solver counters (cheap ints; snapshot via `solver_stats`).
        self._stat_full_solves = 0
        self._stat_component_solves = 0
        self._stat_fast_grants = 0
        self._stat_flows_solved = 0
        self._stat_recomputes = 0
        self._stat_rebuilds = 0
        self._stat_dirty_solved = 0
        self._stat_kernel_solves = 0
        self._stat_batched_solves = 0
        # Sharded-solver counters (see `solver_stats`).
        self._stat_sharded_ticks = 0
        self._stat_shard_solves = 0
        self._stat_shard_cache_hits = 0
        self._stat_shard_rejects = 0
        self._stat_shard_fallbacks = 0
        self._stat_shard_reconcile_iters = 0
        self._stat_shard_cut_bytes = 0.0
        self._stat_shard_max_imbalance = 0.0
        self._stat_shard_count_last = 0

    # ------------------------------------------------------------------ #
    # capacities
    # ------------------------------------------------------------------ #
    def add_capacity(self, name: str, capacity: float) -> LinkCapacity:
        """Register a new shared capacity (bytes/s)."""
        if name in self._links:
            raise SimulationError(f"duplicate capacity name {name!r}")
        if capacity <= 0:
            raise SimulationError(f"capacity must be > 0, got {capacity}")
        index = len(self._cap_names)
        self._cap_names.append(name)
        self._capacities = np.append(self._capacities, float(capacity))
        self._cap_used = np.append(self._cap_used, 0.0)
        self._res_parent.append(index)
        self._res_nflows = np.append(self._res_nflows, 0)
        link = LinkCapacity(self, index, name)
        self._links[name] = link
        return link

    def link(self, name: str) -> LinkCapacity:
        return self._links[name]

    @property
    def active_flow_count(self) -> int:
        return len(self._active_set)

    def _activate_slot(self, index: int) -> None:
        self._active_set.add(index)
        if index in self._idx_del:
            self._idx_del.discard(index)
        else:
            self._idx_add.add(index)

    def _deactivate_slot(self, index: int) -> None:
        self._active_set.discard(index)
        if index in self._idx_add:
            self._idx_add.discard(index)
        else:
            self._idx_del.add(index)

    def _active_indices(self) -> np.ndarray:
        """The packed, ascending array of active slot indices."""
        if self._idx_del:
            base = self._active_idx
            dels = np.fromiter(sorted(self._idx_del), dtype=np.int64,
                               count=len(self._idx_del))
            self._active_idx = np.delete(base, np.searchsorted(base, dels))
            self._idx_del.clear()
        if self._idx_add:
            base = self._active_idx
            adds = np.fromiter(sorted(self._idx_add), dtype=np.int64,
                               count=len(self._idx_add))
            self._active_idx = np.insert(
                base, np.searchsorted(base, adds), adds)
            self._idx_add.clear()
        return self._active_idx

    # ------------------------------------------------------------------ #
    # contention components
    # ------------------------------------------------------------------ #
    def _find(self, res: int) -> int:
        """Union-find root of a capacity index (with path halving)."""
        parent = self._res_parent
        while parent[res] != res:
            parent[res] = parent[parent[res]]
            res = parent[res]
        return res

    def _union(self, a: int, b: int) -> int:
        """Merge the components of two capacities; returns the new root."""
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return ra
        slots = self._comp_slots
        # Union by component population: the smaller flow set moves.
        if len(slots.get(ra, ())) > len(slots.get(rb, ())):
            ra, rb = rb, ra
        self._res_parent[ra] = rb
        moved = slots.pop(ra, None)
        if moved:
            slots.setdefault(rb, set()).update(moved)
        if ra in self._comp_dirty:
            self._comp_dirty.discard(ra)
            self._comp_dirty.add(rb)
        return rb

    def _attach_component(self, index: int,
                          res_indices: Tuple[int, ...]) -> None:
        """Place a newly arrived flow slot into its component."""
        if not res_indices:
            root = _CAPLESS_ROOT
        else:
            root = self._find(res_indices[0])
            for res in res_indices[1:]:
                root = self._union(root, res)
            self._res_nflows[list(res_indices)] += 1
        self._comp_slots.setdefault(root, set()).add(index)
        self._slot_root[index] = root

    def _slot_component(self, index: int) -> int:
        """Current component root of an active slot."""
        stored = int(self._slot_root[index])
        return stored if stored < 0 else self._find(stored)

    def _mark_capacity_changed(self, index: int) -> None:
        self._pending_structural = True
        root = self._find(index)
        if root in self._comp_slots:
            self._comp_dirty.add(root)

    def _rebuild_components(self) -> None:
        """Lazy split: refactor the partition from the live flows only.

        The union-find can only merge, so departures leave it coarser
        than the true contention graph (a departed flow's bridge keeps
        two now-independent groups fused). A coarser partition is always
        *correct* — solving two independent components together equals
        solving them apart — just slower, so the rebuild runs amortised:
        once per ~max(64, active) departed multi-resource flows.
        """
        self._res_parent = list(range(len(self._res_parent)))
        had_dirty = bool(self._comp_dirty)
        self._comp_slots = {}
        self._comp_dirty = set()
        res_row = self._res
        for index in self._active_indices():
            index = int(index)
            row = res_row[index]
            first = int(row[0])
            if first < 0:
                root = _CAPLESS_ROOT
            else:
                root = self._find(first)
                for k in range(1, MAX_RES_PER_FLOW):
                    res = int(row[k])
                    if res < 0:
                        break
                    root = self._union(root, res)
            self._comp_slots.setdefault(root, set()).add(index)
            self._slot_root[index] = root
        if had_dirty:
            # Pre-rebuild dirt cannot be mapped onto the new roots, so
            # conservatively mark every live component; re-solving a
            # clean component is bit-identical to keeping its rates.
            self._comp_dirty = {root for root in self._comp_slots
                                if root >= 0}
        self._departed_since_rebuild = 0
        self._stat_rebuilds += 1

    @property
    def components_live(self) -> int:
        """Number of components with at least one active flow."""
        return len(self._comp_slots)

    def component_of(self, link: LinkCapacity) -> int:
        """Current component root of a capacity (for tests/debugging)."""
        return self._find(link.index)

    def component_targets(self) -> Dict[int, float]:
        """Absolute next-completion time per live component.

        Merging these (one vectorised min) yields exactly the global
        completion-tick target; exposed for the solver statistics and
        the equivalence tests.
        """
        out: Dict[int, float] = {}
        now = self.sim.now
        for root, slots in self._comp_slots.items():
            idx = np.fromiter(sorted(slots), dtype=np.int64,
                              count=len(slots))
            with np.errstate(divide="ignore"):
                finish = self._remaining[idx] / self._rate[idx]
            out[root] = now + max(float(finish.min()), 0.0)
        return out

    @property
    def solver_stats(self) -> Dict[str, int]:
        """Cumulative solver counters (full vs component vs fast path)."""
        stats = {
            "solver": self.solver,
            "kernel": self.kernel,
            "recomputes": self._stat_recomputes,
            "full_solves": self._stat_full_solves,
            "component_solves": self._stat_component_solves,
            "fast_grants": self._stat_fast_grants,
            "flows_solved": self._stat_flows_solved,
            "kernel_solves": self._stat_kernel_solves,
            "batched_solves": self._stat_batched_solves,
            "components_live": len(self._comp_slots),
            "components_solved": self._stat_dirty_solved,
            "rebuilds": self._stat_rebuilds,
        }
        if self.solver == SOLVER_SHARDED:
            stats.update({
                "shards": self.shards,
                "shard_workers": self.shard_workers,
                "sharded_ticks": self._stat_sharded_ticks,
                "shard_solves": self._stat_shard_solves,
                "shard_cache_hits": self._stat_shard_cache_hits,
                "shard_rejects": self._stat_shard_rejects,
                "shard_fallbacks": self._stat_shard_fallbacks,
                "shard_reconcile_iters": self._stat_shard_reconcile_iters,
                "shard_cut_bytes": self._stat_shard_cut_bytes,
                "shard_max_imbalance": self._stat_shard_max_imbalance,
            })
        return stats

    # ------------------------------------------------------------------ #
    # flows
    # ------------------------------------------------------------------ #
    def transfer(self, resources: Sequence[LinkCapacity], nbytes: float,
                 rate_cap: float = math.inf, label: str = "") -> Flow:
        """Start a transfer of ``nbytes`` across ``resources``.

        Returns a :class:`Flow` whose ``event`` succeeds (with the flow as
        value) once the last byte has moved. ``rate_cap`` bounds the flow's
        own rate (per-stream efficiency, interference injection).
        """
        if nbytes < 0:
            raise SimulationError(f"cannot transfer negative bytes: {nbytes}")
        if len(resources) > MAX_RES_PER_FLOW:
            raise SimulationError(
                f"flow spans {len(resources)} capacities, max is "
                f"{MAX_RES_PER_FLOW}")
        if not resources and not math.isfinite(rate_cap):
            raise SimulationError(
                "a flow needs at least one capacity or a finite rate cap")
        for res in resources:
            if res.network is not self:
                raise SimulationError(
                    f"capacity {res.name!r} belongs to another network")
        if rate_cap <= 0:
            raise SimulationError(f"rate_cap must be > 0, got {rate_cap}")

        event = Event(self.sim)
        if nbytes == 0:
            flow = Flow(self, -1, event, 0.0, self.sim.now, label)
            flow.end_time = self.sim.now
            event.succeed(flow)
            return flow

        index = self._alloc_slot()
        flow = Flow(self, index, event, float(nbytes), self.sim.now, label)
        self._remaining[index] = float(nbytes)
        self._rate[index] = 0.0
        self._start[index] = self.sim.now
        self._flow_cap[index] = rate_cap
        self._res[index, :] = -1
        for k, res in enumerate(resources):
            self._res[index, k] = res.index
        self._active[index] = True
        self._flows[index] = flow
        res_indices = tuple(int(res.index) for res in resources)
        self._slot_class[index] = self._class_of(res_indices, float(rate_cap))
        self._attach_component(index, res_indices)
        self._activate_slot(index)
        self._pending_new.append(index)
        self._request_recompute()
        return flow

    def _class_of(self, res_indices: tuple, rate_cap: float) -> int:
        """Intern the (resource signature, rate cap) pair as a class id."""
        key = (res_indices, rate_cap)
        cid = self._class_ids.get(key)
        if cid is None:
            if self._class_free:
                cid = self._class_free.pop()
            else:
                cid = len(self._class_keys)
                self._class_keys.append(None)
                self._class_refs.append(0)
                if cid >= self._class_cap.size:
                    grown = self._class_cap.size * 2
                    grown_res = np.full((grown, MAX_RES_PER_FLOW), -1,
                                        dtype=np.int64)
                    grown_res[:cid] = self._class_res
                    self._class_res = grown_res
                    grown_cap = np.zeros(grown, dtype=float)
                    grown_cap[:cid] = self._class_cap
                    self._class_cap = grown_cap
            self._class_ids[key] = cid
            self._class_keys[cid] = key
            self._class_refs[cid] = 0
            self._class_res[cid, :] = -1
            self._class_res[cid, :len(res_indices)] = res_indices
            self._class_cap[cid] = rate_cap
        self._class_refs[cid] += 1
        if self._class_refs[cid] == 1:
            self._live_classes += 1
        return cid

    def _alloc_slot(self) -> int:
        if not self._free:
            old = len(self._flows)
            new = old * 2
            # Grow with explicitly padded arrays: np.resize would tile the
            # old contents into the new slots, leaving freshly grown slots
            # with stale caps/volumes until their first use.
            grown_remaining = np.zeros(new, dtype=float)
            grown_remaining[:old] = self._remaining
            self._remaining = grown_remaining
            grown_rate = np.zeros(new, dtype=float)
            grown_rate[:old] = self._rate
            self._rate = grown_rate
            grown_cap = np.full(new, np.inf, dtype=float)
            grown_cap[:old] = self._flow_cap
            self._flow_cap = grown_cap
            grown_start = np.zeros(new, dtype=float)
            grown_start[:old] = self._start
            self._start = grown_start
            grown_active = np.zeros(new, dtype=bool)
            grown_active[:old] = self._active
            self._active = grown_active
            grown_res = np.full((new, MAX_RES_PER_FLOW), -1, dtype=np.int64)
            grown_res[:old] = self._res
            self._res = grown_res
            grown_class = np.zeros(new, dtype=np.int64)
            grown_class[:old] = self._slot_class
            self._slot_class = grown_class
            grown_root = np.full(new, _CAPLESS_ROOT, dtype=np.int64)
            grown_root[:old] = self._slot_root
            self._slot_root = grown_root
            self._flows.extend([None] * (new - old))
            self._free.extend(range(new - 1, old - 1, -1))
        return self._free.pop()

    def _cancel(self, flow: Flow) -> None:
        if flow.index < 0 or self._flows[flow.index] is not flow:
            return
        self._release_slot(flow.index)
        self._pending_structural = True
        self._request_recompute()

    def _release_slot(self, index: int) -> None:
        row = self._res[index]
        for k in range(MAX_RES_PER_FLOW):
            res = int(row[k])
            if res < 0:
                break
            self._res_nflows[res] -= 1
            if self._res_nflows[res] == 0:
                # No flows left on this capacity: its consumed-bandwidth
                # entry must read exactly 0.0, as a full solve would
                # compute, so the fast path never sees a stale positive.
                self._cap_used[res] = 0.0
        root = self._slot_component(index)
        slots = self._comp_slots.get(root)
        if slots is not None:
            slots.discard(index)
            if not slots:
                del self._comp_slots[root]
                self._comp_dirty.discard(root)
            elif root >= 0:
                self._comp_dirty.add(root)
        if int(row[1]) >= 0:
            # Only a multi-resource flow can leave a stale union behind.
            self._departed_since_rebuild += 1
        self._active[index] = False
        self._flows[index] = None
        self._rate[index] = 0.0
        self._remaining[index] = 0.0
        self._deactivate_slot(index)
        self._free.append(index)
        cid = int(self._slot_class[index])
        self._class_refs[cid] -= 1
        if self._class_refs[cid] == 0:
            self._live_classes -= 1
            del self._class_ids[self._class_keys[cid]]
            self._class_keys[cid] = None
            self._class_free.append(cid)

    # ------------------------------------------------------------------ #
    # share recomputation
    # ------------------------------------------------------------------ #
    def _request_recompute(self) -> None:
        if self._recompute_scheduled:
            return
        self._recompute_scheduled = True
        # Late priority: all same-timestamp arrivals/departures batch into
        # one recomputation. Slim entry: nothing awaits the recompute, so
        # skip the Event + wrapper-lambda allocation on this hottest path.
        self.sim.call_later(0.0, self._recompute, priority=PRIORITY_LATE)

    def _advance(self) -> None:
        """Progress all active flows from the last update time to now.

        Deliberately global even under the component solver: advancing a
        clean component lazily (one coarse step at its own next event)
        accumulates different floating-point rounding than the global
        solver's per-event steps, which would break bit-identity between
        ``REPRO_SOLVER=component`` and ``REPRO_SOLVER=global``.
        """
        now = self.sim.now
        dt = now - self._last_update
        if dt > 0 and self._active_set:
            idx = self._active_indices()
            moved = self._rate[idx] * dt
            rem = self._remaining[idx] - moved
            np.clip(rem, 0.0, None, out=rem)
            self._remaining[idx] = rem
            self.total_bytes_moved += float(moved.sum())
        self._last_update = now

    def _recompute(self) -> None:
        self._recompute_scheduled = False
        self._stat_recomputes += 1
        self._advance()
        if self.solver != SOLVER_GLOBAL and self._departed_since_rebuild \
                > max(64, len(self._active_set)):
            self._rebuild_components()
        completed = self._complete_finished()
        arrivals, self._pending_new = self._pending_new, []
        structural = self._pending_structural or completed
        self._pending_structural = False

        if not self._active_set:
            self._tick_target = math.inf
            self._comp_dirty.clear()
            self._trace_solve()
            return

        if self.solver == SOLVER_GLOBAL:
            self._recompute_global(arrivals, structural)
        else:
            self._recompute_components(arrivals)
        self._trace_solve()

    def _recompute_global(self, arrivals: List[int],
                          structural: bool) -> None:
        """The forced-global path: one solve over every active flow."""
        self._comp_dirty.clear()
        if not structural and arrivals and self._fast_grant(arrivals):
            self._stat_fast_grants += 1
            self._arm_from_finish()
            return
        idx = self._active_indices()
        rates, used = self._maxmin_rates(idx)
        self._rate[idx] = rates
        self._cap_used = used
        self._stat_full_solves += 1
        self._stat_flows_solved += idx.size
        self._arm_from_finish()

    def _recompute_components(self, arrivals: List[int]) -> None:
        """Solve only the dirty components; fast-grant clean arrivals."""
        dirty = self._comp_dirty
        if arrivals:
            groups: Dict[int, List[int]] = {}
            for index in arrivals:
                if not self._active[index]:
                    continue  # completed within this very batch
                groups.setdefault(self._slot_component(index), []).append(
                    index)
            for root in sorted(groups):
                if root in dirty:
                    continue  # the component solve below covers them
                if self._fast_grant(groups[root]):
                    self._stat_fast_grants += 1
                elif root >= 0:
                    dirty.add(root)
        self._stat_dirty_solved += len(dirty)
        covered = sum(len(self._comp_slots.get(root, ()))
                      for root in dirty)
        if covered == len(self._active_set):
            # The dirty set spans every active flow (a single fused
            # component, or a barrier batch touching all of them): one
            # whole-network solve over the cached packed index array is
            # bit-identical to solving the components one by one at
            # slack 0 and skips the per-component index/mask assembly.
            idx = self._active_indices()
            rates, used = self._solve_idx(idx)
            self._rate[idx] = rates
            self._cap_used = used
            self._stat_full_solves += 1
            self._stat_flows_solved += idx.size
        else:
            # Batch every dirty component into ONE kernel invocation
            # over the concatenated packed arrays: the per-resource
            # accumulations of resource-disjoint components cannot
            # interact (each capacity only ever receives its own
            # component's flows, in the same ascending slot order), so
            # at slack 0 the result is bit-identical to solving the
            # components one by one — for the Python-level price of a
            # single call instead of one per component.
            solve_roots = [root for root in sorted(dirty)
                           if self._comp_slots.get(root)]
            if len(solve_roots) == 1:
                slots = self._comp_slots[solve_roots[0]]
                idx = np.fromiter(sorted(slots), dtype=np.int64,
                                  count=len(slots))
            elif solve_roots:
                idx = np.concatenate([
                    np.fromiter(sorted(self._comp_slots[root]),
                                dtype=np.int64,
                                count=len(self._comp_slots[root]))
                    for root in solve_roots])
                self._stat_batched_solves += 1
            if solve_roots:
                rates, used = self._solve_idx(idx)
                self._rate[idx] = rates
                touched = self._res[idx]
                touched = np.unique(touched[touched >= 0])
                self._cap_used[touched] = used[touched]
                self._stat_component_solves += len(solve_roots)
                self._stat_flows_solved += idx.size
        dirty.clear()
        self._arm_from_finish()

    def _trace_solve(self) -> None:
        tracer = self.sim.tracer
        if tracer.enabled:
            extra: Dict[str, object] = {}
            if self.solver == SOLVER_SHARDED:
                # Shard counters ride along only for the sharded solver,
                # keeping component/global traces byte-identical to
                # previous releases.
                extra = dict(
                    shards=self._stat_shard_count_last,
                    shard_solves=self._stat_shard_solves,
                    shard_cut_bytes=self._stat_shard_cut_bytes,
                    shard_imbalance=self._stat_shard_max_imbalance,
                    shard_reconcile_iters=self._stat_shard_reconcile_iters)
            tracer.record_event(
                "solver", "recompute", "flownet", time=self.sim.now,
                solver=self.solver,
                kernel=self.kernel,
                recomputes=self._stat_recomputes,
                full_solves=self._stat_full_solves,
                component_solves=self._stat_component_solves,
                fast_grants=self._stat_fast_grants,
                flows_solved=self._stat_flows_solved,
                kernel_solves=self._stat_kernel_solves,
                live=len(self._comp_slots),
                active=len(self._active_set),
                **extra)

    # -- incremental arrivals ------------------------------------------- #
    def _fast_grant(self, arrivals: List[int]) -> bool:
        """Grant an arrival batch without a solve, when provably safe.

        Sound when every new flow is limited by its own finite rate cap
        and every capacity it touches keeps headroom after the grant: the
        new flows are cap-limited (their bottleneck is themselves) and no
        previously unsaturated capacity saturates, so every existing
        flow's bottleneck structure — hence its max-min rate — is
        unchanged. Otherwise the caller falls back to the water-filling
        solve (of the whole network or of the batch's component,
        depending on the solver). Under the component solver the batch is
        one component's arrivals; resource-disjoint groups check against
        disjoint capacity entries, so per-component grants accumulate the
        same ``_cap_used`` values as one global pass.
        """
        caps = self._flow_cap
        capacities = self._capacities
        trial = None
        for index in arrivals:
            rate = caps[index]
            if not math.isfinite(rate):
                return False
            for k in range(MAX_RES_PER_FLOW):
                res = self._res[index, k]
                if res < 0:
                    break
                if trial is None:
                    trial = self._cap_used.copy()
                if trial[res] + rate > capacities[res] * _FAST_PATH_HEADROOM:
                    return False
            if trial is not None:
                for k in range(MAX_RES_PER_FLOW):
                    res = self._res[index, k]
                    if res < 0:
                        break
                    trial[res] += rate
        for index in arrivals:
            self._rate[index] = caps[index]
        if trial is not None:
            self._cap_used = trial
        return True

    # -- the completion tick -------------------------------------------- #
    def _arm_from_finish(self) -> None:
        """Re-arm the completion tick from the freshly advanced flows.

        The per-component next-completion targets (see
        :meth:`component_targets`) merge through one vectorised min: the
        minimum over per-component minima is the global minimum,
        bit-for-bit, so a single pass over the packed active slots feeds
        the tick for both solvers identically.
        """
        idx = self._active_indices()
        with np.errstate(divide="ignore"):
            finish = self._remaining[idx] / self._rate[idx]
        self._arm_tick(max(float(finish.min()), 0.0))

    def _arm_tick(self, t_next: float) -> None:
        """Point the completion tick at ``now + t_next``.

        Keeps at most a handful of heap entries alive: a new entry is
        pushed only when the target moves *earlier* than every
        outstanding entry; a tick that fires early (because the target
        moved later) re-arms itself instead of recomputing. Outstanding
        fire times live in a min-heap, so arming and the tick itself are
        O(log pending) instead of a linear ``min()`` + ``remove()``.
        """
        # Same float expression as Simulator._schedule uses, so the tick
        # fires at a bit-identical timestamp to a delay-scheduled event.
        t_abs = self.sim.now + t_next
        self._tick_target = t_abs
        heap = self._tick_heap
        if not heap or heap[0] > t_abs:
            heapq.heappush(heap, t_abs)
            self.sim.call_at(t_abs, self._on_completion_tick,
                             priority=PRIORITY_LATE)

    def _on_completion_tick(self) -> None:
        # This tick's own entry is necessarily the heap minimum: every
        # entry pairs with a callback at exactly its time, and earlier
        # callbacks have already popped every earlier entry.
        heapq.heappop(self._tick_heap)
        if not self._active_set or not math.isfinite(self._tick_target):
            return
        if self.sim.now == self._tick_target:
            self._recompute()
        elif not self._tick_heap or self._tick_heap[0] > self._tick_target:
            # Fired early (the predicted completion moved later after an
            # arrival); re-arm at the current target.
            heapq.heappush(self._tick_heap, self._tick_target)
            self.sim.call_at(self._tick_target, self._on_completion_tick,
                             priority=PRIORITY_LATE)

    def _complete_finished(self) -> bool:
        # A flow is done when its remaining volume is within tolerance: an
        # exact epsilon plus the completion-slack fraction of the time it
        # has already been running (bounded relative timing error; batches
        # near-simultaneous completions into one recomputation).
        if not self._active_set:
            return False
        idx = self._active_indices()
        now = self.sim.now
        tol_seconds = self.completion_slack * (now - self._start[idx]) \
            + _REL_EPS
        tol = self._rate[idx] * tol_seconds + 1e-6
        done = self._remaining[idx] <= tol
        if not done.any():
            return False
        done_idx = idx[done]
        # Account the short-cut remainder as moved.
        self.total_bytes_moved += float(self._remaining[done_idx].sum())
        for index in done_idx:
            flow = self._flows[index]
            self._release_slot(int(index))
            if flow is None:
                continue
            flow.end_time = now
            self.completed_flows += 1
            flow.event.succeed(flow)
        return True

    def _maxmin_rates(self, idx: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Max-min fair rates (with per-flow caps) for the given slots.

        Returns ``(rates, cap_used)`` where ``cap_used`` is the
        full-width per-capacity consumption of the solved flows; the
        caller assigns it wholesale (global solve) or masked to the
        component's resources (component solve) — entries of untouched
        capacities read 0.0 either way.

        Each round computes every unfrozen flow's *candidate* rate — the
        minimum of its resources' fair shares and its own cap — and
        freezes all flows whose candidate lies within ``fairness_slack``
        of the round's bottleneck, at their candidate. With slack 0 this
        is exact max-min; with a small slack, near-equal bottleneck
        levels batch into one round (hundreds of rounds → a handful).

        The rounds run over *equivalence classes* of flows with identical
        (resource signature, rate cap): all members of a class see the
        same fair shares and the same cap, so they share one candidate
        and freeze together. Resource occupancy counts weight each class
        by its multiplicity, and the capacity consumed by a freeze is
        scattered per flow in ascending slot order, so the result is
        bit-identical to the per-flow solve at ``fairness_slack=0`` —
        and, because every per-capacity accumulation involves only that
        capacity's own component's flows in the same order, a solve over
        one component is bit-identical to the same flows' rows of a
        solve over the whole network.

        With ``kernel="compiled"`` the whole solve — class uniquing,
        freeze rounds, per-flow scatter — runs in the compiled kernel
        (:mod:`repro.des.kernels`), which replicates this method's
        floating-point operation order exactly and is therefore
        bit-identical at *any* slack, for singleton and collapsed
        classes alike.
        """
        kern = self._kernel_impl
        if kern is not None:
            self._stat_kernel_solves += 1
            return kern.solve(self._slot_class[idx], self._class_res,
                              self._class_cap, self._capacities,
                              self.fairness_slack)
        if self._live_classes == len(self._active_set):
            # Every live class is a singleton (e.g. all caps distinct):
            # the class indirection cannot collapse anything, so run the
            # plain per-flow solve. (The predicate is global, so both
            # solvers dispatch the same way for any subset.)
            return self._maxmin_rates_flows(idx)
        return maxmin_class_solve_np(
            self._slot_class[idx], self._class_res, self._class_cap,
            self._capacities, self.fairness_slack)

    def _maxmin_rates_flows(self, idx: np.ndarray
                            ) -> Tuple[np.ndarray, np.ndarray]:
        """The per-flow water-filling solve (identical rounds, no class
        indirection); used when every class is a singleton."""
        res = self._res[idx]                      # (F, K)
        valid = res >= 0                          # (F, K)
        caps = self._flow_cap[idx]                # (F,)
        nflows = idx.size
        nres = self._capacities.size
        rate = np.zeros(nflows, dtype=float)
        frozen = np.zeros(nflows, dtype=bool)
        cap_rem = self._capacities.astype(float).copy()
        res_clipped = np.where(valid, res, 0)
        batch = 1.0 + self.fairness_slack + 1e-12
        # Round-invariant buffers, hoisted out of the freeze loop.
        counts = np.empty(nres, dtype=float)
        share = np.empty(nres, dtype=float)
        consumed = np.empty(nres, dtype=float)

        for _ in range(nflows + nres + 1):
            unfrozen = ~frozen
            if not unfrozen.any():
                break
            members = res[unfrozen][valid[unfrozen]]
            if members.size == 0:
                # Remaining flows touch no capacity: bounded by caps only.
                rate[unfrozen] = caps[unfrozen]
                break
            counts.fill(0.0)
            np.add.at(counts, members, 1.0)
            used = counts > 0
            share.fill(np.inf)
            share[used] = np.maximum(cap_rem[used], 0.0) / counts[used]
            # Per-flow candidate: min share across its resources, then cap.
            flow_share = np.where(valid, share[res_clipped], np.inf)
            candidate = np.minimum(flow_share.min(axis=1), caps)
            s_star = float(candidate[unfrozen].min())

            freeze = unfrozen & (candidate <= s_star * batch)
            rate[freeze] = candidate[freeze]
            frozen[freeze] = True
            consumed.fill(0.0)
            flat_rate = np.repeat(candidate[freeze], MAX_RES_PER_FLOW)
            flat_res = res_clipped[freeze].ravel()
            flat_valid = valid[freeze].ravel()
            np.add.at(consumed, flat_res[flat_valid], flat_rate[flat_valid])
            cap_rem -= consumed

        # Numerical safety: every active flow must make progress.
        np.maximum(rate, 1e-12, out=rate)
        return rate, self._capacities - cap_rem

    # ------------------------------------------------------------------ #
    # the sharded solver
    # ------------------------------------------------------------------ #
    def _solve_idx(self, idx: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """One packed solve through the active solver.

        ``sharded`` tries the partition-and-reconcile path first and
        falls back to the exact component solve whenever sharding cannot
        help (slack 0, tiny solve, cut too heavy, reconciliation
        over-budget) — so enabling it can degrade a tick to ``component``
        behaviour but never produce an unbounded-error allocation.
        """
        if self.solver == SOLVER_SHARDED:
            out = self._maxmin_rates_sharded(idx)
            if out is not None:
                return out
        return self._maxmin_rates(idx)

    def _ensure_pool(self) -> Optional[ShardWorkerPool]:
        """The lazy persistent worker pool (None = solve in-process)."""
        if self.shard_workers <= 1:
            return None
        if self._shard_pool is None or self._shard_pool.broken:
            try:
                pool = ShardWorkerPool(self.shard_workers, self.kernel)
            except Exception:
                # No fork / spawn failure: permanently fall back.
                self.shard_workers = 1
                self._shard_pool = None
                return None
            self._shard_pool = pool
            self._pool_finalizer = weakref.finalize(
                self, ShardWorkerPool.close, pool)
        return self._shard_pool

    def _solve_shard_problems(self, problems: List[ShardProblem]
                              ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Solve shard subproblems via the pool (or in-process).

        Pool and in-process execution run the identical kernel on the
        identical packed arrays, so this choice never changes results.
        """
        if len(problems) > 1:
            pool = self._ensure_pool()
            if pool is not None:
                try:
                    return pool.solve_batch(problems)
                except SimulationError:
                    # A dead worker degrades to in-process for the rest
                    # of the run; the simulation result is unaffected.
                    self._shard_pool = None
                    self.shard_workers = 1
        return [solve_problem(prob, self._kernel_impl) for prob in problems]

    def _shard_labels(self, res_ids: np.ndarray, ci: np.ndarray,
                      ent_local: np.ndarray, class_w: np.ndarray,
                      caps_t: np.ndarray, k: int) -> np.ndarray:
        """Partition labels for the touched-resource set (memoised).

        Keyed by the resource set only: the label layout survives class
        churn (completion batches change the class mix every tick, the
        resource topology almost never), and a stale layout is still
        *valid* — the cut-weight acceptance gate re-runs on the current
        classes every solve.
        """
        key = (k, res_ids.tobytes())
        labels = self._part_cache.get(key)
        if labels is not None:
            return labels
        # Chain-edges per class: consecutive valid resources of one class
        # couple; crossing any of them cuts the class.
        same = ci[1:] == ci[:-1]
        edge_u = ent_local[:-1][same]
        edge_v = ent_local[1:][same]
        edge_w = class_w[ci[1:][same]]
        labels = partition_graph(caps_t, edge_u, edge_v, edge_w, k).labels
        if len(self._part_cache) >= _PART_CACHE_MAX:
            self._part_cache.clear()
        self._part_cache[key] = labels
        return labels

    def _shard_key(self, flow_local: np.ndarray, class_res_local: np.ndarray,
                   cap_eff: np.ndarray, caps_local: np.ndarray) -> bytes:
        h = hashlib.blake2b(digest_size=16)
        h.update(flow_local.tobytes())
        h.update(class_res_local.tobytes())
        h.update(cap_eff.tobytes())
        h.update(caps_local.tobytes())
        h.update(np.float64(self.fairness_slack).tobytes())
        return h.digest()

    def _maxmin_rates_sharded(self, idx: np.ndarray
                              ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Partitioned solve of one oversized (fused) solve set.

        Splits the touched resources into ``shards`` balanced parts with
        a bounded cut (see :meth:`_shard_labels`), solves each part as an
        independent sub-network — worker pool or in-process, with a
        digest-keyed result cache so ticks that disturb one shard
        re-solve one shard — and reconciles the classes crossing the cut
        by a fixed-point loop: every cut class is pinned at the minimum
        rate any of its shards granted, and shards re-solve with the pin
        as the class's effective rate cap until pins stop moving. Pins
        are monotonically non-increasing (a pinned class can only get
        less), so the loop converges; if it is still moving by more than
        ``fairness_slack`` after ``_SHARD_MAX_RECONCILE`` rounds the tick
        falls back to the exact solve. Returns ``None`` whenever the
        sharded path declines (caller falls back).
        """
        slack = self.fairness_slack
        if slack <= 0.0 or self.shards <= 1:
            return None
        present, inverse, mult = np.unique(
            self._slot_class[idx], return_inverse=True, return_counts=True)
        if present.size < _SHARD_MIN_CLASSES:
            return None
        cres = self._class_res[present]           # (C, K)
        cvalid = cres >= 0                        # (C, K)
        ccaps = self._class_cap[present]          # (C,)
        cmult = mult.astype(float)                # (C,)
        nclasses = present.size
        res_ids = np.unique(cres[cvalid])
        if res_ids.size < 2:
            return None
        caps_t = self._capacities[res_ids]
        k = min(self.shards, int(res_ids.size))

        # Per valid (class, slot) entry: local resource id + part label.
        ci, ki = np.nonzero(cvalid)
        ent_local = np.searchsorted(res_ids, cres[ci, ki])
        # The bandwidth a class could pull across a cut edge: its
        # multiplicity times the tightest of its own cap and the
        # smallest capacity it touches.
        min_res_cap = np.full(nclasses, np.inf)
        np.minimum.at(min_res_cap, ci, caps_t[ent_local])
        class_w = cmult * np.minimum(ccaps, min_res_cap)

        labels = self._shard_labels(res_ids, ci, ent_local, class_w,
                                    caps_t, k)
        ent_lab = labels[ent_local]
        touches = np.zeros((nclasses, k), dtype=bool)
        touches[ci, ent_lab] = True
        cut = touches.sum(axis=1) > 1
        has_res = cvalid[:, 0]

        # Acceptance gate: the bandwidth crossing the cut must be within
        # the fairness slack of the smallest shard, otherwise shard
        # interactions could shift rates beyond the promised deviation.
        part_caps = np.bincount(labels, weights=caps_t, minlength=k)
        cut_w = float(class_w[cut].sum())
        live_caps = part_caps[part_caps > 0]
        if cut_w > slack * float(live_caps.min()):
            self._stat_shard_rejects += 1
            return None

        # Static per-part structures (only effective caps change across
        # reconciliation iterations).
        parts = []
        local_map = np.full(res_ids.size, -1, dtype=np.int64)
        for p in range(k):
            res_local = np.nonzero(labels == p)[0]
            cls_rows = np.nonzero(touches[:, p])[0]
            if res_local.size == 0 or cls_rows.size == 0:
                continue
            local_map.fill(-1)
            local_map[res_local] = np.arange(res_local.size)
            sub = cres[cls_rows]                  # (c_p, K) global ids
            sub_valid = sub >= 0
            loc = local_map[np.searchsorted(
                res_ids, np.where(sub_valid, sub, res_ids[0]))]
            # -1 for padding AND for resources living in other parts
            # (a cut class keeps only its local resources here).
            ent = np.where(sub_valid, loc, -1)
            order = np.argsort(ent < 0, axis=1, kind="stable")
            class_res_local = np.ascontiguousarray(
                np.take_along_axis(ent, order, axis=1))
            fmask = touches[:, p][inverse]
            flow_local = np.searchsorted(cls_rows, inverse[fmask])
            _uniq, first_idx = np.unique(flow_local, return_index=True)
            parts.append((cls_rows, class_res_local,
                          np.ascontiguousarray(caps_t[res_local]),
                          np.ascontiguousarray(flow_local), first_idx))
        if len(parts) < 2:
            # Every class landed in one shard: nothing to parallelise or
            # range-reduce; the plain solve is strictly cheaper.
            self._stat_shard_rejects += 1
            return None

        pins = np.full(nclasses, np.inf)
        rate_class = np.full(nclasses, np.inf)
        iters = 0
        converged = False
        residual = math.inf
        for _ in range(_SHARD_MAX_RECONCILE):
            iters += 1
            rate_class.fill(np.inf)
            pending: List[ShardProblem] = []
            pending_keys: List[bytes] = []
            pending_parts: List[int] = []
            results: List[Optional[np.ndarray]] = [None] * len(parts)
            for pi, (cls_rows, cres_l, caps_l, flow_l, first) in \
                    enumerate(parts):
                cap_eff = np.ascontiguousarray(
                    np.minimum(ccaps[cls_rows], pins[cls_rows]))
                key = self._shard_key(flow_l, cres_l, cap_eff, caps_l)
                hit = self._shard_cache.get(key)
                if hit is not None:
                    results[pi] = hit
                    self._stat_shard_cache_hits += 1
                else:
                    pending.append(ShardProblem(flow_l, cres_l, cap_eff,
                                                caps_l, slack))
                    pending_keys.append(key)
                    pending_parts.append(pi)
            if pending:
                solved = self._solve_shard_problems(pending)
                self._stat_shard_solves += len(pending)
                for key, pi, (rate_f, _used) in zip(
                        pending_keys, pending_parts, solved):
                    cls_rate = rate_f[parts[pi][4]]
                    if len(self._shard_cache) >= _SHARD_CACHE_MAX:
                        self._shard_cache.clear()
                    self._shard_cache[key] = cls_rate
                    results[pi] = cls_rate
            for pi, (cls_rows, _cr, _cl, _fl, _fi) in enumerate(parts):
                # A cut class's rate is the tightest of its shards'.
                rate_class[cls_rows] = np.minimum(rate_class[cls_rows],
                                                  results[pi])
            if cut.any():
                old = pins[cut]
                new = rate_class[cut]
                with np.errstate(invalid="ignore"):
                    rel = np.abs(new - old) / np.maximum(new, 1e-30)
                residual = float(rel.max())
                pins[cut] = np.minimum(old, new)
            else:
                residual = 0.0
            if residual <= _SHARD_CONVERGED:
                converged = True
                break
        if not converged and residual > slack:
            # The fixed point is still moving beyond the promised error
            # bound: give this tick to the exact solver.
            self._stat_shard_fallbacks += 1
            return None

        self._stat_sharded_ticks += 1
        self._stat_shard_reconcile_iters += iters
        self._stat_shard_cut_bytes += cut_w
        imbalance = float(part_caps.max() * k / part_caps.sum())
        if imbalance > self._stat_shard_max_imbalance:
            self._stat_shard_max_imbalance = imbalance
        self._stat_shard_count_last = len(parts)

        # Capless classes are bounded by their own (finite) cap only.
        rate_class = np.where(has_res, rate_class, ccaps)
        rate = rate_class[inverse]
        np.maximum(rate, 1e-12, out=rate)
        # Consumed bandwidth from the final class rates; feasible by
        # construction (each shard allocated within its capacities and
        # cut classes only ever shrank below what any shard budgeted).
        used = np.zeros(self._capacities.size, dtype=float)
        np.add.at(used, cres[ci, ki], (rate_class * cmult)[ci])
        return rate, used
