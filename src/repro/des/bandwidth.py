"""Flow-level bandwidth sharing with max-min fairness.

Every contended byte-moving component in the cluster models — a node's NIC,
a network bisection, a storage target, a node's memory bus — is a
:class:`LinkCapacity`. A data movement is a :class:`Flow` spanning one or
more capacities (e.g. source NIC → interconnect → storage target). Active
flows share each capacity max-min fairly; per-flow rate caps (used to model
per-stream efficiency limits and injected interference) participate in the
water-filling.

The implementation is a structure-of-arrays over numpy so that a
barrier-synchronised I/O storm of ~10⁴ flows costs a handful of O(F)
vectorised solves rather than O(F²) Python loops: shares are recomputed
only when the set of active flows changes (arrivals are batched per
timestamp; completions are discovered by a single "next completion" event).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.des.core import Event, Simulator, PRIORITY_LATE
from repro.errors import SimulationError

__all__ = ["LinkCapacity", "Flow", "FlowNetwork"]

#: Maximum number of capacities a single flow may traverse.
MAX_RES_PER_FLOW = 4

_REL_EPS = 1e-9


class LinkCapacity:
    """A named, shared capacity (bytes/s) inside a :class:`FlowNetwork`."""

    __slots__ = ("network", "index", "name")

    def __init__(self, network: "FlowNetwork", index: int, name: str) -> None:
        self.network = network
        self.index = index
        self.name = name

    @property
    def capacity(self) -> float:
        return float(self.network._capacities[self.index])

    def set_capacity(self, capacity: float) -> None:
        """Change the capacity (e.g. background interference); reshapes flows."""
        if capacity <= 0:
            raise SimulationError(f"capacity must be > 0, got {capacity}")
        self.network._capacities[self.index] = capacity
        self.network._request_recompute()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LinkCapacity {self.name!r} {self.capacity:.3g} B/s>"


class Flow:
    """Handle on an in-flight transfer. ``flow.event`` fires on completion."""

    __slots__ = ("network", "index", "event", "nbytes", "start_time",
                 "end_time", "label")

    def __init__(self, network: "FlowNetwork", index: int, event: Event,
                 nbytes: float, start_time: float, label: str) -> None:
        self.network = network
        self.index = index
        self.event = event
        self.nbytes = nbytes
        self.start_time = start_time
        self.end_time: Optional[float] = None
        self.label = label

    @property
    def duration(self) -> float:
        """Completion time minus start time (only valid once completed)."""
        if self.end_time is None:
            raise SimulationError(f"flow {self.label!r} has not completed")
        return self.end_time - self.start_time

    @property
    def remaining(self) -> float:
        """Bytes still to transfer, as of the last share recomputation."""
        return float(self.network._remaining[self.index])

    def cancel(self) -> None:
        """Abort the transfer; the completion event never fires."""
        self.network._cancel(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Flow {self.label!r} {self.nbytes:.3g} B>"


class FlowNetwork:
    """All capacities and flows of one simulated machine.

    ``completion_slack`` bounds a deliberate approximation: when the
    earliest flow completes, every flow within ``completion_slack ×
    elapsed`` of its own finish completes in the same batch (i.e. each
    flow's duration may be shortened by at most that relative fraction).
    This turns an N-flow I/O storm with near-identical finish times from N
    share recomputations into a handful, at a bounded per-flow timing
    error. The default is exact (0.0); cluster-scale models opt in.
    """

    def __init__(self, sim: Simulator, completion_slack: float = 0.0,
                 fairness_slack: float = 0.0) -> None:
        if completion_slack < 0:
            raise SimulationError(
                f"completion_slack must be >= 0, got {completion_slack}")
        if fairness_slack < 0:
            raise SimulationError(
                f"fairness_slack must be >= 0, got {fairness_slack}")
        self.sim = sim
        self.completion_slack = float(completion_slack)
        #: Rate levels within this relative tolerance of the bottleneck
        #: freeze together in one water-filling round — an approximation
        #: that turns hundreds of near-equal bottleneck levels (distinct
        #: per-target loads) into a handful of vectorised rounds.
        self.fairness_slack = float(fairness_slack)
        self._capacities = np.zeros(0, dtype=float)
        self._cap_names: List[str] = []
        self._links: Dict[str, LinkCapacity] = {}

        size = 64
        self._remaining = np.zeros(size, dtype=float)
        self._rate = np.zeros(size, dtype=float)
        self._flow_cap = np.full(size, np.inf, dtype=float)
        self._active = np.zeros(size, dtype=bool)
        self._start = np.zeros(size, dtype=float)
        self._res = np.full((size, MAX_RES_PER_FLOW), -1, dtype=np.int64)
        self._flows: List[Optional[Flow]] = [None] * size
        self._free: List[int] = list(range(size - 1, -1, -1))

        self._last_update = 0.0
        self._recompute_scheduled = False
        self._version = 0
        self.total_bytes_moved = 0.0
        self.completed_flows = 0

    # ------------------------------------------------------------------ #
    # capacities
    # ------------------------------------------------------------------ #
    def add_capacity(self, name: str, capacity: float) -> LinkCapacity:
        """Register a new shared capacity (bytes/s)."""
        if name in self._links:
            raise SimulationError(f"duplicate capacity name {name!r}")
        if capacity <= 0:
            raise SimulationError(f"capacity must be > 0, got {capacity}")
        index = len(self._cap_names)
        self._cap_names.append(name)
        self._capacities = np.append(self._capacities, float(capacity))
        link = LinkCapacity(self, index, name)
        self._links[name] = link
        return link

    def link(self, name: str) -> LinkCapacity:
        return self._links[name]

    @property
    def active_flow_count(self) -> int:
        return int(self._active.sum())

    # ------------------------------------------------------------------ #
    # flows
    # ------------------------------------------------------------------ #
    def transfer(self, resources: Sequence[LinkCapacity], nbytes: float,
                 rate_cap: float = math.inf, label: str = "") -> Flow:
        """Start a transfer of ``nbytes`` across ``resources``.

        Returns a :class:`Flow` whose ``event`` succeeds (with the flow as
        value) once the last byte has moved. ``rate_cap`` bounds the flow's
        own rate (per-stream efficiency, interference injection).
        """
        if nbytes < 0:
            raise SimulationError(f"cannot transfer negative bytes: {nbytes}")
        if len(resources) > MAX_RES_PER_FLOW:
            raise SimulationError(
                f"flow spans {len(resources)} capacities, max is "
                f"{MAX_RES_PER_FLOW}")
        if not resources and not math.isfinite(rate_cap):
            raise SimulationError(
                "a flow needs at least one capacity or a finite rate cap")
        for res in resources:
            if res.network is not self:
                raise SimulationError(
                    f"capacity {res.name!r} belongs to another network")
        if rate_cap <= 0:
            raise SimulationError(f"rate_cap must be > 0, got {rate_cap}")

        event = Event(self.sim)
        if nbytes == 0:
            flow = Flow(self, -1, event, 0.0, self.sim.now, label)
            flow.end_time = self.sim.now
            event.succeed(flow)
            return flow

        index = self._alloc_slot()
        flow = Flow(self, index, event, float(nbytes), self.sim.now, label)
        self._remaining[index] = float(nbytes)
        self._rate[index] = 0.0
        self._start[index] = self.sim.now
        self._flow_cap[index] = rate_cap
        self._res[index, :] = -1
        for k, res in enumerate(resources):
            self._res[index, k] = res.index
        self._active[index] = True
        self._flows[index] = flow
        self._request_recompute()
        return flow

    def _alloc_slot(self) -> int:
        if not self._free:
            old = len(self._flows)
            new = old * 2
            self._remaining = np.resize(self._remaining, new)
            self._rate = np.resize(self._rate, new)
            self._flow_cap = np.resize(self._flow_cap, new)
            self._start = np.resize(self._start, new)
            grown_active = np.zeros(new, dtype=bool)
            grown_active[:old] = self._active
            self._active = grown_active
            grown_res = np.full((new, MAX_RES_PER_FLOW), -1, dtype=np.int64)
            grown_res[:old] = self._res
            self._res = grown_res
            self._flows.extend([None] * (new - old))
            self._free.extend(range(new - 1, old - 1, -1))
        return self._free.pop()

    def _cancel(self, flow: Flow) -> None:
        if flow.index < 0 or self._flows[flow.index] is not flow:
            return
        self._release_slot(flow.index)
        self._request_recompute()

    def _release_slot(self, index: int) -> None:
        self._active[index] = False
        self._flows[index] = None
        self._rate[index] = 0.0
        self._remaining[index] = 0.0
        self._free.append(index)

    # ------------------------------------------------------------------ #
    # share recomputation
    # ------------------------------------------------------------------ #
    def _request_recompute(self) -> None:
        if self._recompute_scheduled:
            return
        self._recompute_scheduled = True
        # Late priority: all same-timestamp arrivals/departures batch into
        # one recomputation.
        self.sim.schedule_callback(0.0, self._recompute, priority=PRIORITY_LATE)

    def _advance(self) -> None:
        """Progress all active flows from the last update time to now."""
        now = self.sim.now
        dt = now - self._last_update
        if dt > 0:
            moved = self._rate * dt * self._active
            self._remaining -= moved
            np.clip(self._remaining, 0.0, None, out=self._remaining)
            self.total_bytes_moved += float(moved.sum())
        self._last_update = now

    def _recompute(self) -> None:
        self._recompute_scheduled = False
        self._advance()
        self._complete_finished()
        idx = np.flatnonzero(self._active)
        self._version += 1
        if idx.size == 0:
            return
        rates = self._maxmin_rates(idx)
        self._rate[idx] = rates
        with np.errstate(divide="ignore"):
            finish = self._remaining[idx] / rates
        t_next = float(finish.min())
        version = self._version
        self.sim.schedule_callback(
            max(t_next, 0.0),
            lambda: self._on_completion_tick(version),
            priority=PRIORITY_LATE,
        )

    def _on_completion_tick(self, version: int) -> None:
        if version != self._version:
            return  # stale: the flow set changed since this was scheduled
        self._recompute()

    def _complete_finished(self) -> None:
        # A flow is done when its remaining volume is within tolerance: an
        # exact epsilon plus the completion-slack fraction of the time it
        # has already been running (bounded relative timing error; batches
        # near-simultaneous completions into one recomputation).
        now = self.sim.now
        tol_seconds = self.completion_slack * (now - self._start) + _REL_EPS
        tol = self._rate * tol_seconds + 1e-6
        done = self._active & (self._remaining <= tol)
        if not done.any():
            return
        # Account the short-cut remainder as moved.
        self.total_bytes_moved += float(self._remaining[done].sum())
        for index in np.flatnonzero(done):
            flow = self._flows[index]
            self._release_slot(int(index))
            if flow is None:
                continue
            flow.end_time = now
            self.completed_flows += 1
            flow.event.succeed(flow)

    def _maxmin_rates(self, idx: np.ndarray) -> np.ndarray:
        """Max-min fair rates (with per-flow caps) for active flow slots.

        Each round computes every unfrozen flow's *candidate* rate — the
        minimum of its resources' fair shares and its own cap — and
        freezes all flows whose candidate lies within ``fairness_slack``
        of the global bottleneck, at their candidate. With slack 0 this is
        exact max-min; with a small slack, near-equal bottleneck levels
        batch into one round (hundreds of rounds → a handful).
        """
        res = self._res[idx]                      # (F, K)
        valid = res >= 0                          # (F, K)
        caps = self._flow_cap[idx]                # (F,)
        nflows = idx.size
        nres = self._capacities.size
        rate = np.zeros(nflows, dtype=float)
        frozen = np.zeros(nflows, dtype=bool)
        cap_rem = self._capacities.astype(float).copy()
        res_clipped = np.where(valid, res, 0)
        batch = 1.0 + self.fairness_slack + 1e-12

        for _ in range(nflows + nres + 1):
            unfrozen = ~frozen
            if not unfrozen.any():
                break
            members = res[unfrozen][valid[unfrozen]]
            if members.size == 0:
                # Remaining flows touch no capacity: bounded by caps only.
                rate[unfrozen] = caps[unfrozen]
                break
            counts = np.zeros(nres, dtype=float)
            np.add.at(counts, members, 1.0)
            used = counts > 0
            share = np.full(nres, np.inf)
            share[used] = np.maximum(cap_rem[used], 0.0) / counts[used]
            # Per-flow candidate: min share across its resources, then cap.
            flow_share = np.where(valid, share[res_clipped], np.inf)
            candidate = np.minimum(flow_share.min(axis=1), caps)
            s_star = float(candidate[unfrozen].min())

            freeze = unfrozen & (candidate <= s_star * batch)
            rate[freeze] = candidate[freeze]
            frozen[freeze] = True
            consumed = np.zeros(nres, dtype=float)
            flat_rate = np.repeat(candidate[freeze], MAX_RES_PER_FLOW)
            flat_res = res_clipped[freeze].ravel()
            flat_valid = valid[freeze].ravel()
            np.add.at(consumed, flat_res[flat_valid], flat_rate[flat_valid])
            cap_rem -= consumed

        # Numerical safety: every active flow must make progress.
        np.maximum(rate, 1e-12, out=rate)
        return rate
