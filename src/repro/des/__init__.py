"""Discrete-event simulation kernel.

A small, fast, dependency-free DES in the style of SimPy, tailored to the
needs of the cluster/file-system models in this package:

- :class:`~repro.des.core.Simulator` — the event loop and simulated clock;
- :class:`~repro.des.core.Event`, :class:`~repro.des.core.Timeout` — the
  primitive awaitables;
- :class:`~repro.des.process.Process` — generator-coroutine processes that
  ``yield`` events to wait on them;
- :mod:`~repro.des.resources` — FIFO servers, stores and priority resources;
- :mod:`~repro.des.bandwidth` — a vectorised max-min fair-share flow model
  used for every NIC, link and storage target in the cluster models;
- :mod:`~repro.des.sched` — pluggable event queues (calendar queue and
  binary heap, ``REPRO_SCHEDULER``);
- :mod:`~repro.des.kernels` — the optional compiled water-filling kernel
  (``REPRO_KERNEL``);
- :mod:`~repro.des.partition` / :mod:`~repro.des.shards` — min-cut graph
  partitioning and the persistent shard-worker pool behind the
  ``sharded`` solver (``REPRO_SOLVER=sharded``, ``REPRO_SHARDS``);
- :mod:`~repro.des.rng` — named, deterministic random streams;
- :mod:`~repro.des.monitor` — counters and time series for instrumentation.
"""

from repro.des.core import Event, Simulator, Timeout
from repro.des.kernels import (KERNEL_COMPILED, KERNEL_PYTHON, kernel_status,
                               resolve_kernel)
from repro.des.sched import SCHED_CALENDAR, SCHED_HEAP, resolve_scheduler
from repro.des.process import AllOf, AnyOf, Interrupt, Process
from repro.des.resources import PriorityResource, Resource, Store
from repro.des.bandwidth import (Flow, FlowNetwork, LinkCapacity,
                                 SOLVER_COMPONENT, SOLVER_GLOBAL,
                                 SOLVER_SHARDED)
from repro.des.shards import (DEFAULT_SHARDS, ShardWorkerPool,
                              resolve_shard_workers, resolve_shards)
from repro.des.rng import RandomStreams
from repro.des.monitor import Counter, Monitor, TimeSeries

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "DEFAULT_SHARDS",
    "Event",
    "Flow",
    "FlowNetwork",
    "Interrupt",
    "KERNEL_COMPILED",
    "KERNEL_PYTHON",
    "LinkCapacity",
    "Monitor",
    "PriorityResource",
    "Process",
    "RandomStreams",
    "Resource",
    "SCHED_CALENDAR",
    "SCHED_HEAP",
    "SOLVER_COMPONENT",
    "SOLVER_GLOBAL",
    "SOLVER_SHARDED",
    "ShardWorkerPool",
    "Simulator",
    "Store",
    "TimeSeries",
    "kernel_status",
    "resolve_kernel",
    "resolve_scheduler",
    "resolve_shard_workers",
    "resolve_shards",
]
