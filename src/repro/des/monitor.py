"""Lightweight instrumentation: counters and time series.

Models record into a shared :class:`Monitor`; experiment harnesses read the
aggregated values afterwards. Recording is O(1) appends; analysis converts
to numpy arrays lazily.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

__all__ = ["Counter", "TimeSeries", "Monitor"]


class Counter:
    """A monotonically adjustable named quantity (e.g. bytes written)."""

    __slots__ = ("name", "value", "events")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.events = 0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount
        self.events += 1


class TimeSeries:
    """Timestamped samples of a named quantity (e.g. write-phase duration)."""

    __slots__ = ("name", "_times", "_values")

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, time: float, value: float) -> None:
        self._times.append(time)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=float)

    def mean(self) -> float:
        return float(np.mean(self._values)) if self._values else 0.0

    def max(self) -> float:
        return float(np.max(self._values)) if self._values else 0.0

    def min(self) -> float:
        return float(np.min(self._values)) if self._values else 0.0

    def std(self) -> float:
        return float(np.std(self._values)) if self._values else 0.0

    def total(self) -> float:
        return float(np.sum(self._values)) if self._values else 0.0


class Monitor:
    """A registry of counters and time series, keyed by name."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def series(self, name: str) -> TimeSeries:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = TimeSeries(name)
        return series

    def has_series(self, name: str) -> bool:
        return name in self._series

    def counters(self) -> Dict[str, Counter]:
        return dict(self._counters)

    def all_series(self) -> Dict[str, TimeSeries]:
        return dict(self._series)

    def series_matching(self, prefix: str) -> List[Tuple[str, TimeSeries]]:
        return sorted(
            (name, ts) for name, ts in self._series.items()
            if name.startswith(prefix)
        )
