"""Min-cut partitioning of the resource-contention graph.

The component-partitioned solver (:mod:`repro.des.bandwidth`) exploits
*exact* independence: resource-disjoint components of the contention
graph cannot affect each other's max-min rates. Damaris-style shared-OST
topologies routinely defeat it — a handful of thin cross-group flows
(striping spill-over, metadata traffic, inter-tier migration) fuse
thousands of otherwise independent (NIC, OST) groups into one giant
*weakly coupled* component that every freeze round must then solve as a
whole. This module provides the partitioning pass behind
``REPRO_SOLVER=sharded``: split such a component's *resources* into K
balanced shards so that the bandwidth that can cross between shards is
tiny, solve the shards independently, and reconcile the few cut flows.

The algorithm is the classic multilevel heuristic in miniature:

1. **Greedy coarsening** — repeated heavy-edge matching collapses
   strongly coupled resource pairs into supernodes until the graph is
   small, so the initial split is decided on the cluster structure, not
   on individual resources;
2. **balanced greedy initial partition** of the coarsest graph (nodes in
   descending weight order go to the most-connected part that still has
   room, capacity-weighted);
3. **Kernighan–Lin-style local search** at every uncoarsening level:
   boundary nodes move to the neighbouring part with the largest cut
   reduction, subject to the balance ceiling, until a pass makes no
   move.

Everything is deterministic — node order, stable sorts and strict-gain
moves only — because shard layouts feed a solver whose results must be
reproducible run to run. Weights are *capacities* (bytes/s) on nodes
(balance objective) and *couplings* (the bandwidth a flow class could
pull across the edge) on edges (min-cut objective), matching the
Hess-style "minimize cut edges, balance district weight" formulation of
the political-districting literature this pass is modelled on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["PartitionResult", "cut_weight", "partition_graph"]

#: Stop coarsening once the graph is this small (times k); the greedy
#: initial split plus refinement handle the rest.
_COARSEN_STOP_FACTOR = 4
#: Never coarsen below this many nodes regardless of k.
_COARSEN_STOP_MIN = 32
#: Refinement passes per level; each pass is O(E), and the local search
#: almost always converges in two.
_DEFAULT_PASSES = 4


@dataclass(frozen=True)
class PartitionResult:
    """A computed K-way split of a weighted graph."""

    #: Part id (``0..k-1``) per node.
    labels: np.ndarray
    #: Requested part count (some parts may be empty on degenerate input).
    k: int
    #: Total weight of edges whose endpoints land in different parts.
    cut_weight: float
    #: ``max(part weight) / ideal part weight`` (1.0 = perfectly balanced).
    imbalance: float
    #: Coarsening levels built before the initial split.
    levels: int
    #: Local-search moves applied across all refinement passes.
    moves: int


def cut_weight(labels: np.ndarray, edge_u: np.ndarray, edge_v: np.ndarray,
               edge_w: np.ndarray) -> float:
    """Total weight of edges crossing the partition."""
    if len(edge_u) == 0:
        return 0.0
    cut = labels[edge_u] != labels[edge_v]
    return float(np.asarray(edge_w)[cut].sum())


def _aggregate_edges(n: int, u: np.ndarray, v: np.ndarray,
                     w: np.ndarray) -> Tuple[np.ndarray, np.ndarray,
                                             np.ndarray]:
    """Normalise to ``u < v``, drop self-loops, sum parallel edges."""
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    keep = lo != hi
    lo, hi, w = lo[keep], hi[keep], w[keep]
    if lo.size == 0:
        return lo, hi, w
    key = lo * np.int64(n) + hi
    order = np.argsort(key, kind="stable")
    key, lo, hi, w = key[order], lo[order], hi[order], w[order]
    _uniq, start = np.unique(key, return_index=True)
    return lo[start], hi[start], np.add.reduceat(w, start)


def _adjacency(n: int, u: np.ndarray, v: np.ndarray,
               w: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR adjacency (both directions) of an undirected edge list."""
    du = np.concatenate([u, v])
    dv = np.concatenate([v, u])
    dw = np.concatenate([w, w])
    order = np.argsort(du, kind="stable")
    du, dv, dw = du[order], dv[order], dw[order]
    indptr = np.searchsorted(du, np.arange(n + 1))
    return indptr, dv, dw


def _heavy_edge_matching(n: int, u: np.ndarray, v: np.ndarray,
                         w: np.ndarray) -> Tuple[np.ndarray, int]:
    """Match each node with its heaviest still-unmatched neighbour.

    Returns (coarse id per node, coarse node count). Unmatched nodes
    become singleton supernodes; coarse ids are assigned in ascending
    fine-node order so the mapping is deterministic.
    """
    order = np.argsort(-w, kind="stable")
    mate = np.full(n, -1, dtype=np.int64)
    us, vs = u[order], v[order]
    for a, b in zip(us.tolist(), vs.tolist()):
        if mate[a] < 0 and mate[b] < 0:
            mate[a] = b
            mate[b] = a
    coarse = np.full(n, -1, dtype=np.int64)
    nxt = 0
    for a in range(n):
        if coarse[a] >= 0:
            continue
        coarse[a] = nxt
        b = mate[a]
        if b >= 0:
            coarse[b] = nxt
        nxt += 1
    return coarse, nxt


def _greedy_initial(n: int, node_w: np.ndarray, indptr: np.ndarray,
                    adj: np.ndarray, adj_w: np.ndarray, k: int,
                    ceiling: float) -> np.ndarray:
    """Assign nodes (descending weight) to their most-connected part
    with room; fall back to the lightest part when none has room."""
    labels = np.full(n, -1, dtype=np.int64)
    part_w = np.zeros(k, dtype=float)
    conn = np.empty(k, dtype=float)
    for a in np.argsort(-node_w, kind="stable").tolist():
        conn.fill(0.0)
        for e in range(indptr[a], indptr[a + 1]):
            lb = labels[adj[e]]
            if lb >= 0:
                conn[lb] += adj_w[e]
        best, best_score = -1, -np.inf
        for p in range(k):
            if part_w[p] + node_w[a] > ceiling:
                continue
            # Prefer connectivity; break ties toward the lighter part.
            score = conn[p] - 1e-12 * part_w[p]
            if score > best_score:
                best, best_score = p, score
        if best < 0:
            best = int(np.argmin(part_w))
        labels[a] = best
        part_w[best] += node_w[a]
    return labels


def _refine(n: int, node_w: np.ndarray, indptr: np.ndarray,
            adj: np.ndarray, adj_w: np.ndarray, labels: np.ndarray,
            k: int, ceiling: float, passes: int) -> int:
    """KL-style local search: move boundary nodes to the adjacent part
    with the largest strictly positive cut-weight gain, respecting the
    balance ceiling. Returns the number of moves applied."""
    part_w = np.bincount(labels, weights=node_w, minlength=k)
    conn = np.empty(k, dtype=float)
    moves = 0
    for _ in range(passes):
        moved = False
        for a in range(n):
            s, e = indptr[a], indptr[a + 1]
            if s == e:
                continue
            la = labels[a]
            conn.fill(0.0)
            boundary = False
            for i in range(s, e):
                lb = labels[adj[i]]
                conn[lb] += adj_w[i]
                if lb != la:
                    boundary = True
            if not boundary:
                continue
            wa = node_w[a]
            best, best_gain = la, 0.0
            for p in range(k):
                if p == la or part_w[p] + wa > ceiling:
                    continue
                gain = conn[p] - conn[la]
                if gain > best_gain + 1e-12 * (1.0 + abs(best_gain)):
                    best, best_gain = p, gain
            if best != la:
                part_w[la] -= wa
                part_w[best] += wa
                labels[a] = best
                moved = True
                moves += 1
        if not moved:
            break
    return moves


def partition_graph(node_weight: np.ndarray, edge_u: np.ndarray,
                    edge_v: np.ndarray, edge_w: np.ndarray, k: int,
                    balance_tol: float = 0.25,
                    passes: int = _DEFAULT_PASSES) -> PartitionResult:
    """Split a weighted undirected graph into ``k`` balanced parts.

    ``node_weight`` is the balance objective (a part's weight is the sum
    of its nodes'); ``edge_w`` is the min-cut objective. Every part's
    weight is pushed toward ``total / k`` with a relative headroom of
    ``balance_tol``. Deterministic for identical inputs.
    """
    node_weight = np.asarray(node_weight, dtype=float)
    n = node_weight.size
    k = int(k)
    if k < 1:
        raise ValueError(f"need k >= 1 parts, got {k}")
    edge_u = np.asarray(edge_u, dtype=np.int64)
    edge_v = np.asarray(edge_v, dtype=np.int64)
    edge_w = np.asarray(edge_w, dtype=float)
    if k == 1 or n <= 1:
        labels = np.zeros(n, dtype=np.int64)
        return PartitionResult(labels, k,
                               cut_weight(labels, edge_u, edge_v, edge_w),
                               1.0 if n else 0.0, 0, 0)
    if n <= k:
        labels = np.arange(n, dtype=np.int64)
        return PartitionResult(labels, k, cut_weight(labels, edge_u, edge_v,
                                                     edge_w),
                               _imbalance(labels, node_weight, k), 0, 0)

    u, v, w = _aggregate_edges(n, edge_u, edge_v, edge_w)
    total = float(node_weight.sum())
    ceiling = (total / k) * (1.0 + balance_tol)
    # The initial split packs toward the *ideal* weight: if greedy used
    # the full ceiling, every part could arrive at refinement already
    # full, leaving the local search no room for any improving move.
    greedy_ceiling = total / k

    # -- coarsen -------------------------------------------------------- #
    graphs: List[Tuple[int, np.ndarray, np.ndarray, np.ndarray,
                       np.ndarray]] = [(n, node_weight, u, v, w)]
    mappings: List[np.ndarray] = []
    stop = max(_COARSEN_STOP_FACTOR * k, _COARSEN_STOP_MIN)
    while graphs[-1][0] > stop:
        cn, cw, cu, cv, cew = graphs[-1]
        coarse, nc = _heavy_edge_matching(cn, cu, cv, cew)
        if nc >= cn:  # no edge matched: coarsening cannot make progress
            break
        nw2 = np.bincount(coarse, weights=cw, minlength=nc)
        u2, v2, w2 = _aggregate_edges(nc, coarse[cu], coarse[cv], cew)
        mappings.append(coarse)
        graphs.append((nc, nw2, u2, v2, w2))

    # -- initial split on the coarsest graph ---------------------------- #
    cn, cw, cu, cv, cew = graphs[-1]
    indptr, adj, adj_w = _adjacency(cn, cu, cv, cew)
    labels = _greedy_initial(cn, cw, indptr, adj, adj_w, k, greedy_ceiling)
    moves = _refine(cn, cw, indptr, adj, adj_w, labels, k, ceiling, passes)

    # -- uncoarsen + refine each level ---------------------------------- #
    for level in range(len(mappings) - 1, -1, -1):
        labels = labels[mappings[level]]
        fn, fw, fu, fv, few = graphs[level]
        indptr, adj, adj_w = _adjacency(fn, fu, fv, few)
        moves += _refine(fn, fw, indptr, adj, adj_w, labels, k, ceiling,
                         passes)

    return PartitionResult(
        labels, k, cut_weight(labels, u, v, w),
        _imbalance(labels, node_weight, k), len(mappings), moves)


def _imbalance(labels: np.ndarray, node_weight: np.ndarray, k: int) -> float:
    part_w = np.bincount(labels, weights=node_weight, minlength=k)
    ideal = node_weight.sum() / k
    return float(part_w.max() / ideal) if ideal > 0 else 0.0
