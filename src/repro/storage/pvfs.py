"""PVFS-like file system: distributed metadata, no client locking.

PVFS hashes metadata over all servers (no single-MDS bottleneck) and does
not implement client byte-range locking — concurrent writers to a shared
file simply interleave (applications must write disjoint regions, which
MPI-IO guarantees). Files stripe across *all* servers by default.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Optional

from repro.storage.disk import TargetSpec
from repro.storage.filesystem import ParallelFileSystem
from repro.storage.metadata import MetadataServer, MetadataSpec
from repro.units import KiB

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.machine import Machine

__all__ = ["PVFS"]


class PVFS(ParallelFileSystem):
    """PVFS model: metadata spread over every server, lock-free data path."""

    fs_type = "pvfs"

    def __init__(self, machine: "Machine", ntargets: int = 15,
                 target_spec: Optional[TargetSpec] = None,
                 metadata_spec: Optional[MetadataSpec] = None,
                 default_stripe_size: int = 64 * KiB,
                 default_stripe_count: Optional[int] = None,
                 name: str = "pvfs") -> None:
        super().__init__(
            machine,
            ntargets=ntargets,
            target_spec=target_spec,
            metadata_spec=metadata_spec,
            # Every PVFS server also serves metadata.
            n_metadata_servers=ntargets,
            default_stripe_size=default_stripe_size,
            default_stripe_count=(default_stripe_count
                                  if default_stripe_count is not None
                                  else ntargets),
            lock_manager=None,  # PVFS does no client locking
            name=name,
        )

    def _mds_for(self, path: str) -> MetadataServer:
        index = zlib.crc32(path.encode("utf-8")) % len(self.metadata_servers)
        return self.metadata_servers[index]
