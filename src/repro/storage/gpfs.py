"""GPFS-like file system: few NSD servers, byte-range lock tokens.

GPFS distributes data over a small number of NSD servers (BluePrint ran
GPFS on 2 nodes) and uses a token-based byte-range locking protocol: the
first writer gets the whole range, later conflicting writers split it —
modelled here with the same stripe-granular lock manager as Lustre, but
with a cheaper revocation (token split) and metadata distributed over the
NSD servers.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Optional

from repro.storage.disk import TargetSpec
from repro.storage.filesystem import ParallelFileSystem
from repro.storage.locks import ExtentLockManager
from repro.storage.metadata import MetadataServer, MetadataSpec
from repro.units import MiB

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.machine import Machine

__all__ = ["GPFS"]


class GPFS(ParallelFileSystem):
    """GPFS model: NSD servers with byte-range token locks."""

    fs_type = "gpfs"

    def __init__(self, machine: "Machine", ntargets: int = 2,
                 target_spec: Optional[TargetSpec] = None,
                 metadata_spec: Optional[MetadataSpec] = None,
                 default_stripe_size: int = 4 * MiB,
                 default_stripe_count: Optional[int] = None,
                 revoke_latency: float = 0.8e-3,
                 name: str = "gpfs") -> None:
        super().__init__(
            machine,
            ntargets=ntargets,
            target_spec=target_spec,
            metadata_spec=metadata_spec,
            n_metadata_servers=ntargets,
            default_stripe_size=default_stripe_size,
            default_stripe_count=(default_stripe_count
                                  if default_stripe_count is not None
                                  else ntargets),
            lock_manager=ExtentLockManager(machine,
                                           revoke_latency=revoke_latency),
            name=name,
        )

    def _mds_for(self, path: str) -> MetadataServer:
        index = zlib.crc32(path.encode("utf-8")) % len(self.metadata_servers)
        return self.metadata_servers[index]
