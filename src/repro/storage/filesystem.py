"""Parallel file system base: files, handles, create/open/write/close paths.

All I/O entry points are generator *processes* (run with
``machine.sim.process(...)`` or delegated with ``yield from``); they charge
metadata queueing, lock acquisition and bandwidth-shared data movement as
the paper's mechanisms dictate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.des.process import AllOf
from repro.errors import (
    FileExistsInFSError,
    FileNotFoundInFSError,
    StorageError,
)
from repro.storage.disk import StorageTarget, TargetSpec
from repro.storage.locks import ExtentLockManager
from repro.storage.metadata import MetadataServer, MetadataSpec
from repro.storage.striping import StripeLayout, pick_targets
from repro.units import MiB

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.machine import Machine
    from repro.cluster.node import SMPNode

__all__ = ["SimFile", "FileHandle", "ParallelFileSystem"]


@dataclass
class SimFile:
    """A file known to the file system."""

    file_id: int
    path: str
    layout: StripeLayout
    size: int = 0
    open_handles: int = 0

    @property
    def shared(self) -> bool:
        """More than one handle open — lock conflicts become possible."""
        return self.open_handles > 1


@dataclass
class FileHandle:
    """An open file from the point of view of one client."""

    file: SimFile
    node: "SMPNode"
    owner: int
    closed: bool = False


class ParallelFileSystem:
    """Shared base of the Lustre/PVFS/GPFS models."""

    #: Human-readable name, overridden by subclasses.
    fs_type = "generic"

    def __init__(self, machine: "Machine", ntargets: int,
                 target_spec: Optional[TargetSpec] = None,
                 metadata_spec: Optional[MetadataSpec] = None,
                 n_metadata_servers: int = 1,
                 default_stripe_size: int = 1 * MiB,
                 default_stripe_count: int = 4,
                 lock_manager: Optional[ExtentLockManager] = None,
                 name: str = "fs") -> None:
        if ntargets < 1:
            raise StorageError(f"need >= 1 storage target, got {ntargets}")
        if n_metadata_servers < 1:
            raise StorageError("need >= 1 metadata server")
        self.machine = machine
        self.name = name
        self.targets: List[StorageTarget] = [
            StorageTarget(machine, f"{name}.t{i}",
                          target_spec or TargetSpec())
            for i in range(ntargets)
        ]
        self.metadata_servers: List[MetadataServer] = [
            MetadataServer(machine, f"{name}.mds{i}",
                           metadata_spec or MetadataSpec())
            for i in range(n_metadata_servers)
        ]
        self.default_stripe_size = default_stripe_size
        self.default_stripe_count = default_stripe_count
        self.locks = lock_manager
        self._files: Dict[str, SimFile] = {}
        self._next_file_id = 0
        self._next_first_target = 0
        self.bytes_written = 0.0
        self.files_created = 0

    # ------------------------------------------------------------------ #
    # metadata routing (overridden by subclasses)
    # ------------------------------------------------------------------ #
    def _mds_for(self, path: str) -> MetadataServer:
        """Which metadata server serves ``path`` (default: the single one)."""
        return self.metadata_servers[0]

    # ------------------------------------------------------------------ #
    # namespace operations
    # ------------------------------------------------------------------ #
    def exists(self, path: str) -> bool:
        return path in self._files

    def lookup(self, path: str) -> SimFile:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundInFSError(path) from None

    def create(self, node: "SMPNode", path: str,
               stripe_count: Optional[int] = None,
               stripe_size: Optional[int] = None):
        """Process: create + open ``path``; returns a :class:`FileHandle`."""
        yield from self._mds_for(path).operate("create")
        if path in self._files:
            raise FileExistsInFSError(path)
        count = stripe_count if stripe_count is not None \
            else self.default_stripe_count
        size = stripe_size if stripe_size is not None \
            else self.default_stripe_size
        targets = pick_targets(len(self.targets), count,
                               self._next_first_target)
        self._next_first_target = (self._next_first_target + count) \
            % len(self.targets)
        file = SimFile(self._next_file_id, path,
                       StripeLayout(size, targets))
        self._next_file_id += 1
        self._files[path] = file
        self.files_created += 1
        file.open_handles += 1
        return FileHandle(file, node, owner=node.index)

    def open(self, node: "SMPNode", path: str):
        """Process: open an existing file; returns a :class:`FileHandle`."""
        yield from self._mds_for(path).operate("open")
        file = self.lookup(path)
        file.open_handles += 1
        return FileHandle(file, node, owner=node.index)

    def close(self, handle: FileHandle):
        """Process: close a handle."""
        if handle.closed:
            raise StorageError(f"double close of {handle.file.path!r}")
        yield from self._mds_for(handle.file.path).operate("close")
        handle.closed = True
        handle.file.open_handles -= 1

    def unlink(self, path: str):
        """Process: remove a file from the namespace."""
        yield from self._mds_for(path).operate("stat")
        self.lookup(path)
        del self._files[path]

    # ------------------------------------------------------------------ #
    # data path
    # ------------------------------------------------------------------ #
    def write(self, handle: FileHandle, offset: int, nbytes: int,
              granularity: Optional[float] = None, label: str = "write"):
        """Process: write ``nbytes`` at ``offset`` through ``handle``.

        Splits the request over the file's stripes; per-target segments
        move concurrently and the write completes when the slowest segment
        lands. Shared files pay lock acquisition first. ``granularity``
        is the contiguous access size the storage servers observe
        (defaults to the per-target segment size; smaller for strided or
        data-sieved writes).
        """
        if handle.closed:
            raise StorageError(f"write on closed handle {handle.file.path!r}")
        if nbytes <= 0:
            return 0
        sim = self.machine.sim
        started = sim.now
        file = handle.file
        segments = file.layout.split(offset, nbytes)
        if self.locks is not None and file.shared:
            if self.locks.expansive:
                yield from self.locks.acquire_expansive(
                    file.file_id, handle.owner, segments)
            else:
                full, partial = self._classify_stripes(file.layout, offset,
                                                       nbytes)
                yield from self.locks.acquire(file.file_id, handle.owner,
                                              full, partial)
        transfers = [
            self.machine.sim.process(
                self.targets[t].write_segment(handle.node, seg_bytes,
                                              file_id=file.file_id,
                                              granularity=granularity,
                                              label=label))
            for t, seg_bytes in segments.items()
        ]
        if len(transfers) == 1:
            yield transfers[0]
        else:
            yield AllOf(self.machine.sim, transfers)
        file.size = max(file.size, offset + nbytes)
        self.bytes_written += nbytes
        tracer = sim.tracer
        if tracer.enabled:
            tracer.record_span(
                "fs_write", label, f"node{handle.node.index}/fs",
                started, sim.now, path=file.path, nbytes=int(nbytes),
                owner=handle.owner, shared=file.shared,
                **file.layout.trace_attrs(offset, nbytes))
        return nbytes

    @staticmethod
    def _classify_stripes(layout: StripeLayout, offset: int, nbytes: int):
        """Split a request's stripes into fully-covered stripe numbers and
        (stripe, flush bytes) pairs for the ragged boundary stripes.

        A revoked boundary-stripe lock forces the previous holder to flush
        its dirty data for that stripe — up to a whole stripe. This is why
        oversized stripes (the paper's 32 MB experiment) hurt shared-file
        writes: every revocation flushes stripe_size bytes serially."""
        end = offset + nbytes
        size = layout.stripe_size
        first = offset // size
        last = (end - 1) // size
        partial: List = []
        full_start, full_end = first, last + 1
        if offset % size:
            partial.append((first, size))
            full_start = first + 1
        if end % size and last >= full_start:
            partial.append((last, size))
            full_end = last
        return range(full_start, max(full_start, full_end)), partial

    def read(self, handle: FileHandle, offset: int, nbytes: int,
             label: str = "read"):
        """Process: read ``nbytes`` at ``offset`` (for analysis workloads)."""
        if handle.closed:
            raise StorageError(f"read on closed handle {handle.file.path!r}")
        if nbytes <= 0:
            return 0
        segments = handle.file.layout.split(offset, nbytes)
        transfers = [
            self.machine.sim.process(
                self.targets[t].read_segment(handle.node, seg_bytes,
                                             file_id=handle.file.file_id,
                                             label=label))
            for t, seg_bytes in segments.items()
        ]
        yield AllOf(self.machine.sim, transfers)
        return nbytes

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    @property
    def file_count(self) -> int:
        return len(self._files)

    def target_balance(self) -> List[float]:
        """Bytes written per target (to inspect striping balance)."""
        return [t.bytes_written for t in self.targets]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} {self.name!r} "
                f"targets={len(self.targets)} files={self.file_count}>")
