"""Stripe layout: mapping file byte ranges onto storage targets.

A file is striped round-robin over ``stripe_count`` targets in units of
``stripe_size`` bytes, starting from a per-file first target (as Lustre
does). :meth:`StripeLayout.split` turns a ``(offset, nbytes)`` request into
per-target segment sizes — the unit of work handed to the flow network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import StorageError
from repro.units import MiB

__all__ = ["StripeLayout"]


@dataclass(frozen=True)
class StripeLayout:
    """Striping of one file over a fixed list of target indices."""

    stripe_size: int
    targets: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.stripe_size < 1:
            raise StorageError(f"stripe_size must be >= 1, got {self.stripe_size}")
        if not self.targets:
            raise StorageError("a stripe layout needs at least one target")

    @property
    def stripe_count(self) -> int:
        return len(self.targets)

    def target_of(self, offset: int) -> int:
        """Target index storing the byte at ``offset``."""
        if offset < 0:
            raise StorageError(f"negative offset: {offset}")
        stripe = offset // self.stripe_size
        return self.targets[stripe % self.stripe_count]

    def stripe_of(self, offset: int) -> int:
        """Global stripe number containing ``offset``."""
        if offset < 0:
            raise StorageError(f"negative offset: {offset}")
        return offset // self.stripe_size

    def split(self, offset: int, nbytes: int) -> Dict[int, int]:
        """Per-target byte counts for a request of ``nbytes`` at ``offset``.

        Returns a dict ``target index -> bytes`` (only touched targets).
        """
        if nbytes < 0:
            raise StorageError(f"negative request size: {nbytes}")
        out: Dict[int, int] = {}
        if nbytes == 0:
            return out
        end = offset + nbytes
        count = self.stripe_count
        size = self.stripe_size
        first_stripe = offset // size
        last_stripe = (end - 1) // size
        nstripes = last_stripe - first_stripe + 1

        if nstripes >= 2 * count:
            # Bulk case: whole cycles contribute equally; handle the ragged
            # head and tail stripes explicitly.
            head_end = (first_stripe + 1) * size
            head = head_end - offset
            tail_start = last_stripe * size
            tail = end - tail_start
            out[self.targets[first_stripe % count]] = head
            full_stripes = last_stripe - first_stripe - 1
            per_cycle, extra = divmod(full_stripes, count)
            for k in range(count):
                target = self.targets[(first_stripe + 1 + k) % count]
                share = per_cycle * size + (size if k < extra else 0)
                if share:
                    out[target] = out.get(target, 0) + share
            last_target = self.targets[last_stripe % count]
            out[last_target] = out.get(last_target, 0) + tail
        else:
            position = offset
            while position < end:
                stripe = position // size
                stripe_end = min((stripe + 1) * size, end)
                target = self.targets[stripe % count]
                out[target] = out.get(target, 0) + (stripe_end - position)
                position = stripe_end
        return out

    def trace_attrs(self, offset: int, nbytes: int) -> Dict[str, int]:
        """Striping facts attached to a request's ``fs_write`` span."""
        return {
            "stripe_size": self.stripe_size,
            "stripe_count": self.stripe_count,
            "stripes": len(self.stripes_touched(offset, nbytes)),
            "targets": len(self.split(offset, nbytes)),
        }

    def uses_target(self, target: int) -> bool:
        """Whether this layout ever places data on ``target``.

        Fault injection uses this for affected-file accounting: an OST
        brownout or loss only degrades files whose layout includes one
        of the faulted targets.
        """
        return target in self.targets

    def stripes_touched(self, offset: int, nbytes: int) -> range:
        """Global stripe numbers covered by the request (for lock managers)."""
        if nbytes <= 0:
            return range(0)
        first = offset // self.stripe_size
        last = (offset + nbytes - 1) // self.stripe_size
        return range(first, last + 1)


def pick_targets(ntargets: int, stripe_count: int,
                 first: int) -> Tuple[int, ...]:
    """Choose ``stripe_count`` target indices starting at ``first`` (wrapping),
    the way Lustre allocates OSTs for a new file."""
    if ntargets < 1:
        raise StorageError("no storage targets available")
    stripe_count = max(1, min(stripe_count, ntargets))
    return tuple((first + k) % ntargets for k in range(stripe_count))
