"""Storage target (data server / OST / NSD) service model.

Each target is a :class:`~repro.des.bandwidth.LinkCapacity` with service
effects layered on top:

- **object concurrency degradation** — a disk-backed target writing many
  *distinct files* at once thrashes (seeks, cache dilution). Efficiency
  is ``1 / (1 + (n_objects-1 / object_half)^object_exp)``, floored at
  ``min_efficiency``. This is why file-per-process collapses at scale
  while Damaris' one-file-per-node stays near peak ("reducing the number
  of writers allows data servers to optimize disk accesses and caching").
- **stream concurrency degradation** — per-connection overhead: many
  concurrent client streams cost efficiency even inside one file (gentler
  curve; dominant on network-bound PVFS servers, mild on Lustre OSTs).
- **per-request efficiency** — a request with access granularity ``g``
  is capped at ``stream_peak · g / (g + request_overhead_bytes)``: small
  or finely-strided requests never reach streaming bandwidth.
- **stragglers** — each request's cap is further multiplied by a
  lognormal slowdown; the heavy tail makes the *max* write time diverge
  from the mean at scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.des.bandwidth import Flow, LinkCapacity
from repro.errors import StorageError
from repro.units import KiB, MiB

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.machine import Machine
    from repro.cluster.node import SMPNode

__all__ = ["TargetSpec", "StorageTarget"]


@dataclass
class TargetSpec:
    """Tunable service parameters of one storage target."""

    #: Peak sequential bandwidth of the target, bytes/s.
    peak_bandwidth: float = 90e6
    #: Peak bandwidth achievable by a single stream, bytes/s.
    stream_peak: float = 90e6
    #: Distinct concurrent file objects at which efficiency halves.
    object_half: float = 20.0
    #: Shape of the object-concurrency curve.
    object_exp: float = 1.0
    #: Concurrent streams at which efficiency halves (gentle by default).
    stream_half: float = 1500.0
    #: Shape of the stream-concurrency curve.
    stream_exp: float = 1.0
    #: Floor on the combined concurrency-degraded efficiency.
    min_efficiency: float = 0.02
    #: Access granularity at which per-request efficiency reaches 50 %.
    request_overhead_bytes: float = 256 * KiB
    #: Lognormal sigma of the per-request straggler factor.
    straggler_sigma: float = 0.3
    #: Fixed per-request service latency, seconds.
    request_latency: float = 2e-3
    #: Requests in service concurrently; the rest wait FIFO. This is what
    #: spreads per-rank write times (the paper's "fastest <1 s, slowest
    #: >25 s"): early requests run at a large bandwidth share, late ones
    #: queue behind everyone. 0 disables queueing (pure fair sharing).
    queue_depth: int = 16

    def __post_init__(self) -> None:
        if self.peak_bandwidth <= 0 or self.stream_peak <= 0:
            raise StorageError("bandwidths must be > 0")
        if not 0 < self.min_efficiency <= 1:
            raise StorageError(
                f"min_efficiency must be in (0,1], got {self.min_efficiency}")
        if self.object_half <= 0 or self.stream_half <= 0:
            raise StorageError("concurrency half-points must be > 0")
        if self.straggler_sigma < 0:
            raise StorageError("straggler_sigma must be >= 0")
        if self.queue_depth < 0:
            raise StorageError("queue_depth must be >= 0")


class StorageTarget:
    """One data server; owns a flow-network capacity that degrades with load."""

    def __init__(self, machine: "Machine", name: str, spec: TargetSpec) -> None:
        self.machine = machine
        self.name = name
        self.spec = spec
        self.link: LinkCapacity = machine.flows.add_capacity(
            name, spec.peak_bandwidth)
        self.active_streams = 0
        self._active_objects: Dict[int, int] = {}
        self.bytes_written = 0.0
        self.requests_served = 0
        self._stream = machine.streams.stream(f"straggler.{name}")
        from repro.des.resources import Resource
        self._service_slots = (
            Resource(machine.sim, capacity=spec.queue_depth)
            if spec.queue_depth > 0 else None)
        #: External capacity modulation (cross-application interference).
        self.interference_factor = 1.0
        #: Fault-injection capacity modulation (OST brownout windows,
        #: :mod:`repro.faults`); composes with interference. 1.0 is the
        #: healthy value and multiplies out exactly (IEEE ×1.0), so an
        #: un-faulted run is bit-identical to one without the hook.
        self.fault_factor = 1.0
        self._applied_capacity = spec.peak_bandwidth
        #: Relative capacity change below which updates are skipped (a
        #: ±1-stream wiggle among hundreds must not trigger a global
        #: share recomputation).
        self.update_threshold = 0.03

    # ------------------------------------------------------------------ #
    # service model
    # ------------------------------------------------------------------ #
    def efficiency(self, nobjects: int, nstreams: int) -> float:
        """Combined concurrency-degraded fraction of peak bandwidth."""
        spec = self.spec
        eff = 1.0
        if nobjects > 1:
            eff /= 1.0 + ((nobjects - 1) / spec.object_half) ** spec.object_exp
        if nstreams > 1:
            eff /= 1.0 + ((nstreams - 1) / spec.stream_half) ** spec.stream_exp
        return max(eff, spec.min_efficiency)

    def request_rate_cap(self, granularity: float) -> float:
        """Per-stream rate cap for an access granularity (before straggler)."""
        spec = self.spec
        if granularity <= 0:
            return spec.stream_peak
        size_eff = granularity / (granularity + spec.request_overhead_bytes)
        return spec.stream_peak * size_eff

    def straggler_factor(self) -> float:
        """Multiplicative slowdown (median 1) for one request."""
        sigma = self.spec.straggler_sigma
        if sigma == 0:
            return 1.0
        return 1.0 / float(self._stream.lognormal(mean=0.0, sigma=sigma))

    def set_interference(self, factor: float) -> None:
        """Scale capacity by an external load factor in (0, 1]."""
        if not 0 < factor <= 1:
            raise StorageError(f"interference factor must be in (0,1], "
                               f"got {factor}")
        self.interference_factor = factor
        self._update_capacity()

    def set_fault_factor(self, factor: float) -> None:
        """Scale capacity by a fault-injection factor in (0, 1].

        Unlike ordinary load wiggles, a brownout edge must take effect
        immediately, so the update bypasses ``update_threshold``.
        """
        if not 0 < factor <= 1:
            raise StorageError(f"fault factor must be in (0,1], "
                               f"got {factor}")
        self.fault_factor = factor
        self._update_capacity(force=True)

    def _update_capacity(self, force: bool = False) -> None:
        eff = self.efficiency(len(self._active_objects), self.active_streams)
        capacity = max(
            self.spec.peak_bandwidth * eff * self.interference_factor
            * self.fault_factor, 1.0)
        if not force and abs(capacity - self._applied_capacity) \
                <= self.update_threshold * self._applied_capacity:
            return
        self._applied_capacity = capacity
        self.link.set_capacity(capacity)

    # ------------------------------------------------------------------ #
    # I/O entry points
    # ------------------------------------------------------------------ #
    def write_segment(self, source: "SMPNode", nbytes: float,
                      file_id: int = -1,
                      granularity: Optional[float] = None,
                      label: str = "write"):
        """Process: move ``nbytes`` from ``source`` into this target.

        ``file_id`` feeds the object-concurrency model; ``granularity``
        is the contiguous access size (defaults to the whole segment).
        """
        spec = self.spec
        sim = self.machine.sim
        started = sim.now
        if spec.request_latency > 0:
            yield sim.timeout(spec.request_latency)
        self._enter(file_id)
        slot = None
        try:
            if self._service_slots is not None:
                slot = self._service_slots.request()
                yield slot
            grain = granularity if granularity is not None else nbytes
            cap = self.request_rate_cap(grain) * self.straggler_factor()
            path = self.machine.path_to_storage(source, self.link)
            flow = self.machine.flows.transfer(
                path, nbytes, rate_cap=max(cap, 1.0),
                label=f"{self.name}.{label}")
            yield flow.event
        finally:
            if slot is not None:
                self._service_slots.release(slot)
            self._leave(file_id)
            self.bytes_written += nbytes
            self.requests_served += 1
            tracer = sim.tracer
            if tracer.enabled:
                tracer.record_span(
                    "net_transfer", label, f"storage/{self.name}",
                    started, sim.now, target=self.name,
                    nbytes=int(nbytes), file_id=file_id,
                    source=f"node{source.index}")

    def read_segment(self, dest: "SMPNode", nbytes: float,
                     file_id: int = -1, label: str = "read"):
        """Process: move ``nbytes`` from this target to ``dest``."""
        spec = self.spec
        sim = self.machine.sim
        started = sim.now
        if spec.request_latency > 0:
            yield sim.timeout(spec.request_latency)
        self._enter(file_id)
        slot = None
        try:
            if self._service_slots is not None:
                slot = self._service_slots.request()
                yield slot
            cap = self.request_rate_cap(nbytes) * self.straggler_factor()
            path = [self.link, dest.nic_rx]
            if self.machine.fabric is not None:
                path.insert(1, self.machine.fabric)
            flow = self.machine.flows.transfer(
                path, nbytes, rate_cap=max(cap, 1.0),
                label=f"{self.name}.{label}")
            yield flow.event
        finally:
            if slot is not None:
                self._service_slots.release(slot)
            self._leave(file_id)
            tracer = sim.tracer
            if tracer.enabled:
                tracer.record_span(
                    "net_transfer", label, f"storage/{self.name}",
                    started, sim.now, target=self.name,
                    nbytes=int(nbytes), file_id=file_id,
                    source=f"node{dest.index}", direction="read")

    def _enter(self, file_id: int) -> None:
        self.active_streams += 1
        self._active_objects[file_id] = \
            self._active_objects.get(file_id, 0) + 1
        self._update_capacity()

    def _leave(self, file_id: int) -> None:
        self.active_streams -= 1
        remaining = self._active_objects.get(file_id, 0) - 1
        if remaining <= 0:
            self._active_objects.pop(file_id, None)
        else:
            self._active_objects[file_id] = remaining
        self._update_capacity()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<StorageTarget {self.name} streams={self.active_streams} "
                f"objects={len(self._active_objects)}>")
