"""Lustre-like file system: single MDS, OST striping, extent locks.

The two Lustre behaviours the paper leans on:

- a **single metadata server** — file-per-process create storms serialise
  behind one queue ("simultaneous creations of so many files are
  serialized, which leads to immense I/O variability");
- **extent locks** on shared files — collective writes to one file conflict
  at stripe granularity, and oversized stripes (the 32 MB experiment)
  multiply conflicts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.storage.disk import TargetSpec
from repro.storage.filesystem import ParallelFileSystem
from repro.storage.locks import ExtentLockManager
from repro.storage.metadata import MetadataSpec
from repro.units import MiB

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.machine import Machine

__all__ = ["Lustre"]


class Lustre(ParallelFileSystem):
    """Lustre model: one MDS, many OSTs, stripe-extent write locks."""

    fs_type = "lustre"

    def __init__(self, machine: "Machine", ntargets: int = 336,
                 target_spec: Optional[TargetSpec] = None,
                 metadata_spec: Optional[MetadataSpec] = None,
                 default_stripe_size: int = 1 * MiB,
                 default_stripe_count: int = 4,
                 revoke_latency: float = 1.5e-3,
                 name: str = "lustre") -> None:
        super().__init__(
            machine,
            ntargets=ntargets,
            target_spec=target_spec,
            metadata_spec=metadata_spec,
            n_metadata_servers=1,  # the defining Lustre bottleneck
            default_stripe_size=default_stripe_size,
            default_stripe_count=default_stripe_count,
            # Stripe-granular extent locks with whole-stripe revocation
            # flushes. (An optional "expansive" per-object grant mode is
            # available on ExtentLockManager; it raises total lock traffic
            # but — like the stripe-granular model — cannot by itself
            # reproduce the paper's full 2x 32 MB-stripe slowdown, whose
            # convoy dynamics sit below this model's granularity.)
            lock_manager=ExtentLockManager(machine,
                                           revoke_latency=revoke_latency),
            name=name,
        )
