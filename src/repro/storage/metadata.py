"""Metadata server queueing model.

File creates/opens/closes are served by a FIFO queue with per-operation
service times and a lognormal tail. A *single* metadata server (Lustre)
turns an N-process file-per-process create storm into an O(N) serialised
queue — the paper's primary explanation for FPP variability on Kraken.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict

from repro.des.resources import Resource
from repro.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.machine import Machine

__all__ = ["MetadataSpec", "MetadataServer"]


@dataclass
class MetadataSpec:
    """Service times (seconds) per metadata operation type."""

    create: float = 1.5e-3
    open: float = 0.4e-3
    close: float = 0.3e-3
    stat: float = 0.2e-3
    #: Lognormal sigma of per-op service-time jitter.
    sigma: float = 0.25
    #: Concurrent operations the server can process (service parallelism).
    concurrency: int = 4

    def service_time(self, op: str) -> float:
        try:
            return {"create": self.create, "open": self.open,
                    "close": self.close, "stat": self.stat}[op]
        except KeyError:
            raise StorageError(f"unknown metadata operation {op!r}") from None


class MetadataServer:
    """One metadata server: a bounded-concurrency queue of timed operations."""

    def __init__(self, machine: "Machine", name: str,
                 spec: MetadataSpec) -> None:
        if spec.concurrency < 1:
            raise StorageError("metadata concurrency must be >= 1")
        self.machine = machine
        self.name = name
        self.spec = spec
        self._queue = Resource(machine.sim, capacity=spec.concurrency)
        self._stream = machine.streams.stream(f"mds.{name}")
        self.ops_served: Dict[str, int] = {}
        self.busy_time = 0.0
        #: Fault-injection service-time multiplier (>= 1; MDS brownout
        #: windows, :mod:`repro.faults`). 1.0 multiplies out exactly, so
        #: un-faulted runs are unchanged.
        self.slowdown = 1.0

    @property
    def queue_length(self) -> int:
        return self._queue.queue_length

    def operate(self, op: str):
        """Process: perform one metadata operation (queue + service time)."""
        base = self.spec.service_time(op)
        sim = self.machine.sim
        started = sim.now
        req = self._queue.request()
        try:
            yield req
            jitter = (float(self._stream.lognormal(0.0, self.spec.sigma))
                      if self.spec.sigma > 0 else 1.0)
            service = base * jitter * self.slowdown
            yield sim.timeout(service)
            self.busy_time += service
            self.ops_served[op] = self.ops_served.get(op, 0) + 1
        finally:
            self._queue.release(req)
            tracer = sim.tracer
            if tracer.enabled:
                # Queueing delay is (span duration - service): the MDS
                # storm signature file-per-process produces at scale.
                tracer.record_span(
                    "metadata_op", op, f"storage/{self.name}",
                    started, sim.now, server=self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<MetadataServer {self.name} queue={self.queue_length} "
                f"ops={sum(self.ops_served.values())}>")
