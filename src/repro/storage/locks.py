"""Extent/byte-range lock manager for shared-file writes.

Lustre grants extent locks per (file, target); GPFS hands out byte-range
tokens. In both, two clients writing *inside the same stripe* of a shared
file conflict: the lock is revoked from the previous holder (a network
round-trip) and, for stripes only partially covered by a request (the
ragged first/last stripe of an unaligned region), the conflicting
partial-stripe data must flush serially — writers take turns on the
boundary stripe.

The model therefore distinguishes:

- **full stripes** whose previous holder differs: one ``revoke_latency``
  each, charged as a batched delay (extent split, no data serialisation);
- **partial (boundary) stripes** under concurrent writers: an exclusive
  per-stripe slot held for the flush of that stripe's overlap — this is
  what makes oversized stripes (the paper's 32 MB experiment) expensive,
  because the serialized flush grows with the stripe size.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence, Tuple

from repro.des.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.machine import Machine

__all__ = ["ExtentLockManager"]


class ExtentLockManager:
    """Per-file stripe-granular write locks with revocation cost."""

    def __init__(self, machine: "Machine", revoke_latency: float = 1.5e-3,
                 flush_bandwidth: float = 60e6,
                 expansive: bool = False) -> None:
        self.machine = machine
        self.revoke_latency = revoke_latency
        #: Rate at which a conflicted boundary stripe's data flushes.
        self.flush_bandwidth = flush_bandwidth
        #: Lustre-style expansive grants: a writer's extent lock on an OST
        #: object covers (far) more than it wrote, so the *next* writer to
        #: the same object conflicts and forces a serialised dirty flush.
        self.expansive = expansive
        #: (file id, stripe) -> owner id of the last writer.
        self._holders: Dict[Tuple[int, int], int] = {}
        #: (file id, stripe) -> boundary-flush serialisation point.
        self._stripe_slots: Dict[Tuple[int, int], Resource] = {}
        #: (file id, target) -> (owner, dirty bytes of the last write).
        self._object_holders: Dict[Tuple[int, int], Tuple[int, float]] = {}
        #: (file id, target) -> flush serialisation point.
        self._object_slots: Dict[Tuple[int, int], Resource] = {}
        self.revocations = 0
        self.acquisitions = 0
        self.boundary_waits = 0
        #: Fault injection (:mod:`repro.faults`): while > 0, every
        #: acquisition behaves as if a competing job holds the locks —
        #: this many forced revocation round-trips are charged on top of
        #: the genuine conflicts. 0 (the healthy value) adds nothing.
        self.storm_revokes = 0

    def acquire(self, file_id: int, owner: int,
                full_stripes: Iterable[int],
                partial_stripes: Sequence[Tuple[int, int]] = ()):
        """Process: take write locks for one request.

        ``full_stripes`` — stripe numbers fully covered by the request;
        ``partial_stripes`` — (stripe number, overlap bytes) for the ragged
        boundary stripes. Returns ``None`` (all costs are charged inline;
        nothing is held after acquire returns — boundary serialisation is
        resolved here, matching Lustre's revoke-then-grant behaviour).
        """
        sim = self.machine.sim
        tracer = sim.tracer
        revokes = self.storm_revokes
        for stripe in full_stripes:
            key = (file_id, stripe)
            self.acquisitions += 1
            previous = self._holders.get(key)
            if previous is not None and previous != owner:
                revokes += 1
            self._holders[key] = owner

        for stripe, overlap_bytes in partial_stripes:
            key = (file_id, stripe)
            self.acquisitions += 1
            previous = self._holders.get(key)
            self._holders[key] = owner
            if previous is None or previous == owner:
                continue
            revokes += 1
            # Serial flush of the contested boundary stripe.
            slot = self._stripe_slots.get(key)
            if slot is None:
                slot = self._stripe_slots[key] = Resource(sim, capacity=1)
            flush_started = sim.now
            request = slot.request()
            yield request
            self.boundary_waits += 1
            try:
                yield sim.timeout(overlap_bytes / self.flush_bandwidth)
            finally:
                slot.release(request)
                if tracer.enabled:
                    tracer.record_span(
                        "stripe_flush", f"stripe{stripe}",
                        f"locks/file{file_id}", flush_started, sim.now,
                        file_id=file_id, stripe=stripe,
                        nbytes=int(overlap_bytes), owner=owner,
                        previous=previous)

        if revokes:
            self.revocations += revokes
            if tracer.enabled:
                tracer.record_event(
                    "lock_revoke", f"file{file_id}",
                    f"locks/file{file_id}", file_id=file_id,
                    owner=owner, revokes=revokes)
            yield sim.timeout(self.revoke_latency * revokes)

    def acquire_expansive(self, file_id: int, owner: int,
                          target_bytes: Dict[int, float]):
        """Process: per-OST-object extent locks with expansive grants.

        ``target_bytes`` maps storage-target index → bytes this request
        writes there. For each object whose previous holder differs, the
        previous holder's dirty data flushes serially before this writer
        may proceed (one revocation round-trip plus the flush)."""
        sim = self.machine.sim
        tracer = sim.tracer
        if self.storm_revokes and target_bytes:
            # Revocation storm: a competing job's locks cover every
            # object this request touches.
            self.revocations += self.storm_revokes
            if tracer.enabled:
                tracer.record_event(
                    "lock_revoke", f"file{file_id}/storm",
                    f"locks/file{file_id}", file_id=file_id,
                    owner=owner, revokes=self.storm_revokes, storm=True)
            yield sim.timeout(self.revoke_latency * self.storm_revokes)
        for target, nbytes in target_bytes.items():
            key = (file_id, target)
            self.acquisitions += 1
            previous = self._object_holders.get(key)
            self._object_holders[key] = (owner, float(nbytes))
            if previous is None or previous[0] == owner:
                continue
            self.revocations += 1
            if tracer.enabled:
                tracer.record_event(
                    "lock_revoke", f"file{file_id}/t{target}",
                    f"locks/file{file_id}", file_id=file_id,
                    target=target, owner=owner, previous=previous[0])
            slot = self._object_slots.get(key)
            if slot is None:
                slot = self._object_slots[key] = Resource(sim, capacity=1)
            flush_started = sim.now
            request = slot.request()
            yield request
            self.boundary_waits += 1
            try:
                yield sim.timeout(
                    self.revoke_latency
                    + previous[1] / self.flush_bandwidth)
            finally:
                slot.release(request)
                if tracer.enabled:
                    tracer.record_span(
                        "stripe_flush", f"object{target}",
                        f"locks/file{file_id}", flush_started, sim.now,
                        file_id=file_id, target=target,
                        nbytes=int(previous[1]), owner=owner,
                        previous=previous[0])

    def contended_stripes(self) -> int:
        return len(self._stripe_slots)
