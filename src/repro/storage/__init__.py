"""Parallel file system models (Lustre-, PVFS- and GPFS-like).

A :class:`~repro.storage.filesystem.ParallelFileSystem` owns a set of
:class:`~repro.storage.disk.StorageTarget` data servers (whose bandwidth is
shared through the machine's flow network and degrades with stream
concurrency), one or more :class:`~repro.storage.metadata.MetadataServer`
queues, a :class:`~repro.storage.striping.StripeLayout` policy and an
optional :class:`~repro.storage.locks.ExtentLockManager`.

The three concrete file systems differ exactly where the paper says they
do (Section I/II): Lustre has a single metadata server (create storms
serialise) and extent locks on shared files; PVFS distributes metadata and
does no client locking; GPFS uses byte-range lock tokens and a small
number of NSD servers.
"""

from repro.storage.disk import StorageTarget, TargetSpec
from repro.storage.filesystem import FileHandle, ParallelFileSystem, SimFile
from repro.storage.gpfs import GPFS
from repro.storage.locks import ExtentLockManager
from repro.storage.lustre import Lustre
from repro.storage.metadata import MetadataServer, MetadataSpec
from repro.storage.pvfs import PVFS
from repro.storage.striping import StripeLayout

__all__ = [
    "ExtentLockManager",
    "FileHandle",
    "GPFS",
    "Lustre",
    "MetadataServer",
    "MetadataSpec",
    "PVFS",
    "ParallelFileSystem",
    "SimFile",
    "StorageTarget",
    "StripeLayout",
    "TargetSpec",
]
