"""Trace aggregation: per-actor / per-target tables and overlap analysis.

Turns a recorded :class:`~repro.observe.tracer.Tracer` into the aligned
text tables of :mod:`repro.experiments.report`, and provides the interval
arithmetic the figure drivers use to *structurally* validate the paper's
overlap claim: Damaris' ``persist`` spans must overlap later
``write_phase``/compute activity instead of extending the phases.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.observe.tracer import Span, Tracer

__all__ = [
    "aggregate_spans",
    "backend_table",
    "per_actor_table",
    "per_category_table",
    "per_target_table",
    "merge_intervals",
    "overlap_seconds",
    "sched_table",
    "solver_table",
    "render_summary",
]


def aggregate_spans(spans: Iterable[Span],
                    key=lambda span: span.actor,
                    key_column: str = "actor") -> List[Dict[str, object]]:
    """Group spans by ``key`` and summarise count/time/bytes per group."""
    groups: Dict[object, List[Span]] = {}
    for span in spans:
        groups.setdefault(key(span), []).append(span)
    rows = []
    for group_key in sorted(groups, key=str):
        members = groups[group_key]
        durations = [span.duration for span in members]
        nbytes = sum(int(span.attrs.get("nbytes", 0)) for span in members)
        rows.append({
            key_column: group_key,
            "count": len(members),
            "total_s": sum(durations),
            "mean_s": sum(durations) / len(durations),
            "max_s": max(durations),
            "bytes": nbytes,
        })
    return rows


def per_actor_table(tracer: Tracer,
                    category: Optional[str] = None) -> List[Dict[str, object]]:
    """One row per actor (optionally restricted to one span category)."""
    spans = tracer.spans if category is None else tracer.spans_in(category)
    return aggregate_spans(spans)


def per_category_table(tracer: Tracer) -> List[Dict[str, object]]:
    return aggregate_spans(tracer.spans, key=lambda span: span.category,
                           key_column="category")


def per_target_table(tracer: Tracer) -> List[Dict[str, object]]:
    """One row per storage target, from ``net_transfer`` span attrs."""
    spans = [span for span in tracer.spans_in("net_transfer")
             if "target" in span.attrs]
    return aggregate_spans(spans, key=lambda span: span.attrs["target"],
                           key_column="target")


def solver_table(tracer: Tracer) -> List[Dict[str, object]]:
    """One row per bandwidth network with its final solver counters.

    The :class:`~repro.des.bandwidth.FlowNetwork` records a ``solver``
    event after every recomputation whose attributes are *cumulative*
    counters, so the last event per actor is the run total: how many
    recomputations hit the full water-filling solve, how many were
    component-partitioned, and how many were absorbed by the
    incremental-arrival fast path.
    """
    last: Dict[str, object] = {}
    for event in tracer.events_in("solver"):
        last[event.actor] = event
    rows = []
    for actor in sorted(last):
        event = last[actor]
        attrs = event.attrs
        row = {
            "actor": actor,
            "solver": attrs.get("solver", "?"),
            # Traces recorded before the compiled kernel existed carry
            # no kernel attrs; report them as the only mode that existed.
            "kernel": attrs.get("kernel", "python"),
            "recomputes": int(attrs.get("recomputes", 0)),
            "full": int(attrs.get("full_solves", 0)),
            "component": int(attrs.get("component_solves", 0)),
            "fast": int(attrs.get("fast_grants", 0)),
            "flows_solved": int(attrs.get("flows_solved", 0)),
            "kernel_solves": int(attrs.get("kernel_solves", 0)),
            "live_comps": int(attrs.get("live", 0)),
        }
        if "shards" in attrs:
            # Sharded-solver traces carry the partition counters; other
            # solvers never emit them, so their tables keep the narrow
            # column set older fixtures were rendered with.
            row.update({
                "shards": int(attrs.get("shards", 0)),
                "shard_solves": int(attrs.get("shard_solves", 0)),
                "cut_bytes": float(attrs.get("shard_cut_bytes", 0.0)),
                "imbalance": float(attrs.get("shard_imbalance", 0.0)),
                "reconcile_iters": int(
                    attrs.get("shard_reconcile_iters", 0)),
            })
        rows.append(row)
    return rows


def sched_table(tracer: Tracer) -> List[Dict[str, object]]:
    """One row per simulator with its final scheduler counters.

    The :class:`~repro.des.core.Simulator` records a ``sched`` event on
    every calendar-queue window move/resize whose attributes are the
    scheduler's *cumulative* stats, so the last event per actor shows
    how the bucket window behaved over the whole run (a heap-scheduler
    run records no ``sched`` events and yields no rows).
    """
    last: Dict[str, object] = {}
    for event in tracer.events_in("sched"):
        last[event.actor] = event
    rows = []
    for actor in sorted(last):
        event = last[actor]
        attrs = event.attrs
        rows.append({
            "actor": actor,
            "scheduler": attrs.get("scheduler", "?"),
            "resizes": int(attrs.get("resizes", 0)),
            "migrations": int(attrs.get("migrations", 0)),
            "buckets": int(attrs.get("buckets", 0)),
            "width_s": float(attrs.get("width", 0.0)),
            "max_pending": int(attrs.get("max_pending", 0)),
        })
    return rows


def backend_table(tracer: Tracer) -> List[Dict[str, object]]:
    """One row per sweep backend with its summed dispatch counters.

    :func:`~repro.experiments.executor.run_sweep` records one
    ``backend`` event per traced sweep whose attributes are that
    sweep's totals; unlike solver/sched counters these are per-event
    (not cumulative per actor), so rows *sum* over a backend's events —
    ``requeued``/``speculative``/``discarded`` expose what the remote
    coordinator's crash recovery and straggler re-dispatch did.
    """
    groups: Dict[str, List[object]] = {}
    for event in tracer.events_in("backend"):
        groups.setdefault(event.actor, []).append(event)
    rows = []
    for actor in sorted(groups):
        events = groups[actor]
        row: Dict[str, object] = {"backend": actor,
                                  "sweeps": len(events)}
        for name in ("total", "hits", "computed", "dispatched",
                     "completed", "requeued", "speculative", "discarded",
                     "rejected", "crashed"):
            row[name] = int(sum(
                float(event.attrs.get(name, 0)) for event in events))
        workers = max(
            (int(float(event.attrs.get("workers", 0))) for event in events),
            default=0)
        row["workers"] = workers
        rows.append(row)
    return rows


# ---------------------------------------------------------------------- #
# interval arithmetic
# ---------------------------------------------------------------------- #
def merge_intervals(
        intervals: Iterable[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Union of intervals as a sorted, disjoint list."""
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(i for i in intervals if i[1] > i[0]):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def overlap_seconds(spans_a: Sequence[Span],
                    spans_b: Sequence[Span]) -> float:
    """Total time covered by both span sets (union ∩ union).

    ``overlap_seconds(persist_spans, write_phase_spans) > 0`` is the
    structural form of the paper's claim that the dedicated core writes
    *while* the compute cores run their next phase.
    """
    union_a = merge_intervals((s.start, s.end) for s in spans_a)
    union_b = merge_intervals((s.start, s.end) for s in spans_b)
    total = 0.0
    i = j = 0
    while i < len(union_a) and j < len(union_b):
        start = max(union_a[i][0], union_b[j][0])
        end = min(union_a[i][1], union_b[j][1])
        if end > start:
            total += end - start
        if union_a[i][1] <= union_b[j][1]:
            i += 1
        else:
            j += 1
    return total


# ---------------------------------------------------------------------- #
# rendering
# ---------------------------------------------------------------------- #
def render_summary(tracer: Tracer) -> str:
    """The tracereport CLI's default view: category, actor and target
    tables plus the persist-vs-write_phase overlap line."""
    # Imported here: experiments.harness itself imports repro.observe.
    from repro.experiments.report import render_table

    parts = ["== trace summary ==", ""]
    by_category = per_category_table(tracer)
    parts.append(render_table(by_category))
    by_actor = per_actor_table(tracer)
    if by_actor:
        parts += ["", "-- by actor --", render_table(by_actor)]
    by_target = per_target_table(tracer)
    if by_target:
        parts += ["", "-- by storage target --", render_table(by_target)]
    by_solver = solver_table(tracer)
    if by_solver:
        parts += ["", "-- bandwidth solver --", render_table(by_solver)]
    by_sched = sched_table(tracer)
    if by_sched:
        parts += ["", "-- event scheduler --", render_table(by_sched)]
    by_backend = backend_table(tracer)
    if by_backend:
        parts += ["", "-- sweep backend --", render_table(by_backend)]
    persists = tracer.spans_in("persist")
    phases = tracer.spans_in("write_phase")
    if persists and phases:
        overlap = overlap_seconds(persists, phases)
        busy = sum(s.duration for s in persists)
        parts += ["", f"persist/write_phase overlap: {overlap:.4g} s "
                      f"({100 * overlap / busy:.1f} % of persist time)"
                  if busy > 0 else ""]
    nerrors = len(tracer.events_in("error"))
    if nerrors:
        parts += ["", f"WARNING: {nerrors} error event(s) in trace"]
    return "\n".join(parts)
