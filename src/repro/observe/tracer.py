"""Structured tracing: typed spans and instant events on one timeline.

The paper's claims are *temporal* — jitter hidden from compute cores,
persistence overlapped with the next compute block — so end-of-run
aggregates (:mod:`repro.des.monitor`) cannot validate them. A
:class:`Tracer` records *when* things happened: typed spans (an interval
with a category, an actor and attributes) and instant events, against
either the simulated clock of a DES run or the wall clock of the real
threaded runtime, behind the same interface.

Design constraints:

- **opt-out-able**: every instrumentation site guards on
  ``tracer.enabled``; the shared :data:`NULL_TRACER` keeps the disabled
  hot path to one attribute load and one branch.
- **thread-safe**: the threaded runtime records from client threads and
  server threads concurrently; appends happen under a lock.
- **typed**: categories come from :data:`SPAN_CATEGORIES` /
  :data:`EVENT_CATEGORIES` so exporters and reports can rely on them.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ReproError

__all__ = [
    "SPAN_CATEGORIES",
    "EVENT_CATEGORIES",
    "Span",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
]

#: Interval categories (things with a duration).
SPAN_CATEGORIES = frozenset({
    "write_phase",   # one rank's barrier-delimited output phase
    "df_write",      # client-side write call (shm copy + notification)
    "df_signal",     # client-side signal call
    "persist",       # server-side write of one iteration to storage
    "compress",      # server-side compression of one iteration
    "stripe_flush",  # serialized flush of a contested boundary stripe
    "metadata_op",   # one metadata-server operation (create/open/...)
    "net_transfer",  # one data segment moving to a storage target
    "fs_write",      # one file-system write request (all its segments)
    "shm_stall",     # client blocked on a full shared buffer
    "fault",         # one injected fault's outage window
})

#: Instant categories (things that happen at a point in time).
EVENT_CATEGORIES = frozenset({
    "df_signal",     # signal enqueue (runtime side, effectively instant)
    "lock_revoke",   # an extent lock taken from its previous holder
    "queue_depth",   # event-queue depth sample
    "solver",        # bandwidth-solver counters after one recomputation
    "sched",         # event-scheduler resize (calendar-queue window move)
    "error",         # a recoverable anomaly (e.g. server poll timeout)
    "fault",         # fault injection/recovery instants (repro.faults)
    "backend",       # sweep-backend dispatch counters for one run_sweep
})


@dataclass
class Span:
    """One interval on the trace timeline."""

    category: str
    name: str
    #: Who did it — ``"pid/tid"`` (e.g. ``node0/rank3``); the part before
    #: the first slash becomes the Chrome trace process row.
    actor: str
    start: float
    end: float
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TraceEvent:
    """One instant on the trace timeline."""

    category: str
    name: str
    actor: str
    time: float
    attrs: Dict[str, object] = field(default_factory=dict)


class Tracer:
    """Collects spans and events against one clock.

    ``clock`` is a zero-argument callable returning seconds; pass
    ``lambda: sim.now`` for simulated time (see
    :meth:`repro.cluster.machine.Machine.attach_tracer`) or leave the
    default wall clock (monotonic, zeroed at tracer creation).
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 clock_name: str = "wall") -> None:
        if clock is None:
            t0 = time.perf_counter()
            clock = lambda: time.perf_counter() - t0  # noqa: E731
        self.clock = clock
        self.clock_name = clock_name
        self.spans: List[Span] = []
        self.events: List[TraceEvent] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def now(self) -> float:
        return self.clock()

    def record_span(self, category: str, name: str, actor: str,
                    start: float, end: float, **attrs) -> Span:
        if category not in SPAN_CATEGORIES:
            raise ReproError(
                f"unknown span category {category!r}; known categories: "
                f"{sorted(SPAN_CATEGORIES)}")
        span = Span(category, name, actor, start, end, attrs)
        with self._lock:
            self.spans.append(span)
        return span

    def record_event(self, category: str, name: str, actor: str,
                     time: Optional[float] = None, **attrs) -> TraceEvent:
        if category not in EVENT_CATEGORIES:
            raise ReproError(
                f"unknown event category {category!r}; known categories: "
                f"{sorted(EVENT_CATEGORIES)}")
        event = TraceEvent(category, name, actor,
                           self.clock() if time is None else time, attrs)
        with self._lock:
            self.events.append(event)
        return event

    def span(self, category: str, name: str, actor: str, **attrs):
        """Context manager recording one span around a ``with`` block."""
        return _SpanContext(self, category, name, actor, attrs)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def spans_in(self, category: str) -> List[Span]:
        with self._lock:
            return [s for s in self.spans if s.category == category]

    def events_in(self, category: str) -> List[TraceEvent]:
        with self._lock:
            return [e for e in self.events if e.category == category]

    def clear(self) -> None:
        with self._lock:
            self.spans = []
            self.events = []

    def __len__(self) -> int:
        with self._lock:
            return len(self.spans) + len(self.events)


class _SpanContext:
    """The ``with tracer.span(...)`` helper."""

    __slots__ = ("tracer", "category", "name", "actor", "attrs", "start")

    def __init__(self, tracer: Tracer, category: str, name: str,
                 actor: str, attrs: Dict[str, object]) -> None:
        self.tracer = tracer
        self.category = category
        self.name = name
        self.actor = actor
        self.attrs = attrs

    def __enter__(self) -> "_SpanContext":
        self.start = self.tracer.now()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.tracer.record_span(self.category, self.name, self.actor,
                                self.start, self.tracer.now(), **self.attrs)


class NullTracer(Tracer):
    """The disabled tracer: every record call is a no-op.

    Instrumentation sites still guard on ``tracer.enabled`` so the
    disabled path never builds attribute dicts; the methods exist so an
    unguarded call is merely wasted, not wrong.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(clock=lambda: 0.0, clock_name="null")

    def record_span(self, category, name, actor, start, end, **attrs):
        return None

    def record_event(self, category, name, actor, time=None, **attrs):
        return None


#: Shared singleton used as the default everywhere instrumentation hooks
#: exist; replaced by a real :class:`Tracer` when tracing is requested.
NULL_TRACER = NullTracer()
