"""Bridge from recorded traces to monotonic metric counters.

:mod:`repro.observe` already surfaces the solver and scheduler counters
of every run as trace events (see
:func:`repro.observe.aggregate.solver_table` /
:func:`~repro.observe.aggregate.sched_table`); this module reduces them
to flat ``{name: value}`` totals that a metrics exporter — the
``/metrics`` endpoint of :mod:`repro.service` — can add into Prometheus
counters. The event attributes are *cumulative per actor*, so the total
over a run is the sum of each actor's **last** event, not the sum of
every event.
"""

from __future__ import annotations

from typing import Dict

from repro.observe.tracer import Tracer

__all__ = ["BACKEND_COUNTERS", "SOLVER_COUNTERS", "SCHED_COUNTERS",
           "trace_counters"]

#: Solver-event attributes exported as counters (cumulative per actor).
SOLVER_COUNTERS = ("recomputes", "full_solves", "component_solves",
                   "fast_grants", "flows_solved", "kernel_solves")

#: Scheduler-event attributes exported as counters (cumulative per actor).
SCHED_COUNTERS = ("resizes", "migrations")

#: Sweep-backend attributes exported as counters. Backend events are
#: per-sweep totals (one event per run_sweep), so they *sum* across
#: events rather than taking the last per actor.
BACKEND_COUNTERS = ("dispatched", "completed", "requeued", "speculative",
                    "discarded", "rejected", "crashed")


def _last_per_actor(tracer: Tracer, category: str) -> Dict[str, object]:
    last: Dict[str, object] = {}
    for event in tracer.events_in(category):
        last[event.actor] = event
    return last


def trace_counters(tracer: Tracer) -> Dict[str, float]:
    """Flat counter totals for one traced run.

    Returns ``solver_*`` totals (summed over flow networks), the
    per-kernel solve split ``solver_kernel_solves{python,compiled}``
    flattened as ``solver_kernel_solves_<kernel>``, ``sched_*`` totals,
    and ``fault_injections`` / ``fault_recoveries`` counts. All values
    are plain floats, picklable and JSON-safe, so a worker process can
    compute them next to the result and ship them back to the service
    parent for export.
    """
    totals: Dict[str, float] = {}
    for name in SOLVER_COUNTERS:
        totals[f"solver_{name}"] = 0.0
    for name in SCHED_COUNTERS:
        totals[f"sched_{name}"] = 0.0
    for event in _last_per_actor(tracer, "solver").values():
        attrs = event.attrs
        for name in SOLVER_COUNTERS:
            totals[f"solver_{name}"] += float(attrs.get(name, 0))
        kernel = str(attrs.get("kernel", "python"))
        key = f"solver_kernel_solves_{kernel}"
        totals[key] = totals.get(key, 0.0) \
            + float(attrs.get("kernel_solves", 0))
    for event in _last_per_actor(tracer, "sched").values():
        attrs = event.attrs
        for name in SCHED_COUNTERS:
            totals[f"sched_{name}"] += float(attrs.get(name, 0))
    for event in tracer.events_in("backend"):
        attrs = event.attrs
        for name in BACKEND_COUNTERS:
            key = f"backend_{name}"
            totals[key] = totals.get(key, 0.0) \
                + float(attrs.get(name, 0))
    injections = recoveries = 0
    for event in tracer.events_in("fault"):
        if event.name.endswith(":inject"):
            injections += 1
        elif event.name.endswith(":recover"):
            recoveries += 1
    totals["fault_injections"] = float(injections)
    totals["fault_recoveries"] = float(recoveries)
    return totals
