"""repro.observe — structured tracing + metrics shared by the DES and
the threaded runtime.

- :mod:`repro.observe.tracer` — typed spans/events against a sim-time or
  wall-time clock, with a zero-overhead disabled mode;
- :mod:`repro.observe.export` — JSONL archive format (round-trips) and
  Chrome ``trace_event`` export for ``chrome://tracing``;
- :mod:`repro.observe.aggregate` — per-actor/per-target tables and the
  persist-vs-write_phase overlap check;
- :mod:`repro.observe.metrics` — trace counters reduced to flat totals
  for metrics exporters (the service's ``/metrics`` endpoint).
"""

from repro.observe.tracer import (
    EVENT_CATEGORIES,
    NULL_TRACER,
    NullTracer,
    SPAN_CATEGORIES,
    Span,
    TraceEvent,
    Tracer,
)
from repro.observe.export import (
    SCHEMA_VERSION,
    dump_chrome_trace,
    dump_jsonl,
    load_jsonl,
    to_chrome_trace,
    to_jsonl,
)
from repro.observe.metrics import (
    SCHED_COUNTERS,
    SOLVER_COUNTERS,
    trace_counters,
)
from repro.observe.aggregate import (
    aggregate_spans,
    merge_intervals,
    overlap_seconds,
    per_actor_table,
    per_category_table,
    per_target_table,
    render_summary,
    solver_table,
)

__all__ = [
    "SPAN_CATEGORIES",
    "EVENT_CATEGORIES",
    "Span",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SCHEMA_VERSION",
    "to_jsonl",
    "dump_jsonl",
    "load_jsonl",
    "to_chrome_trace",
    "dump_chrome_trace",
    "aggregate_spans",
    "merge_intervals",
    "overlap_seconds",
    "per_actor_table",
    "per_category_table",
    "per_target_table",
    "render_summary",
    "solver_table",
    "SOLVER_COUNTERS",
    "SCHED_COUNTERS",
    "trace_counters",
]
