"""Trace exporters: JSONL dump/load and Chrome ``trace_event`` format.

The JSONL form is the archival schema (one record per line, first line a
meta header) and round-trips back into a :class:`~repro.observe.tracer.
Tracer`; the Chrome form loads directly into ``chrome://tracing`` /
Perfetto, with the actor's ``pid/tid`` split mapped onto process and
thread rows so one node's server and clients share a group.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, TextIO, Union

from repro.errors import ReproError
from repro.observe.tracer import Span, TraceEvent, Tracer

__all__ = [
    "SCHEMA_VERSION",
    "to_jsonl",
    "dump_jsonl",
    "load_jsonl",
    "to_chrome_trace",
    "dump_chrome_trace",
]

#: Bumped whenever a record's field set changes.
SCHEMA_VERSION = 1


# ---------------------------------------------------------------------- #
# JSONL
# ---------------------------------------------------------------------- #
def to_jsonl(tracer: Tracer) -> str:
    """Serialise a tracer to JSON-lines text (meta line + one per record)."""
    lines = [json.dumps({"type": "meta", "version": SCHEMA_VERSION,
                         "clock": tracer.clock_name})]
    records: List[Union[Span, TraceEvent]] = list(tracer.spans)
    records += list(tracer.events)
    records.sort(key=_record_time)
    for record in records:
        if isinstance(record, Span):
            lines.append(json.dumps(
                {"type": "span", "cat": record.category,
                 "name": record.name, "actor": record.actor,
                 "start": record.start, "end": record.end,
                 "attrs": record.attrs}, sort_keys=True))
        else:
            lines.append(json.dumps(
                {"type": "event", "cat": record.category,
                 "name": record.name, "actor": record.actor,
                 "time": record.time, "attrs": record.attrs},
                sort_keys=True))
    return "\n".join(lines) + "\n"


def dump_jsonl(tracer: Tracer, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_jsonl(tracer))


def load_jsonl(source: Union[str, TextIO]) -> Tracer:
    """Parse JSONL text (or a file object) back into a Tracer.

    The returned tracer's clock is frozen (it only *holds* records); its
    ``clock_name`` reflects the originating clock.
    """
    if hasattr(source, "read"):
        text = source.read()
    else:
        text = source
    tracer = Tracer(clock=lambda: 0.0)
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReproError(f"trace line {lineno} is not JSON: {exc}") \
                from exc
        kind = record.get("type")
        if kind == "meta":
            version = record.get("version")
            if version != SCHEMA_VERSION:
                raise ReproError(
                    f"trace schema version {version!r} unsupported "
                    f"(expected {SCHEMA_VERSION})")
            tracer.clock_name = record.get("clock", "wall")
        elif kind == "span":
            tracer.record_span(record["cat"], record["name"],
                               record["actor"], record["start"],
                               record["end"], **record.get("attrs", {}))
        elif kind == "event":
            tracer.record_event(record["cat"], record["name"],
                                record["actor"], time=record["time"],
                                **record.get("attrs", {}))
        else:
            raise ReproError(
                f"trace line {lineno}: unknown record type {kind!r}")
    return tracer


def _record_time(record: Union[Span, TraceEvent]) -> float:
    return record.start if isinstance(record, Span) else record.time


# ---------------------------------------------------------------------- #
# Chrome trace_event
# ---------------------------------------------------------------------- #
def _split_actor(actor: str):
    pid, _, tid = actor.partition("/")
    return pid or "trace", tid or pid or "trace"


def to_chrome_trace(tracer: Tracer) -> Dict[str, object]:
    """Build a ``chrome://tracing``-loadable object (JSON Object Format).

    Spans become complete (``"ph": "X"``) events, instants become
    thread-scoped instant (``"ph": "i"``) events and ``queue_depth``
    samples become counter (``"ph": "C"``) events. Timestamps are
    microseconds, as the format requires.
    """
    events: List[Dict[str, object]] = []
    for span in tracer.spans:
        pid, tid = _split_actor(span.actor)
        events.append({
            "ph": "X", "cat": span.category, "name": span.name,
            "pid": pid, "tid": tid,
            "ts": span.start * 1e6, "dur": span.duration * 1e6,
            "args": span.attrs,
        })
    for event in tracer.events:
        pid, tid = _split_actor(event.actor)
        if event.category == "queue_depth":
            events.append({
                "ph": "C", "cat": event.category, "name": event.name,
                "pid": pid, "tid": tid, "ts": event.time * 1e6,
                "args": {"depth": event.attrs.get("depth", 0)},
            })
        else:
            events.append({
                "ph": "i", "cat": event.category, "name": event.name,
                "pid": pid, "tid": tid, "ts": event.time * 1e6,
                "s": "t", "args": event.attrs,
            })
    events.sort(key=lambda e: e["ts"])
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": tracer.clock_name,
                      "schema_version": SCHEMA_VERSION},
    }


def dump_chrome_trace(tracer: Tracer, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(tracer), fh)
