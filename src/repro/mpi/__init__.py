"""MPI-like runtime on top of the DES.

:class:`~repro.mpi.comm.Communicator` binds ranks to cluster cores and
provides point-to-point messaging, barriers and collective operations with
realistic cost models (NIC + fabric contention through the flow network,
log-depth latency for rendezvous). :mod:`repro.mpi.mpiio` implements
independent and ROMIO-style two-phase collective file writes on top of the
:mod:`repro.storage` file systems.
"""

from repro.mpi.comm import Communicator
from repro.mpi.mpiio import CollectiveFile, collective_open, collective_write

__all__ = ["CollectiveFile", "Communicator", "collective_open",
           "collective_write"]
