"""Communicators: rank↔core binding, point-to-point and collectives.

Every MPI call here is a generator *process*: rank code does
``yield from comm.barrier(rank)``. Collective matching follows MPI
semantics — all ranks of a communicator must issue collectives in the same
order; the k-th collective call of each rank joins the k-th rendezvous.

Cost model:

- point-to-point: per-message latency + a bandwidth-shared flow
  (src NIC → fabric → dst NIC);
- barrier: everyone waits for the last arrival plus a log₂(P) latency tree;
- bcast/reduce: log₂(P) rounds of (latency + volume/NIC) — volumes in this
  package are small (metadata, handles), so no flows are spawned;
- gather/allgather: root-side NIC-rx flow of the aggregate volume (the
  root's NIC is the contended resource);
- alltoallv: per-rank egress and ingress flows through NICs and fabric —
  the dominant cost of two-phase collective I/O at scale.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence

from repro.des.core import Event
from repro.des.process import AllOf
from repro.errors import MPIError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.machine import Machine
    from repro.cluster.node import Core, SMPNode

__all__ = ["Communicator"]


class _Rendezvous:
    """One in-flight collective: counts arrivals, fires when complete."""

    __slots__ = ("expected", "arrived", "event", "payloads", "root_value")

    def __init__(self, sim, expected: int) -> None:
        self.expected = expected
        self.arrived = 0
        self.event = Event(sim)
        self.payloads: Dict[int, Any] = {}
        self.root_value: Any = None


class Communicator:
    """A group of ranks, each bound to one core of the machine."""

    _next_id = 0

    def __init__(self, machine: "Machine", cores: Sequence["Core"],
                 latency: float = 5e-6) -> None:
        if not cores:
            raise MPIError("a communicator needs at least one rank")
        self.machine = machine
        self.cores: List["Core"] = list(cores)
        self.latency = latency
        self.id = Communicator._next_id
        Communicator._next_id += 1
        self._rank_seq: List[int] = [0] * len(self.cores)
        self._pending: Dict[int, _Rendezvous] = {}
        # Point-to-point mailboxes keyed by (dst, tag).
        self._mailboxes: Dict[tuple, List] = {}
        self._recv_waiters: Dict[tuple, List[Event]] = {}

    # ------------------------------------------------------------------ #
    # topology
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        return len(self.cores)

    def node_of(self, rank: int) -> "SMPNode":
        return self.cores[rank].node

    def ranks_on_node(self, node: "SMPNode") -> List[int]:
        return [r for r, core in enumerate(self.cores) if core.node is node]

    def split(self, ranks: Sequence[int]) -> "Communicator":
        """Sub-communicator over the given ranks (like MPI_Comm_split)."""
        return Communicator(self.machine,
                            [self.cores[r] for r in ranks],
                            latency=self.latency)

    def compute(self, rank: int, seconds: float,
                stream_name: str = "compute"):
        """Event: rank runs computation (with OS noise)."""
        return self.cores[rank].compute(seconds, stream_name)

    # ------------------------------------------------------------------ #
    # collective plumbing
    # ------------------------------------------------------------------ #
    def _join(self, rank: int) -> _Rendezvous:
        seq = self._rank_seq[rank]
        self._rank_seq[rank] = seq + 1
        rdv = self._pending.get(seq)
        if rdv is None:
            rdv = self._pending[seq] = _Rendezvous(self.machine.sim,
                                                   self.size)
        rdv.arrived += 1
        if rdv.arrived == rdv.expected:
            del self._pending[seq]
        return rdv

    def _tree_depth(self) -> int:
        return max(1, math.ceil(math.log2(max(self.size, 2))))

    # ------------------------------------------------------------------ #
    # collectives
    # ------------------------------------------------------------------ #
    def barrier(self, rank: int):
        """Process: synchronise all ranks."""
        rdv = self._join(rank)
        if rdv.arrived == rdv.expected:
            rdv.event.succeed(delay=self.latency * self._tree_depth())
        yield rdv.event

    def bcast(self, rank: int, value: Any = None, root: int = 0,
              nbytes: float = 0.0):
        """Process: broadcast ``value`` (root's) to all ranks.

        Returns the broadcast value. Volume ``nbytes`` is charged as
        log₂(P) store-and-forward rounds of NIC time.
        """
        rdv = self._join(rank)
        if rank == root:
            rdv.root_value = value
        if rdv.arrived == rdv.expected:
            per_round = nbytes / self.machine.spec.nic_bandwidth
            delay = self._tree_depth() * (self.latency + per_round)
            rdv.event.succeed(delay=delay)
        yield rdv.event
        return rdv.root_value

    def gather(self, rank: int, value: Any, root: int = 0,
               nbytes: float = 0.0):
        """Process: gather per-rank values at the root; root gets the list
        (indexed by rank), others get None."""
        rdv = self._join(rank)
        rdv.payloads[rank] = value
        if rdv.arrived == rdv.expected:
            self._finish_gather(rdv, root, nbytes)
        yield rdv.event
        if rank == root:
            return [rdv.payloads[r] for r in range(self.size)]
        return None

    def _finish_gather(self, rdv: _Rendezvous, root: int,
                       nbytes: float) -> None:
        total = nbytes * (self.size - 1)
        if total <= 0:
            rdv.event.succeed(delay=self.latency * self._tree_depth())
            return
        root_node = self.node_of(root)
        flow = self.machine.flows.transfer(
            [root_node.nic_rx], total, label="gather")
        flow.event.callbacks.append(
            lambda _evt: rdv.event.succeed(delay=self.latency))

    def allgather(self, rank: int, value: Any, nbytes: float = 0.0):
        """Process: every rank gets the list of all values."""
        rdv = self._join(rank)
        rdv.payloads[rank] = value
        if rdv.arrived == rdv.expected:
            # Ring allgather: (P-1) rounds; each rank both sends and
            # receives nbytes per round — charge NIC time accordingly.
            per_round = nbytes / self.machine.spec.nic_bandwidth
            delay = (self.size - 1) * (self.latency + per_round) \
                if self.size > 1 else self.latency
            rdv.event.succeed(delay=delay)
        yield rdv.event
        return [rdv.payloads[r] for r in range(self.size)]

    def reduce(self, rank: int, value: float, op: Callable = sum,
               root: int = 0):
        """Process: reduce scalar values to the root."""
        rdv = self._join(rank)
        rdv.payloads[rank] = value
        if rdv.arrived == rdv.expected:
            rdv.event.succeed(delay=self.latency * self._tree_depth())
        yield rdv.event
        if rank == root:
            return op([rdv.payloads[r] for r in range(self.size)])
        return None

    def allreduce(self, rank: int, value: float, op: Callable = sum):
        """Process: reduce and redistribute (everyone gets the result)."""
        rdv = self._join(rank)
        rdv.payloads[rank] = value
        if rdv.arrived == rdv.expected:
            rdv.event.succeed(delay=2 * self.latency * self._tree_depth())
        yield rdv.event
        return op([rdv.payloads[r] for r in range(self.size)])

    def alltoallv(self, rank: int, send_bytes: Sequence[float]):
        """Process: personalised all-to-all of ``send_bytes[dst]`` bytes.

        The dominant costs are modelled as one egress flow (this rank's
        NIC-tx + fabric, carrying its inter-node volume) and one ingress
        flow (NIC-rx), plus per-destination message latency. Returns when
        this rank's sends and receives have drained and all ranks arrived.
        """
        if len(send_bytes) != self.size:
            raise MPIError(
                f"alltoallv needs {self.size} send sizes, got "
                f"{len(send_bytes)}")
        rdv = self._join(rank)
        rdv.payloads[rank] = send_bytes
        if rdv.arrived == rdv.expected:
            rdv.event.succeed()
        yield rdv.event  # rendezvous: volumes of every rank known

        my_node = self.node_of(rank)
        egress = sum(
            volume for dst, volume in enumerate(send_bytes)
            if volume > 0 and self.node_of(dst) is not my_node)
        ingress = sum(
            rdv.payloads[src][rank] for src in range(self.size)
            if rdv.payloads[src][rank] > 0
            and self.node_of(src) is not my_node)
        msg_count = sum(1 for volume in send_bytes if volume > 0)
        flows = []
        if egress > 0:
            path = [my_node.nic_tx]
            if self.machine.fabric is not None:
                path.append(self.machine.fabric)
            flows.append(self.machine.flows.transfer(
                path, egress, label="a2a-out").event)
        if ingress > 0:
            flows.append(self.machine.flows.transfer(
                [my_node.nic_rx], ingress, label="a2a-in").event)
        if msg_count:
            flows.append(self.machine.sim.timeout(self.latency * msg_count))
        if flows:
            yield AllOf(self.machine.sim, flows)

    # ------------------------------------------------------------------ #
    # point-to-point
    # ------------------------------------------------------------------ #
    def send(self, rank: int, dst: int, payload: Any = None,
             nbytes: float = 0.0, tag: int = 0):
        """Process: send ``payload`` to ``dst`` (completes when delivered)."""
        if not 0 <= dst < self.size:
            raise MPIError(f"invalid destination rank {dst}")
        yield self.machine.sim.timeout(self.latency)
        if nbytes > 0:
            flow = self.machine.send(self.node_of(rank), self.node_of(dst),
                                     nbytes, label=f"p2p.{rank}->{dst}")
            yield flow.event
        key = (dst, tag)
        waiters = self._recv_waiters.get(key)
        if waiters:
            waiters.pop(0).succeed(payload)
        else:
            self._mailboxes.setdefault(key, []).append(payload)

    def recv(self, rank: int, tag: int = 0):
        """Process: receive the next message addressed to ``rank``."""
        key = (rank, tag)
        box = self._mailboxes.get(key)
        if box:
            payload = box.pop(0)
            yield self.machine.sim.timeout(0.0)
            return payload
        event = Event(self.machine.sim)
        self._recv_waiters.setdefault(key, []).append(event)
        payload = yield event
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Communicator id={self.id} size={self.size}>"
