"""MPI-IO: independent and collective writes (ROMIO-style).

Collective writes are the paper's "collective-I/O" baseline (pHDF5 over
MPI-IO). Two ROMIO behaviours are modelled:

- **two-phase** (``mode="two-phase"``, ROMIO's collective buffering, the
  Lustre/GPFS default): all ranks synchronise, ship their data to one
  *aggregator* rank per node, and each aggregator writes its contiguous
  file region in ``cb_buffer``-sized rounds — large requests, few writers,
  but everything drains through the shared file's stripe set and the
  rounds serialise per aggregator;
- **direct** (``mode="direct"``, what ROMIO does on PVFS, which supports
  noncontiguous I/O natively): every rank writes its own region with data
  sieving — no exchange, but N concurrent writers and a bounded access
  granularity (the sieve buffer).

The costs modelled: rendezvous with the slowest rank, exchange flows over
NICs/fabric, stripe-lock conflicts (where the file system has locks),
request-granularity and writer-concurrency penalties at the storage
targets, and the closing barrier — the paper's write phase is "the time
between the two barriers delimiting the I/O phase".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.des.process import AllOf
from repro.errors import MPIError
from repro.mpi.comm import Communicator
from repro.units import MiB

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.filesystem import FileHandle, ParallelFileSystem

__all__ = ["CollectiveFile", "collective_open", "collective_write",
           "collective_close", "default_aggregators"]


class CollectiveFile:
    """A shared file opened collectively, with aggregator assignment."""

    def __init__(self, comm: Communicator, fs: "ParallelFileSystem",
                 path: str, aggregators: List[int],
                 handles: Dict[int, "FileHandle"]) -> None:
        self.comm = comm
        self.fs = fs
        self.path = path
        self.aggregators = aggregators
        self.handles = handles  # per-writer FileHandle
        #: Total bytes of each completed write phase, keyed by phase index.
        #: (Every rank records the same value — idempotent, race-free.)
        self.phase_totals: Dict[int, int] = {}
        #: Per-rank count of collective writes issued (phase index).
        self._rank_phase: Dict[int, int] = {}

    def _enter_phase(self, rank: int) -> int:
        phase = self._rank_phase.get(rank, 0)
        self._rank_phase[rank] = phase + 1
        return phase

    def offset_of_phase(self, phase: int) -> int:
        """File offset where the given write phase begins."""
        return sum(total for k, total in self.phase_totals.items()
                   if k < phase)

    def aggregator_of(self, rank: int) -> int:
        """The aggregator that rank's data is shipped to."""
        index = rank * len(self.aggregators) // self.comm.size
        return self.aggregators[index]


def default_aggregators(comm: Communicator) -> List[int]:
    """One aggregator rank per node (ROMIO's ``cb_config_list`` default)."""
    seen = {}
    for rank, core in enumerate(comm.cores):
        if core.node.index not in seen:
            seen[core.node.index] = rank
    return sorted(seen.values())


def collective_open(comm: Communicator, rank: int,
                    fs: "ParallelFileSystem", path: str,
                    stripe_count: Optional[int] = None,
                    stripe_size: Optional[int] = None,
                    aggregators: Optional[List[int]] = None,
                    all_ranks_write: bool = False):
    """Process: collectively create + open ``path``; returns CollectiveFile.

    Rank 0 creates the file; writer ranks (the aggregators, or everyone
    when ``all_ranks_write``) each open a handle; the result is broadcast.
    """
    aggs = aggregators if aggregators is not None else default_aggregators(comm)
    shared: Optional[CollectiveFile] = None
    if rank == 0:
        handle0 = yield comm.machine.sim.process(
            fs.create(comm.node_of(0), path,
                      stripe_count=stripe_count, stripe_size=stripe_size))
        shared = CollectiveFile(comm, fs, path, aggs, {0: handle0})
    shared = yield from comm.bcast(rank, shared, root=0, nbytes=512)
    writers = set(range(comm.size)) if all_ranks_write else set(aggs)
    if rank in writers and rank != 0:
        handle = yield comm.machine.sim.process(
            fs.open(comm.node_of(rank), path))
        shared.handles[rank] = handle
    yield from comm.barrier(rank)
    return shared


def collective_write(cfile: CollectiveFile, rank: int, nbytes: int,
                     cb_buffer: int = 16 * MiB):
    """Process: two-phase collective write of ``nbytes`` from each rank.

    Rank data is laid out in rank order at the file's current offset; each
    rank's block is shipped to its aggregator, which writes its contiguous
    region in ``cb_buffer``-sized rounds. All ranks return after the
    closing barrier.
    """
    if cb_buffer < 1:
        raise MPIError(f"cb_buffer must be >= 1, got {cb_buffer}")
    comm = cfile.comm
    machine = comm.machine

    phase = cfile._enter_phase(rank)
    volumes = yield from comm.allgather(rank, nbytes, nbytes=8.0)
    total = int(sum(volumes))
    cfile.phase_totals[phase] = total  # same value from every rank
    base_offset = cfile.offset_of_phase(phase)

    my_aggregator = cfile.aggregator_of(rank)
    send_sizes = [0.0] * comm.size
    if rank != my_aggregator:
        send_sizes[my_aggregator] = float(nbytes)
    yield from comm.alltoallv(rank, send_sizes)

    if rank in cfile.handles and rank in cfile.aggregators:
        # Aggregate region: the data of every rank mapped to this
        # aggregator, contiguous in file order.
        my_ranks = [r for r in range(comm.size)
                    if cfile.aggregator_of(r) == rank]
        region = int(sum(volumes[r] for r in my_ranks))
        if region > 0:
            prefix = int(sum(volumes[r] for r in range(comm.size)
                             if cfile.aggregator_of(r) < rank))
            offset = base_offset + prefix
            # Collective-buffering rounds: cb_buffer bytes at a time.
            position = 0
            while position < region:
                chunk = min(cb_buffer, region - position)
                yield from cfile.fs.write(cfile.handles[rank],
                                          offset + position, chunk,
                                          label="cw")
                position += chunk
    yield from comm.barrier(rank)
    return nbytes


def collective_write_direct(cfile: CollectiveFile, rank: int, nbytes: int,
                            sieve_buffer: int = 4 * MiB):
    """Process: direct (non-aggregated) collective write with data sieving.

    Every rank writes its own rank-ordered region; the storage servers see
    N concurrent writers whose access granularity is the sieve buffer
    (ROMIO's behaviour on PVFS, which handles noncontiguous I/O natively
    and does no client locking)."""
    if sieve_buffer < 1:
        raise MPIError(f"sieve_buffer must be >= 1, got {sieve_buffer}")
    comm = cfile.comm
    if rank not in cfile.handles:
        raise MPIError(
            "direct collective write requires collective_open(..., "
            "all_ranks_write=True)")
    phase = cfile._enter_phase(rank)
    volumes = yield from comm.allgather(rank, nbytes, nbytes=8.0)
    total = int(sum(volumes))
    cfile.phase_totals[phase] = total
    base_offset = cfile.offset_of_phase(phase)
    my_offset = base_offset + int(sum(volumes[:rank]))
    if nbytes > 0:
        yield from cfile.fs.write(cfile.handles[rank], my_offset,
                                  int(nbytes),
                                  granularity=float(sieve_buffer),
                                  label="cw-direct")
    yield from comm.barrier(rank)
    return nbytes


def collective_close(cfile: CollectiveFile, rank: int):
    """Process: collectively close the shared file."""
    if rank in cfile.handles:
        yield from cfile.fs.close(cfile.handles[rank])
    yield from cfile.comm.barrier(rank)
