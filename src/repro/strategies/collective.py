"""The collective-I/O baseline (pHDF5 over two-phase MPI-IO).

All ranks synchronise on a shared file per phase. Two ROMIO behaviours:
``mode="two-phase"`` (Lustre/GPFS: exchange toward one aggregator per
node, chunked aggregator writes) and ``mode="direct"`` (PVFS: every rank
writes its region with data sieving). Either way the phase pays rendezvous
with the slowest rank, and compression is impossible (pHDF5 restriction,
Section II-B of the paper).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import MPIError
from repro.formats.hdf5model import HDF5CostModel
from repro.mpi.mpiio import (
    collective_close,
    collective_open,
    collective_write,
    collective_write_direct,
)
from repro.strategies.base import IOStrategy, StrategyContext
from repro.units import MiB

__all__ = ["CollectiveIOStrategy"]


class CollectiveIOStrategy(IOStrategy):
    """One shared pHDF5 file per write phase."""

    name = "collective-io"

    def __init__(self, stripe_count: Optional[int] = None,
                 stripe_size: Optional[int] = None,
                 mode: str = "two-phase",
                 cb_buffer: int = 16 * MiB,
                 sieve_buffer: int = 4 * MiB) -> None:
        if mode not in ("two-phase", "direct"):
            raise MPIError(f"unknown collective mode {mode!r}")
        #: Stripe settings of the shared file (None = file system default).
        self.stripe_count = stripe_count
        self.stripe_size = stripe_size
        self.mode = mode
        self.cb_buffer = cb_buffer
        self.sieve_buffer = sieve_buffer

    def setup(self, ctx: StrategyContext) -> None:
        # pHDF5 semantics for the cost model.
        ctx.hdf5 = HDF5CostModel(
            file_overhead_bytes=ctx.hdf5.file_overhead_bytes,
            dataset_overhead_bytes=ctx.hdf5.dataset_overhead_bytes,
            pack_seconds_per_byte=ctx.hdf5.pack_seconds_per_byte,
            collective=True)

    def write_phase(self, ctx: StrategyContext, rank: int, phase: int):
        machine = ctx.machine
        data_bytes = ctx.bytes_per_rank
        pack = ctx.hdf5.pack_time(data_bytes)
        if pack > 0:
            yield machine.sim.timeout(pack)
        cfile = yield from collective_open(
            ctx.comm, rank, ctx.fs, f"collective/phase{phase}.h5",
            stripe_count=self.stripe_count, stripe_size=self.stripe_size,
            all_ranks_write=(self.mode == "direct"))
        # Per-rank payload: user data plus this rank's share of the
        # dataset headers (the file-level overhead is negligible).
        payload = int(data_bytes
                      + ctx.hdf5.dataset_overhead_bytes * ctx.ndatasets)
        if self.mode == "two-phase":
            yield from collective_write(cfile, rank, payload,
                                        cb_buffer=self.cb_buffer)
        else:
            yield from collective_write_direct(cfile, rank, payload,
                                               sieve_buffer=self.sieve_buffer)
        yield from collective_close(cfile, rank)
