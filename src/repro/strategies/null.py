"""The no-I/O baseline.

The paper's scalability factor S = N·C576/TN uses as its reference the run
time of 50 iterations *without any I/O and without a dedicated core*; this
strategy provides that measurement.
"""

from __future__ import annotations

from repro.strategies.base import IOStrategy, StrategyContext

__all__ = ["NoIOStrategy"]


class NoIOStrategy(IOStrategy):
    """Computation only: write phases are empty."""

    name = "no-io"

    def write_phase(self, ctx: StrategyContext, rank: int, phase: int):
        yield ctx.machine.sim.timeout(0.0)
