"""Strategy interface and shared context."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.formats.compression import CompressionModel
from repro.formats.hdf5model import HDF5CostModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.workload import CM1Workload
    from repro.cluster.machine import Machine
    from repro.mpi.comm import Communicator
    from repro.storage.filesystem import ParallelFileSystem

__all__ = ["StrategyContext", "IOStrategy"]


@dataclass
class StrategyContext:
    """Everything a strategy needs while the experiment runs."""

    machine: "Machine"
    fs: "ParallelFileSystem"
    comm: "Communicator"
    workload: "CM1Workload"
    #: Per-core subdomain dilation (1.0 without dedicated cores).
    dilation: float = 1.0
    #: gzip-style model for strategies that compress on the compute cores.
    compression: Optional[CompressionModel] = None
    #: Format cost model.
    hdf5: HDF5CostModel = field(default_factory=HDF5CostModel)
    #: Scratch space for strategy state (shared files, deployments...).
    state: Dict[str, Any] = field(default_factory=dict)

    @property
    def bytes_per_rank(self) -> int:
        return self.workload.bytes_per_core(self.dilation)

    @property
    def ndatasets(self) -> int:
        return len(self.workload.variables)


class IOStrategy:
    """One approach to performing CM1's periodic output."""

    #: Display name (used in tables and reports).
    name = "abstract"
    #: Whether the harness must dedicate cores per node to this strategy.
    uses_dedicated_cores = False
    #: How many cores per node to dedicate (when uses_dedicated_cores).
    dedicated_cores_per_node = 1

    def setup(self, ctx: StrategyContext) -> None:
        """Plain-Python preparation before any rank starts (no sim time)."""

    def rank_setup(self, ctx: StrategyContext, rank: int):
        """Process: per-rank preparation (may cost simulated time)."""
        yield ctx.machine.sim.timeout(0.0)

    def write_phase(self, ctx: StrategyContext, rank: int, phase: int):
        """Process: one rank's work during write phase ``phase``."""
        raise NotImplementedError
        yield  # pragma: no cover

    def rank_teardown(self, ctx: StrategyContext, rank: int):
        """Process: per-rank cleanup after the last phase."""
        yield ctx.machine.sim.timeout(0.0)

    def finalize(self, ctx: StrategyContext) -> None:
        """Plain-Python cleanup after the simulation finishes."""

    def drain_events(self, ctx: StrategyContext):
        """Events that must complete before the experiment is 'done'
        (e.g. Damaris servers flushing). Default: none."""
        return []

    # -- fault injection (repro.faults) -------------------------------- #
    def on_fault(self, ctx: StrategyContext, fault, node):
        """A node this strategy may hold state on just crashed.

        Called by the :class:`~repro.faults.injector.FaultInjector` at
        the crash instant, after the node's NIC has been cut. Returns
        ``(iterations lost, bytes lost)`` of buffered user data the
        crash destroyed. Synchronous strategies hold no buffered state —
        in-flight writes merely stall on the dead NIC and resume at
        recovery — so the default loses nothing.
        """
        return 0, 0.0

    def on_recover(self, ctx: StrategyContext, fault, node):
        """The crashed node just came back.

        Returns events the injector must await before the fault counts
        as recovered (e.g. failover write replay). Default: none — the
        fault recovers the moment the node's links are restored.
        """
        return []
