"""The I/O strategies under test: file-per-process, collective I/O, Damaris.

Each strategy implements :class:`~repro.strategies.base.IOStrategy` — the
per-rank write-phase behaviour plus setup/teardown — and is driven by
:mod:`repro.experiments.harness`, which measures exactly what the paper
measures: the barrier-to-barrier write-phase duration seen by the
simulation, the per-rank write times, the aggregate throughput, and (for
Damaris) the dedicated cores' write/spare time.
"""

from repro.strategies.base import IOStrategy, StrategyContext
from repro.strategies.file_per_process import FilePerProcessStrategy
from repro.strategies.collective import CollectiveIOStrategy
from repro.strategies.damaris_strategy import (
    DamarisFailoverStrategy,
    DamarisStrategy,
)
from repro.strategies.null import NoIOStrategy

__all__ = [
    "CollectiveIOStrategy",
    "DamarisFailoverStrategy",
    "DamarisStrategy",
    "FilePerProcessStrategy",
    "IOStrategy",
    "NoIOStrategy",
    "StrategyContext",
]
