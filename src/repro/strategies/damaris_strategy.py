"""The Damaris strategy: dedicated-core asynchronous I/O.

Each rank's write phase is a sequence of ``df_write`` calls (one per
variable — a shared-memory copy each) plus one ``df_signal``; the node's
dedicated core persists the aggregated data asynchronously while the next
compute block runs. The harness dedicates one core per node and grows the
remaining subdomains (weak-scaling equivalence, Section IV-B).
"""

from __future__ import annotations

from typing import Optional

from repro.core.api import DamarisDeployment
from repro.core.config import DamarisConfig
from repro.core.plugins import PluginRegistry
from repro.core.server import DamarisOptions
from repro.strategies.base import IOStrategy, StrategyContext

__all__ = ["DamarisStrategy", "DamarisFailoverStrategy"]

#: The configured event every client signals at the end of an output step.
END_EVENT = "end_of_iteration"


class DamarisStrategy(IOStrategy):
    """Writes go to the node's dedicated core through shared memory."""

    name = "damaris"
    uses_dedicated_cores = True

    def __init__(self, options: Optional[DamarisOptions] = None,
                 registry: Optional[PluginRegistry] = None,
                 buffer_bytes: Optional[int] = None,
                 allocator: str = "mutex",
                 compress_on_server: bool = False,
                 dedicated_cores_per_node: int = 1) -> None:
        self.options = options if options is not None else DamarisOptions()
        self.registry = registry
        self.buffer_bytes = buffer_bytes
        self.allocator = allocator
        self.compress_on_server = compress_on_server
        self.dedicated_cores_per_node = dedicated_cores_per_node
        self.deployment: Optional[DamarisDeployment] = None

    # ------------------------------------------------------------------ #
    def build_config(self, ctx: StrategyContext) -> DamarisConfig:
        """Derive the Damaris XML-equivalent configuration from the
        workload (one layout+variable per CM1 field)."""
        config = DamarisConfig()
        for name, nbytes in ctx.workload.variable_bytes(ctx.dilation).items():
            elements = max(1, nbytes // 4)
            config.add_layout(f"layout_{name}", "float", (elements,))
            config.add_variable(name, f"layout_{name}")
        action = "compress" if self.compress_on_server else "persist"
        config.add_event(END_EVENT, action)
        config.allocator = self.allocator
        config.dedicated_cores = self.dedicated_cores_per_node
        if self.buffer_bytes is not None:
            config.buffer_size = self.buffer_bytes
        else:
            # Default: room for three in-flight iterations per node.
            per_iteration = (ctx.workload.bytes_per_core(ctx.dilation)
                             * max(1, ctx.comm.size
                                   // len(ctx.machine.nodes)))
            config.buffer_size = max(3 * per_iteration, 1 << 20)
        return config

    def setup(self, ctx: StrategyContext) -> None:
        config = self.build_config(ctx)
        if self.compress_on_server and self.options.compression is None:
            raise ValueError(
                "compress_on_server requires options.compression")
        self.deployment = DamarisDeployment(
            ctx.machine, ctx.fs, config, options=self.options,
            registry=self.registry)
        self.deployment.start()
        ctx.state["deployment"] = self.deployment
        ctx.state["server_processes"] = self.deployment.server_processes

    def write_phase(self, ctx: StrategyContext, rank: int, phase: int):
        machine = ctx.machine
        client = self.deployment.client_for_core(
            ctx.comm.cores[rank].global_index)
        for name in ctx.workload.variable_bytes(ctx.dilation):
            yield machine.sim.process(client.df_write(name, phase))
        yield machine.sim.process(client.df_signal(END_EVENT, phase))

    def rank_teardown(self, ctx: StrategyContext, rank: int):
        client = self.deployment.client_for_core(
            ctx.comm.cores[rank].global_index)
        yield ctx.machine.sim.process(client.df_finalize())

    def drain_events(self, ctx: StrategyContext):
        """The experiment also waits for every server to flush and stop."""
        return list(ctx.state.get("server_processes", []))

    # -- fault injection ----------------------------------------------- #
    def _servers_on(self, node):
        if self.deployment is None:
            return []
        return [server for server in self.deployment.servers
                if server.node is node]

    def on_fault(self, ctx: StrategyContext, fault, node):
        """A crash takes the dedicated core's process image — and with
        it every buffered-but-unpersisted iteration — down with the
        node. Iterations already mid-persist survive as stalled flows."""
        iters = 0
        nbytes = 0.0
        for server in self._servers_on(node):
            dropped_iters, dropped_bytes = server.drop_buffered()
            iters += dropped_iters
            nbytes += dropped_bytes
        return iters, nbytes


class DamarisFailoverStrategy(DamarisStrategy):
    """Dedicated-core failover: the shm buffer survives a crash.

    Models a crash of the dedicated core's *process* while the node's
    shared-memory segment persists (the Damaris design keeps all client
    data in a named shm region precisely so a restarted server can
    re-attach). During the outage the server is *suspended*:
    end-of-iteration signals die with the process image, so nothing is
    persisted — but client writes keep landing in the surviving shm
    buffer. At recovery the restarted server replays every buffered
    iteration. Recovery takes longer (the replay writes happen after
    the outage), but the data-loss metric stays at zero.
    """

    name = "damaris_failover"

    def on_fault(self, ctx: StrategyContext, fault, node):
        # The shm segment outlives the process image: no loss, but the
        # server stops persisting until it is restarted.
        for server in self._servers_on(node):
            server.suspended = True
        return 0, 0.0

    def on_recover(self, ctx: StrategyContext, fault, node):
        sim = ctx.machine.sim
        replays = []
        for server in self._servers_on(node):
            server.suspended = False
            for iteration in server.replayable_iterations():
                replays.append(
                    sim.process(server.persist_iteration(iteration)))
        return replays
