"""The file-per-process baseline (HDF5, one file per rank per phase).

Every rank creates its own file — no synchronisation between processes,
but N files per phase hammer the metadata servers (catastrophically so on
Lustre's single MDS) and N concurrent streams thrash every storage target.
Compression *is* possible in this mode (HDF5 gzip filter), at the price of
CPU time inside the write phase on the compute cores.
"""

from __future__ import annotations

from repro.strategies.base import IOStrategy, StrategyContext

__all__ = ["FilePerProcessStrategy"]


class FilePerProcessStrategy(IOStrategy):
    """One HDF5 file per process per write phase."""

    name = "file-per-process"

    def __init__(self, compress: bool = False) -> None:
        self.compress = compress

    def write_phase(self, ctx: StrategyContext, rank: int, phase: int):
        machine = ctx.machine
        node = ctx.comm.node_of(rank)
        data_bytes = ctx.bytes_per_rank

        if self.compress:
            if ctx.compression is None:
                raise ValueError(
                    "FilePerProcessStrategy(compress=True) needs "
                    "ctx.compression")
            # gzip runs on the compute core, inside the write phase.
            started = machine.sim.now
            yield machine.sim.timeout(
                ctx.compression.cpu_seconds(data_bytes))
            raw_bytes = data_bytes
            data_bytes = ctx.hdf5.compressed_bytes(data_bytes,
                                                   ctx.compression)
            tracer = machine.sim.tracer
            if tracer.enabled:
                tracer.record_span(
                    "compress", f"phase{phase}",
                    f"node{node.index}/rank{rank}", started,
                    machine.sim.now, rank=rank, phase=phase,
                    nbytes=int(raw_bytes))

        pack = ctx.hdf5.pack_time(data_bytes)
        if pack > 0:
            yield machine.sim.timeout(pack)

        path = f"fpp/phase{phase}/rank{rank}.h5"
        file_bytes = ctx.hdf5.file_bytes(data_bytes, ctx.ndatasets)
        handle = yield machine.sim.process(ctx.fs.create(node, path))
        yield machine.sim.process(
            ctx.fs.write(handle, 0, int(file_bytes), label="fpp"))
        yield machine.sim.process(ctx.fs.close(handle))
