"""Content-addressed cache keys for sweep results.

A sweep task is pure by contract (seeded RNG, no shared state), so its
result is a function of exactly three things:

- the callable's identity (``module.qualname``),
- its arguments (positional + keyword), and
- the model code that interprets them.

:func:`task_key` hashes all three with BLAKE2b. Arguments are reduced to
a *canonical blob* first — a type-tagged, recursively sorted byte string
— so that semantically identical calls (same dict in any insertion
order, tuple vs list of the same scalars) map to the same key, while any
actual change to a value, however small, produces a different one.
Objects the canonicaliser does not understand raise
:class:`UncacheableArgument`; callers treat such tasks as cache bypasses
rather than guessing at an encoding.

The model code is folded in through :func:`model_fingerprint`: a BLAKE2b
digest over every ``*.py`` file of the installed ``repro`` package
(path + content, in sorted path order). Any source edit — a calibration
constant, a strategy tweak, a kernel fix — changes the fingerprint and
therefore every key, so a stale result is structurally unreachable: it
is never *compared against* and never served, it simply becomes garbage
for ``cachectl prune --stale`` to collect.
"""

from __future__ import annotations

import hashlib
import os
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "UncacheableArgument",
    "canonical_blob",
    "model_fingerprint",
    "task_key",
]

_DIGEST_SIZE = 20  # 40 hex chars: short enough for paths, ample for keys

# Per-process memo: hashing the source tree costs a few ms; within one
# process the tree is assumed frozen (editing model code under a running
# sweep is out of contract anyway — the next process sees the new hash).
_FINGERPRINTS: Dict[str, str] = {}


class UncacheableArgument(TypeError):
    """An argument type the canonical encoder refuses to guess about."""


def _encode(obj: Any, out: List[bytes]) -> None:
    """Append a type-tagged canonical encoding of ``obj`` to ``out``."""
    if obj is None:
        out.append(b"N;")
    elif obj is True:
        out.append(b"T;")
    elif obj is False:
        out.append(b"F;")
    elif isinstance(obj, int):
        out.append(b"i%d;" % obj)
    elif isinstance(obj, float):
        # repr() round-trips doubles exactly (and distinguishes -0.0,
        # inf, nan), so equal bit patterns encode identically.
        out.append(b"f" + repr(obj).encode("ascii") + b";")
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out.append(b"s%d:" % len(raw))
        out.append(raw)
    elif isinstance(obj, bytes):
        out.append(b"b%d:" % len(obj))
        out.append(obj)
    elif isinstance(obj, (list, tuple)):
        # Deliberately the same tag: a sweep spec built with a tuple one
        # day and a list the next describes the same experiment.
        out.append(b"l%d:" % len(obj))
        for item in obj:
            _encode(item, out)
        out.append(b";")
    elif isinstance(obj, dict):
        items = []
        for key, value in obj.items():
            key_parts: List[bytes] = []
            _encode(key, key_parts)
            items.append((b"".join(key_parts), value))
        items.sort(key=lambda pair: pair[0])
        out.append(b"d%d:" % len(items))
        for encoded_key, value in items:
            out.append(encoded_key)
            _encode(value, out)
        out.append(b";")
    else:
        # numpy scalars/arrays appear in some analysis paths; encode them
        # exactly (dtype + shape + raw bytes) without importing numpy at
        # module load for the cheap scalar-only case.
        import numpy as np

        if isinstance(obj, np.generic):
            _encode(obj.item(), out)
        elif isinstance(obj, np.ndarray):
            out.append(b"a")
            _encode(obj.dtype.str, out)
            _encode(list(obj.shape), out)
            raw = np.ascontiguousarray(obj).tobytes()
            out.append(b"%d:" % len(raw))
            out.append(raw)
            out.append(b";")
        else:
            raise UncacheableArgument(
                f"cannot build a canonical cache key from "
                f"{type(obj).__name__!r} (value {obj!r})")


def canonical_blob(obj: Any) -> bytes:
    """The canonical byte encoding of ``obj`` (see module docstring)."""
    out: List[bytes] = []
    _encode(obj, out)
    return b"".join(out)


def model_fingerprint(root: Optional[str] = None,
                      refresh: bool = False) -> str:
    """BLAKE2b digest of every ``*.py`` file under ``root``.

    ``root`` defaults to the installed ``repro`` package directory, so
    the fingerprint tracks exactly the code that computes sweep results.
    Memoised per process; pass ``refresh=True`` to force a re-hash (only
    tests that rewrite source trees on the fly need this).
    """
    if root is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
    root = os.path.abspath(root)
    if not refresh:
        cached = _FINGERPRINTS.get(root)
        if cached is not None:
            return cached
    digest = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    paths: List[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames if d not in ("__pycache__",))
        for filename in filenames:
            if filename.endswith(".py"):
                paths.append(os.path.join(dirpath, filename))
    paths.sort()
    for path in paths:
        relpath = os.path.relpath(path, root)
        digest.update(relpath.encode("utf-8"))
        digest.update(b"\0")
        with open(path, "rb") as fh:
            digest.update(fh.read())
        digest.update(b"\0")
    result = digest.hexdigest()
    _FINGERPRINTS[root] = result
    return result


def task_key(fn: Callable[..., Any], args: Tuple[Any, ...],
             kwargs: Dict[str, Any], fingerprint: str,
             context: Any = None) -> str:
    """The content address of one task result.

    ``fingerprint`` is the model fingerprint (or any string standing in
    for it under test); ``context`` carries run-environment knobs that
    change task results without appearing in the arguments (e.g. the
    normalised ``REPRO_FAST`` flag). Raises :class:`UncacheableArgument`
    when an argument cannot be canonically encoded.
    """
    name = f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', '?')}"
    digest = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    digest.update(fingerprint.encode("ascii"))
    digest.update(b"\0")
    digest.update(canonical_blob((name, list(args), kwargs, context)))
    return digest.hexdigest()
