"""Content-addressed result cache for deterministic sweep tasks.

Every :class:`~repro.experiments.executor.SweepTask` is pure by contract
(seeded RNG, no shared state), so its result is fully determined by its
arguments plus the model source. This package persists those results on
disk under a key that hashes both — ``blake2b(canonical(fn, args,
kwargs) + model_fingerprint)`` — which makes re-running a figure after
editing one platform preset cost only the points that preset touches:
everything else is a verified cache hit.

- :mod:`repro.cache.keys` — canonical argument encoding, the model
  source fingerprint and :func:`~repro.cache.keys.task_key`;
- :mod:`repro.cache.store` — the on-disk store (atomic writes,
  corruption-tolerant reads, LRU eviction, advisory JSON index) and the
  ``REPRO_CACHE`` / ``REPRO_CACHE_DIR`` environment wiring.

The executor integration lives in
:func:`repro.experiments.executor.run_sweep`; the maintenance CLI is
``python -m repro.tools.cachectl``.
"""

from repro.cache.keys import (
    UncacheableArgument,
    canonical_blob,
    model_fingerprint,
    task_key,
)
from repro.cache.store import (
    CacheEntryInfo,
    CacheStats,
    ResultCache,
    cache_enabled,
    cache_from_env,
    default_cache_dir,
)

__all__ = [
    "CacheEntryInfo",
    "CacheStats",
    "ResultCache",
    "UncacheableArgument",
    "cache_enabled",
    "cache_from_env",
    "canonical_blob",
    "default_cache_dir",
    "model_fingerprint",
    "task_key",
]
