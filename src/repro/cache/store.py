"""Persistent, content-addressed store for sweep results.

On-disk layout (versioned so a future format bump cannot misread old
entries)::

    <root>/v1/
        index.json              # advisory metadata + cumulative stats
        objects/<kk>/<key>.bin  # one entry per content address

Each entry file is ``MAGIC + blake2b(body) + body`` where ``body`` is
the pickled ``{"meta": ..., "value": ...}`` payload. Reads verify the
magic and digest before unpickling, so a truncated, corrupted or
foreign file degrades to a *miss* — never a crash, never a wrong value.

Writes are atomic: the body goes to a unique temp file in the final
directory and is ``os.replace``d into place, so concurrent readers see
either the old complete entry or the new complete entry, and two
processes racing on the same key both leave a valid file behind (last
writer wins — harmless, both wrote the same deterministic result).

``index.json`` is advisory only: it accelerates ``cachectl ls/stats``
and records cumulative hit/miss/bypass counters across runs, but
correctness never depends on it — it is rebuilt from the object
directory on demand and replaced atomically (a lost update under a
write race costs a stat, not a result).

Eviction is LRU by file mtime (hits ``os.utime`` their entry), bounded
by ``max_bytes`` (env ``REPRO_CACHE_MAX_BYTES``); the newest entries
always survive, so a sweep that just ran stays warm.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.cache.keys import (
    UncacheableArgument,
    model_fingerprint,
    task_key,
)

__all__ = ["CacheEntryInfo", "CacheStats", "ResultCache", "cache_from_env",
           "default_cache_dir"]

_MAGIC = b"RPC1"
_DIGEST_SIZE = 32
_HEADER_SIZE = len(_MAGIC) + _DIGEST_SIZE

#: Default size bound for the eviction pass: 2 GiB.
_DEFAULT_MAX_BYTES = 2 << 30

_STAT_KEYS = ("hits", "misses", "bypasses", "writes", "corrupt", "evicted")

#: Distinguishes "no context override" from an explicit ``context=None``
#: in :meth:`ResultCache.key_for` (``None`` is a meaningful context).
_UNSET_CONTEXT = object()


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    bypasses: int = 0
    writes: int = 0
    corrupt: int = 0
    evicted: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {key: getattr(self, key) for key in _STAT_KEYS}

    def add(self, other: Dict[str, int]) -> None:
        for key in _STAT_KEYS:
            setattr(self, key, getattr(self, key) + int(other.get(key, 0)))


@dataclass
class CacheEntryInfo:
    """What a directory scan knows about one stored entry."""

    key: str
    path: str
    size: int
    mtime: float
    meta: Dict[str, Any] = field(default_factory=dict)


class ResultCache:
    """A content-addressed result store rooted at ``root``.

    ``fingerprint=None`` uses :func:`model_fingerprint` (the hash of the
    installed ``repro`` source tree); tests pass explicit strings to
    model code changes. ``context`` folds run-environment knobs into
    every key (the executor passes the normalised ``REPRO_FAST`` flag).
    """

    VERSION = "v1"

    def __init__(self, root: str, fingerprint: Optional[str] = None,
                 max_bytes: Optional[int] = None,
                 context: Any = None) -> None:
        self.root = os.path.abspath(root)
        self.fingerprint = (model_fingerprint() if fingerprint is None
                            else fingerprint)
        if max_bytes is None:
            raw = os.environ.get("REPRO_CACHE_MAX_BYTES", "").strip()
            max_bytes = int(raw) if raw else _DEFAULT_MAX_BYTES
        self.max_bytes = int(max_bytes)
        self.context = context
        self.stats = CacheStats()
        self._pending_index: Dict[str, Dict[str, Any]] = {}
        # Stats already merged into the on-disk totals by an earlier
        # flush(); only the delta past this snapshot is merged next time.
        self._flushed: Dict[str, int] = {key: 0 for key in _STAT_KEYS}
        # Concurrent-reader stats: the service reads hits/misses from its
        # event loop while pool callbacks record them from other threads,
        # so increments go through _record under one lock, and listeners
        # (metrics exporters) observe every change as it happens.
        self._stats_lock = threading.Lock()
        self._listeners: List[Callable[[str, int], None]] = []

    def add_stats_listener(self,
                           listener: Callable[[str, int], None]) -> None:
        """Call ``listener(stat_name, delta)`` on every stats change.

        Listeners fire synchronously under the stats lock, so they must
        be fast and must not call back into the cache; incrementing an
        external counter (the service's Prometheus registry) is the
        intended use.
        """
        self._listeners.append(listener)

    def _record(self, stat: str, n: int = 1) -> None:
        with self._stats_lock:
            setattr(self.stats, stat, getattr(self.stats, stat) + n)
            for listener in self._listeners:
                listener(stat, n)

    def record_bypass(self, n: int = 1) -> None:
        """Count ``n`` tasks that skipped the cache (trace runs,
        uncacheable arguments) — callers must not poke ``stats``
        directly, or listeners would miss the change."""
        self._record("bypasses", n)

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #
    @property
    def store_dir(self) -> str:
        return os.path.join(self.root, self.VERSION)

    @property
    def objects_dir(self) -> str:
        return os.path.join(self.store_dir, "objects")

    @property
    def index_path(self) -> str:
        return os.path.join(self.store_dir, "index.json")

    def entry_path(self, key: str) -> str:
        return os.path.join(self.objects_dir, key[:2], key + ".bin")

    # ------------------------------------------------------------------ #
    # keys
    # ------------------------------------------------------------------ #
    def key_for(self, fn, args, kwargs,
                context: Any = _UNSET_CONTEXT) -> Optional[str]:
        """The task's content address, or ``None`` when uncacheable.

        ``context`` overrides the store's own ``self.context`` for this
        one key without mutating it — the executor passes the current
        run-mode context here on every sweep, so a long-lived store can
        serve runs whose environment modes changed since it was built.
        """
        if context is _UNSET_CONTEXT:
            context = self.context
        try:
            return task_key(fn, tuple(args), dict(kwargs),
                            self.fingerprint, context=context)
        except UncacheableArgument:
            return None

    # ------------------------------------------------------------------ #
    # read / write
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Tuple[bool, Any]:
        """``(True, value)`` on a verified hit, else ``(False, None)``.

        Any failure mode — missing file, short read, bad magic, digest
        mismatch, unpicklable body — is a miss; corrupted files are
        additionally counted and removed so they cannot shadow a future
        write-back.
        """
        path = self.entry_path(key)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError:
            self._record("misses")
            return False, None
        payload = self._decode(blob)
        if payload is None:
            self._record("misses")
            self._record("corrupt")
            try:
                os.remove(path)
            except OSError:
                pass
            return False, None
        self._record("hits")
        try:
            os.utime(path)  # LRU touch
        except OSError:
            pass
        return True, payload["value"]

    def put(self, key: str, value: Any,
            meta: Optional[Dict[str, Any]] = None) -> None:
        """Atomically persist ``value`` under ``key``."""
        entry_meta = dict(meta or {})
        entry_meta.setdefault("fingerprint", self.fingerprint)
        entry_meta.setdefault("created", time.time())
        body = pickle.dumps({"meta": entry_meta, "value": value},
                            protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.blake2b(body, digest_size=_DIGEST_SIZE).digest()
        path = self.entry_path(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(_MAGIC)
                fh.write(digest)
                fh.write(body)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise
        self._record("writes")
        entry_meta["size"] = _HEADER_SIZE + len(body)
        self._pending_index[key] = entry_meta

    @staticmethod
    def _decode(blob: bytes) -> Optional[Dict[str, Any]]:
        if len(blob) <= _HEADER_SIZE or not blob.startswith(_MAGIC):
            return None
        digest = blob[len(_MAGIC):_HEADER_SIZE]
        body = blob[_HEADER_SIZE:]
        if hashlib.blake2b(body, digest_size=_DIGEST_SIZE).digest() != digest:
            return None
        try:
            payload = pickle.loads(body)
        except Exception:
            return None
        if not isinstance(payload, dict) or "value" not in payload:
            return None
        return payload

    def read_meta(self, key: str) -> Optional[Dict[str, Any]]:
        """The verified metadata of one entry, or ``None``."""
        try:
            with open(self.entry_path(key), "rb") as fh:
                blob = fh.read()
        except OSError:
            return None
        payload = self._decode(blob)
        if payload is None:
            return None
        return dict(payload.get("meta") or {})

    # ------------------------------------------------------------------ #
    # the advisory index
    # ------------------------------------------------------------------ #
    def load_index(self) -> Dict[str, Any]:
        try:
            with open(self.index_path, encoding="utf-8") as fh:
                index = json.load(fh)
        except (OSError, ValueError):
            return {"version": 1, "entries": {}, "totals": {}}
        if not isinstance(index, dict):
            return {"version": 1, "entries": {}, "totals": {}}
        index.setdefault("entries", {})
        index.setdefault("totals", {})
        return index

    def flush(self) -> None:
        """Merge buffered entry metadata and run stats into the index.

        One read-modify-replace per sweep, not per entry. The replace is
        atomic; a concurrent flush may drop the other's counters, which
        is acceptable for an advisory file. Repeated flushes merge only
        the stats delta since the previous one, so calling flush after
        every sweep (and again after an eviction pass) never
        double-counts.
        """
        current = self.stats.as_dict()
        delta = {key: current[key] - self._flushed[key]
                 for key in _STAT_KEYS}
        if not self._pending_index and not any(delta.values()):
            return
        index = self.load_index()
        index["entries"].update(self._pending_index)
        totals = index["totals"]
        for stat_key, value in delta.items():
            totals[stat_key] = int(totals.get(stat_key, 0)) + value
        index["last_run"] = current
        self._pending_index = {}
        self._flushed = current
        self._write_index(index)

    def _write_index(self, index: Dict[str, Any]) -> None:
        os.makedirs(self.store_dir, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=self.store_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(index, fh, indent=1, sort_keys=True)
                fh.write("\n")
            os.replace(tmp_path, self.index_path)
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise

    def totals(self) -> Dict[str, int]:
        """Cumulative stats across all recorded runs (advisory)."""
        totals = self.load_index()["totals"]
        return {key: int(totals.get(key, 0)) for key in _STAT_KEYS}

    def last_run(self) -> Dict[str, int]:
        last = self.load_index().get("last_run") or {}
        return {key: int(last.get(key, 0)) for key in _STAT_KEYS}

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def entries(self) -> Iterator[CacheEntryInfo]:
        """Scan the object directory (ground truth, index not trusted)."""
        index_entries = self.load_index()["entries"]
        try:
            shards = sorted(os.scandir(self.objects_dir),
                            key=lambda e: e.name)
        except OSError:
            return
        for shard in shards:
            if not shard.is_dir():
                continue
            try:
                files = sorted(os.scandir(shard.path), key=lambda e: e.name)
            except OSError:
                continue
            for entry in files:
                if not entry.name.endswith(".bin"):
                    continue
                key = entry.name[:-len(".bin")]
                try:
                    stat = entry.stat()
                except OSError:
                    continue
                yield CacheEntryInfo(
                    key=key, path=entry.path, size=stat.st_size,
                    mtime=stat.st_mtime,
                    meta=dict(index_entries.get(key) or {}))

    def total_bytes(self) -> int:
        return sum(info.size for info in self.entries())

    def evict(self, max_bytes: Optional[int] = None) -> int:
        """Remove least-recently-used entries until under ``max_bytes``.

        Returns the number of entries removed. ``max_bytes=None`` uses
        the cache's configured bound.
        """
        limit = self.max_bytes if max_bytes is None else int(max_bytes)
        infos = sorted(self.entries(), key=lambda info: (info.mtime,
                                                         info.key))
        total = sum(info.size for info in infos)
        removed: List[str] = []
        for info in infos:
            if total <= limit:
                break
            try:
                os.remove(info.path)
            except OSError:
                continue
            total -= info.size
            removed.append(info.key)
        if removed:
            self._record("evicted", len(removed))
            index = self.load_index()
            for key in removed:
                index["entries"].pop(key, None)
            self._write_index(index)
        return len(removed)

    def prune_stale(self) -> int:
        """Remove entries whose recorded fingerprint is not current.

        Stale entries are already unreachable (the fingerprint is part
        of every key), so this only reclaims disk. Entries without a
        verifiable fingerprint are treated as stale.
        """
        removed = 0
        index = self.load_index()
        for info in self.entries():
            fingerprint = info.meta.get("fingerprint")
            if fingerprint is None:
                meta = self.read_meta(info.key)
                fingerprint = (meta or {}).get("fingerprint")
            if fingerprint == self.fingerprint:
                continue
            try:
                os.remove(info.path)
            except OSError:
                continue
            index["entries"].pop(info.key, None)
            removed += 1
        if removed:
            self._write_index(index)
            self._record("evicted", removed)
        return removed

    def verify(self) -> List[str]:
        """Recompute every entry's digest; return the corrupt keys."""
        bad: List[str] = []
        for info in self.entries():
            try:
                with open(info.path, "rb") as fh:
                    blob = fh.read()
            except OSError:
                bad.append(info.key)
                continue
            if self._decode(blob) is None:
                bad.append(info.key)
        return bad

    def clear(self) -> int:
        """Remove every entry and reset the index; returns entries removed."""
        removed = 0
        for info in self.entries():
            try:
                os.remove(info.path)
                removed += 1
            except OSError:
                pass
        self._write_index({"version": 1, "entries": {}, "totals": {}})
        return removed


# ---------------------------------------------------------------------- #
# environment wiring
# ---------------------------------------------------------------------- #
def _truthy(raw: str) -> bool:
    return raw.strip().lower() in ("1", "true", "yes", "on")


def default_cache_dir() -> str:
    """``REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro/sweeps``."""
    configured = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if configured:
        return configured
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro", "sweeps")


def cache_enabled() -> bool:
    """True when ``REPRO_CACHE`` requests caching (1/true/yes/on)."""
    return _truthy(os.environ.get("REPRO_CACHE", ""))


def cache_from_env(context: Any = None) -> Optional[ResultCache]:
    """A :class:`ResultCache` per the environment, or ``None`` if off."""
    if not cache_enabled():
        return None
    return ResultCache(default_cache_dir(), context=context)
