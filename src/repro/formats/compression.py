"""Compression: real codecs plus DES cost models.

The paper's Section IV-D measures a 187 % gzip ratio on CM1's 3-D arrays
and ~600 % when the floating-point precision is first reduced to 16 bits.
(The paper quotes ratios as ``original/compressed × 100 %``.) The real
codecs here are used by the threaded runtime and by
``benchmarks/bench_compression_ratio.py`` on real mini-CM1 fields; the
:class:`CompressionModel` provides the corresponding *time* cost inside
the DES.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import FormatError

__all__ = [
    "Codec",
    "GzipCodec",
    "Precision16Codec",
    "compress_pipeline",
    "decompress_pipeline",
    "CompressionModel",
]


class Codec:
    """Interface of a reversible byte/array transformation."""

    #: Registry name stored in SHDF chunk headers.
    name = "identity"

    def encode(self, array: np.ndarray) -> Tuple[bytes, dict]:
        """Return (payload, metadata needed by decode)."""
        raise NotImplementedError

    def decode(self, payload: bytes, meta: dict) -> np.ndarray:
        raise NotImplementedError


class GzipCodec(Codec):
    """Lossless zlib/DEFLATE compression (what HDF5 calls the gzip filter)."""

    name = "gzip"

    def __init__(self, level: int = 4) -> None:
        if not 1 <= level <= 9:
            raise FormatError(f"gzip level must be in 1..9, got {level}")
        self.level = level

    def encode(self, array: np.ndarray) -> Tuple[bytes, dict]:
        raw = np.ascontiguousarray(array)
        payload = zlib.compress(raw.tobytes(), self.level)
        return payload, {"dtype": str(raw.dtype), "shape": list(raw.shape)}

    def decode(self, payload: bytes, meta: dict) -> np.ndarray:
        raw = zlib.decompress(payload)
        return np.frombuffer(raw, dtype=np.dtype(meta["dtype"])) \
            .reshape(meta["shape"]).copy()


class Precision16Codec(Codec):
    """Lossy reduction of floating-point data to 16 bits.

    "When writing data for offline visualization, the floating point
    precision can also be reduced to 16 bits" (Section IV-D). Integer
    arrays pass through unchanged.
    """

    name = "precision16"

    def encode(self, array: np.ndarray) -> Tuple[bytes, dict]:
        raw = np.ascontiguousarray(array)
        meta = {"dtype": str(raw.dtype), "shape": list(raw.shape)}
        if np.issubdtype(raw.dtype, np.floating):
            reduced = raw.astype(np.float16)
            meta["stored_dtype"] = "float16"
            return reduced.tobytes(), meta
        meta["stored_dtype"] = str(raw.dtype)
        return raw.tobytes(), meta

    def decode(self, payload: bytes, meta: dict) -> np.ndarray:
        stored = np.frombuffer(payload, dtype=np.dtype(meta["stored_dtype"]))
        return stored.astype(np.dtype(meta["dtype"])) \
            .reshape(meta["shape"]).copy()


_CODEC_TYPES = {cls.name: cls for cls in (GzipCodec, Precision16Codec)}


def codec_by_name(name: str, **kwargs) -> Codec:
    """Instantiate a codec from its registry name (SHDF reader path)."""
    try:
        return _CODEC_TYPES[name](**kwargs)
    except KeyError:
        raise FormatError(f"unknown codec {name!r}") from None


def compress_pipeline(array: np.ndarray,
                      codecs: Sequence[Codec]) -> Tuple[bytes, List[dict]]:
    """Apply codecs in order; intermediate stages re-enter as raw arrays."""
    if not codecs:
        raw = np.ascontiguousarray(array)
        return raw.tobytes(), [{"codec": "raw", "dtype": str(raw.dtype),
                                "shape": list(raw.shape)}]
    metas: List[dict] = []
    current = np.ascontiguousarray(array)
    payload = b""
    for position, codec in enumerate(codecs):
        payload, meta = codec.encode(current)
        meta["codec"] = codec.name
        metas.append(meta)
        if position < len(codecs) - 1:
            # Chain: the next codec sees the previous payload as bytes.
            current = np.frombuffer(payload, dtype=np.uint8)
    return payload, metas


def decompress_pipeline(payload: bytes, metas: Sequence[dict]) -> np.ndarray:
    """Invert :func:`compress_pipeline`."""
    if len(metas) == 1 and metas[0].get("codec") == "raw":
        meta = metas[0]
        return np.frombuffer(payload, dtype=np.dtype(meta["dtype"])) \
            .reshape(meta["shape"]).copy()
    current = payload
    result: np.ndarray | None = None
    for meta in reversed(list(metas)):
        codec = codec_by_name(meta["codec"])
        result = codec.decode(current, meta)
        current = result.tobytes()
    assert result is not None
    return result


def compression_ratio_percent(original_bytes: int,
                              compressed_bytes: int) -> float:
    """The paper's ratio convention: original/compressed × 100 %."""
    if compressed_bytes <= 0:
        raise FormatError("compressed size must be positive")
    return 100.0 * original_bytes / compressed_bytes


@dataclass
class CompressionModel:
    """DES-side cost/ratio model of a compression pipeline.

    ``bandwidth`` is the single-core compression speed in bytes/s;
    ``ratio_percent`` is the paper-convention size ratio the pipeline
    achieves on CM1-like data.
    """

    name: str = "gzip"
    bandwidth: float = 120e6
    ratio_percent: float = 187.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise FormatError("compression bandwidth must be > 0")
        if self.ratio_percent < 100.0:
            raise FormatError(
                "ratio_percent uses the paper's original/compressed "
                "convention; must be >= 100")

    def cpu_seconds(self, nbytes: float) -> float:
        """Single-core time to compress ``nbytes``."""
        return nbytes / self.bandwidth

    def output_bytes(self, nbytes: float) -> float:
        """Compressed size of ``nbytes`` of input."""
        return nbytes * 100.0 / self.ratio_percent


#: Cost models matching the paper's two pipelines (Section IV-D).
GZIP_MODEL = CompressionModel(name="gzip", bandwidth=120e6,
                              ratio_percent=187.0)
GZIP16_MODEL = CompressionModel(name="precision16+gzip", bandwidth=150e6,
                                ratio_percent=600.0)
