"""HDF5 / pHDF5 cost semantics for the simulated I/O strategies.

The DES never moves real bytes, so it needs a model of what the I/O
library adds on top of the raw data: format/metadata overhead bytes,
serialisation CPU time, and the key semantic constraint the paper
exploits — **collective pHDF5 cannot compress** ("none of today's data
formats offers compression features using this approach", Section II-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FormatError
from repro.formats.compression import CompressionModel
from repro.units import KiB

__all__ = ["HDF5CostModel"]


@dataclass
class HDF5CostModel:
    """Overheads charged per file and per dataset by the HDF5 layer."""

    #: Fixed bytes of superblock/header per file.
    file_overhead_bytes: float = 2 * KiB
    #: Bytes of object headers + b-tree per dataset.
    dataset_overhead_bytes: float = 1 * KiB
    #: CPU seconds per byte for in-memory serialisation (hyperslab packing).
    pack_seconds_per_byte: float = 1.0 / (2.0e9)
    #: Whether the file is written collectively (pHDF5 mode).
    collective: bool = False

    def file_bytes(self, data_bytes: float, ndatasets: int) -> float:
        """Total bytes landing in the file for ``data_bytes`` of user data."""
        return (data_bytes + self.file_overhead_bytes
                + self.dataset_overhead_bytes * max(ndatasets, 0))

    def pack_time(self, data_bytes: float) -> float:
        """CPU time to stage/serialise the data before the write call."""
        return data_bytes * self.pack_seconds_per_byte

    def compressed_bytes(self, data_bytes: float,
                         model: CompressionModel) -> float:
        """Size after the gzip filter — rejected in collective mode."""
        if self.collective:
            raise FormatError(
                "pHDF5 collective writes do not support compression "
                "filters (paper Section II-B)")
        return model.output_bytes(data_bytes)
