"""SHDF — a simple hierarchical data format (the package's HDF5 stand-in).

Real bytes on a real disk: the examples and the threaded Damaris runtime
persist their variables through this module. Features mirror the subset of
HDF5 the paper uses: groups, n-dimensional chunked datasets, per-chunk
compression filters (gzip, 16-bit precision reduction), and attributes.

On-disk layout::

    +------------------+
    | magic "SHDF\\x01" |
    | chunk payloads    |  (appended in write order)
    | JSON index        |
    | index length (8B) |
    | magic "SHDFEND!"  |
    +------------------+

The JSON index records every dataset's shape, dtype, chunk grid and the
(offset, size, codec-metadata) of each chunk payload.
"""

from __future__ import annotations

import itertools
import json
import os
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.compression import (
    Codec,
    compress_pipeline,
    decompress_pipeline,
)

__all__ = ["SHDFWriter", "SHDFReader"]

_MAGIC = b"SHDF\x01\n"
_END = b"SHDFEND!"


def _normalise(path: str) -> str:
    parts = [part for part in path.split("/") if part]
    if not parts:
        raise FormatError("empty dataset/group name")
    return "/".join(parts)


def _chunk_grid(shape: Sequence[int],
                chunk_shape: Sequence[int]) -> Iterable[Tuple[int, ...]]:
    counts = [(dim + ck - 1) // ck for dim, ck in zip(shape, chunk_shape)]
    return itertools.product(*(range(c) for c in counts))


def _chunk_slices(index: Tuple[int, ...], shape: Sequence[int],
                  chunk_shape: Sequence[int]) -> Tuple[slice, ...]:
    return tuple(
        slice(i * ck, min((i + 1) * ck, dim))
        for i, dim, ck in zip(index, shape, chunk_shape)
    )


class SHDFWriter:
    """Create an SHDF container and append datasets to it."""

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._fh = open(path, "wb")
        self._fh.write(_MAGIC)
        self._index: Dict[str, Any] = {"groups": [], "datasets": {},
                                       "attrs": {}}
        self._closed = False
        self.bytes_payload = 0

    # ------------------------------------------------------------------ #
    def create_group(self, name: str) -> None:
        """Register a group (and its ancestors)."""
        self._check_open()
        name = _normalise(name)
        parts = name.split("/")
        for depth in range(1, len(parts) + 1):
            group = "/".join(parts[:depth])
            if group not in self._index["groups"]:
                self._index["groups"].append(group)

    def set_attr(self, key: str, value: Any, dataset: Optional[str] = None) -> None:
        """Attach a JSON-serialisable attribute to the file or a dataset."""
        self._check_open()
        if dataset is None:
            self._index["attrs"][key] = value
            return
        dataset = _normalise(dataset)
        try:
            self._index["datasets"][dataset]["attrs"][key] = value
        except KeyError:
            raise FormatError(f"no dataset {dataset!r}") from None

    def write_dataset(self, name: str, array: np.ndarray,
                      chunk_shape: Optional[Sequence[int]] = None,
                      codecs: Sequence[Codec] = (),
                      attrs: Optional[Dict[str, Any]] = None) -> int:
        """Append a dataset; returns the stored payload size in bytes."""
        self._check_open()
        name = _normalise(name)
        if name in self._index["datasets"]:
            raise FormatError(f"dataset {name!r} already exists")
        array = np.asarray(array)
        if array.ndim == 0:
            array = array.reshape(1)
        if "/" in name:
            self.create_group(name.rsplit("/", 1)[0])
        if chunk_shape is None:
            chunk_shape = array.shape
        if len(chunk_shape) != array.ndim:
            raise FormatError(
                f"chunk shape {chunk_shape} does not match rank "
                f"{array.ndim}")
        if any(c < 1 for c in chunk_shape):
            raise FormatError(f"invalid chunk shape {chunk_shape}")

        records: List[Dict[str, Any]] = []
        stored = 0
        for chunk_index in _chunk_grid(array.shape, chunk_shape):
            region = array[_chunk_slices(chunk_index, array.shape,
                                         chunk_shape)]
            payload, metas = compress_pipeline(region, list(codecs))
            offset = self._fh.tell()
            self._fh.write(payload)
            stored += len(payload)
            records.append({
                "index": list(chunk_index),
                "offset": offset,
                "size": len(payload),
                "metas": metas,
            })
        self.bytes_payload += stored
        self._index["datasets"][name] = {
            "shape": list(array.shape),
            "dtype": str(array.dtype),
            "chunk_shape": list(chunk_shape),
            "chunks": records,
            "stored_bytes": stored,
            "raw_bytes": int(array.nbytes),
            "attrs": dict(attrs or {}),
        }
        return stored

    def close(self) -> None:
        if self._closed:
            return
        blob = json.dumps(self._index).encode("utf-8")
        self._fh.write(blob)
        self._fh.write(len(blob).to_bytes(8, "little"))
        self._fh.write(_END)
        self._fh.close()
        self._closed = True

    def __enter__(self) -> "SHDFWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise FormatError(f"writer for {self.path!r} is closed")


class SHDFReader:
    """Open an SHDF container and read datasets back."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "rb")
        magic = self._fh.read(len(_MAGIC))
        if magic != _MAGIC:
            raise FormatError(f"{path!r} is not an SHDF file")
        self._fh.seek(-len(_END) - 8, os.SEEK_END)
        length = int.from_bytes(self._fh.read(8), "little")
        if self._fh.read(len(_END)) != _END:
            raise FormatError(f"{path!r} is truncated (bad end marker)")
        self._fh.seek(-len(_END) - 8 - length, os.SEEK_END)
        try:
            self._index = json.loads(self._fh.read(length).decode("utf-8"))
        except json.JSONDecodeError as exc:
            raise FormatError(f"{path!r} has a corrupt index") from exc

    # ------------------------------------------------------------------ #
    @property
    def groups(self) -> List[str]:
        return list(self._index["groups"])

    @property
    def datasets(self) -> List[str]:
        return sorted(self._index["datasets"])

    @property
    def attrs(self) -> Dict[str, Any]:
        return dict(self._index["attrs"])

    def dataset_info(self, name: str) -> Dict[str, Any]:
        try:
            return dict(self._index["datasets"][_normalise(name)])
        except KeyError:
            raise FormatError(f"no dataset {name!r} in {self.path!r}") from None

    def dataset_attrs(self, name: str) -> Dict[str, Any]:
        return dict(self.dataset_info(name)["attrs"])

    def read_dataset(self, name: str) -> np.ndarray:
        info = self.dataset_info(name)
        shape = tuple(info["shape"])
        dtype = np.dtype(info["dtype"])
        chunk_shape = tuple(info["chunk_shape"])
        out = np.empty(shape, dtype=dtype)
        for record in info["chunks"]:
            self._fh.seek(record["offset"])
            payload = self._fh.read(record["size"])
            if len(payload) != record["size"]:
                raise FormatError(
                    f"short read of chunk {record['index']} in {name!r}")
            region = decompress_pipeline(payload, record["metas"])
            slices = _chunk_slices(tuple(record["index"]), shape, chunk_shape)
            out[slices] = region.astype(dtype, copy=False)
        return out

    def stored_bytes(self, name: str) -> int:
        return int(self.dataset_info(name)["stored_bytes"])

    def raw_bytes(self, name: str) -> int:
        return int(self.dataset_info(name)["raw_bytes"])

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "SHDFReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
