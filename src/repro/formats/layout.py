"""Layouts: the static type/shape descriptors of Damaris variables.

A layout corresponds to a ``<layout>`` element of the Damaris XML
configuration::

    <layout name="my_layout" type="real" dimensions="64,16,2"
            language="fortran" />

Layouts exist so that clients need not ship shape metadata through shared
memory with every write (Section III-B of the paper): the server resolves
the variable's layout from the configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod
from typing import Tuple

import numpy as np

from repro.errors import FormatError

__all__ = ["Layout", "TYPE_SIZES"]

#: Damaris-style type names → (numpy dtype, size in bytes).
TYPE_SIZES = {
    "short": ("int16", 2),
    "int": ("int32", 4),
    "integer": ("int32", 4),
    "long": ("int64", 8),
    "float": ("float32", 4),
    "real": ("float32", 4),
    "double": ("float64", 8),
    "char": ("int8", 1),
    "character": ("int8", 1),
}


@dataclass(frozen=True)
class Layout:
    """A named, typed, fixed-shape array description."""

    name: str
    type: str
    dimensions: Tuple[int, ...]
    language: str = "c"

    def __post_init__(self) -> None:
        if self.type not in TYPE_SIZES:
            raise FormatError(
                f"unknown layout type {self.type!r}; expected one of "
                f"{sorted(TYPE_SIZES)}")
        if not self.dimensions:
            raise FormatError(f"layout {self.name!r} has no dimensions")
        if any(d < 1 for d in self.dimensions):
            raise FormatError(
                f"layout {self.name!r} has non-positive dimensions "
                f"{self.dimensions}")
        if self.language not in ("c", "fortran"):
            raise FormatError(
                f"layout {self.name!r}: language must be 'c' or 'fortran'")

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(TYPE_SIZES[self.type][0])

    @property
    def element_size(self) -> int:
        return TYPE_SIZES[self.type][1]

    @property
    def element_count(self) -> int:
        return prod(self.dimensions)

    @property
    def nbytes(self) -> int:
        """Total size of one instance of this layout."""
        return self.element_count * self.element_size

    @property
    def shape(self) -> Tuple[int, ...]:
        """Numpy shape honouring the language ordering (Fortran layouts are
        declared fastest-dimension-first, as in the paper's example)."""
        if self.language == "fortran":
            return tuple(reversed(self.dimensions))
        return self.dimensions

    def matches(self, array: np.ndarray) -> bool:
        """Whether a numpy array conforms to this layout."""
        return (array.size == self.element_count
                and array.dtype == self.dtype)

    @classmethod
    def parse(cls, name: str, type: str, dimensions: str,
              language: str = "c") -> "Layout":
        """Build from XML attribute strings (``dimensions="64,16,2"``)."""
        try:
            dims = tuple(int(part.strip())
                         for part in dimensions.split(",") if part.strip())
        except ValueError:
            raise FormatError(
                f"layout {name!r}: cannot parse dimensions {dimensions!r}"
            ) from None
        return cls(name=name, type=type.strip().lower(), dimensions=dims,
                   language=language.strip().lower())
