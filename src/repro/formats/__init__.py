"""Data layouts, compression codecs and the SHDF on-disk container.

- :mod:`repro.formats.layout` — typed, dimensioned descriptions of
  variables (the Damaris configuration's ``<layout>`` elements);
- :mod:`repro.formats.compression` — *real* codecs (zlib, 16-bit precision
  reduction) used by the threaded runtime and the compression-ratio
  benches, plus cost models used inside the DES;
- :mod:`repro.formats.shdf` — a real hierarchical scientific container
  (groups, chunked datasets, attributes, per-chunk compression) written by
  the examples — the stand-in for HDF5;
- :mod:`repro.formats.hdf5model` — HDF5/pHDF5 *cost semantics* for the
  simulated strategies (metadata overhead, format overhead, the fact that
  collective pHDF5 cannot compress).
"""

from repro.formats.layout import Layout
from repro.formats.compression import (
    Codec,
    CompressionModel,
    GzipCodec,
    Precision16Codec,
    compress_pipeline,
    decompress_pipeline,
)
from repro.formats.shdf import SHDFReader, SHDFWriter
from repro.formats.hdf5model import HDF5CostModel

__all__ = [
    "Codec",
    "CompressionModel",
    "GzipCodec",
    "HDF5CostModel",
    "Layout",
    "Precision16Codec",
    "SHDFReader",
    "SHDFWriter",
    "compress_pipeline",
    "decompress_pipeline",
]
