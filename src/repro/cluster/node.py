"""SMP node and core models.

An :class:`SMPNode` owns:

- ``cores`` — compute contexts; a core runs one simulated MPI process;
- ``membus`` — a shared :class:`~repro.des.bandwidth.LinkCapacity`
  modelling the node's memory bandwidth. Shared-memory copies (the Damaris
  ``df_write`` path) are flows across this capacity only, so concurrent
  copies from many cores contend exactly as the paper describes;
- ``nic_tx`` / ``nic_rx`` — the node's network interface, the first level
  of contention when all cores perform I/O simultaneously (Section II-A,
  cause 1).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional

from repro.des.bandwidth import Flow, LinkCapacity

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.machine import Machine

__all__ = ["Core", "SMPNode"]


class Core:
    """One core of an SMP node. Runs either simulation code or Damaris."""

    __slots__ = ("node", "index", "dedicated")

    def __init__(self, node: "SMPNode", index: int) -> None:
        self.node = node
        self.index = index
        #: True when the core is reserved for Damaris (never runs the
        #: simulation). Set by the Damaris strategy at deployment time.
        self.dedicated = False

    @property
    def global_index(self) -> int:
        """Machine-wide core id (node id × cores-per-node + local index)."""
        return self.node.index * self.node.ncores + self.index

    def compute(self, seconds: float, stream_name: str = "os-noise"):
        """Event: run pure computation for ``seconds``, with OS noise applied.

        The returned event fires when the (noise-dilated) compute phase ends.
        A fault-injected straggler slowdown on the node applies to blocks
        that *start* inside the fault window (an approximation: blocks
        spanning a window edge are not re-split).
        """
        dilated = self.node.machine.noise.dilate(self, seconds, stream_name)
        if self.node.slowdown != 1.0:
            dilated *= self.node.slowdown
        return self.node.machine.sim.timeout(dilated)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Core {self.node.index}.{self.index}>"


class SMPNode:
    """A multicore node with shared memory bus and NIC."""

    def __init__(self, machine: "Machine", index: int, ncores: int,
                 mem_bandwidth: float, nic_bandwidth: float,
                 memory_bytes: float = math.inf) -> None:
        self.machine = machine
        self.index = index
        self.ncores = ncores
        self.memory_bytes = memory_bytes
        self.cores: List[Core] = [Core(self, i) for i in range(ncores)]
        network = machine.flows
        self.membus: LinkCapacity = network.add_capacity(
            f"node{index}.membus", mem_bandwidth)
        self.nic_tx: LinkCapacity = network.add_capacity(
            f"node{index}.nic_tx", nic_bandwidth)
        self.nic_rx: LinkCapacity = network.add_capacity(
            f"node{index}.nic_rx", nic_bandwidth)
        #: Fault-injection compute slowdown (>= 1; straggler windows,
        #: :mod:`repro.faults`). The healthy value 1.0 is branch-guarded
        #: in :meth:`Core.compute`, so un-faulted runs are unchanged.
        self.slowdown = 1.0

    def memcpy(self, nbytes: float, rate_cap: float = math.inf,
               label: str = "memcpy") -> Flow:
        """Start an intra-node memory copy (e.g. into the Damaris shm buffer).

        Concurrent copies from several cores share the node's memory
        bandwidth max-min fairly.
        """
        return self.machine.flows.transfer(
            [self.membus], nbytes, rate_cap=rate_cap,
            label=f"node{self.index}.{label}")

    def compute_cores(self) -> List[Core]:
        """Cores not dedicated to Damaris."""
        return [core for core in self.cores if not core.dedicated]

    def dedicated_cores(self) -> List[Core]:
        """Cores reserved for Damaris."""
        return [core for core in self.cores if core.dedicated]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SMPNode {self.index} cores={self.ncores}>"
