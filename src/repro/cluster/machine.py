"""Machine builder: nodes + interconnect + instrumentation in one place.

A :class:`Machine` is described by a :class:`MachineSpec` (counts and
bandwidths) and owns the simulator, the flow network, the random streams
and the monitor. File systems (:mod:`repro.storage`) are attached
afterwards and register their own capacities on ``machine.flows``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.des.bandwidth import Flow, FlowNetwork, LinkCapacity
from repro.des.core import Simulator
from repro.des.monitor import Monitor
from repro.observe.tracer import Tracer
from repro.des.rng import RandomStreams
from repro.cluster.node import Core, SMPNode
from repro.cluster.noise import NoiseModel, OSNoise
from repro.errors import SimulationError
from repro.units import GiB, MiB

__all__ = ["MachineSpec", "Machine"]


@dataclass
class MachineSpec:
    """Static description of a compute platform.

    Bandwidths are bytes/s. ``fabric_bandwidth`` models the aggregate
    bisection available toward the storage network (set to ``inf`` for a
    non-blocking fabric).
    """

    name: str = "machine"
    nodes: int = 4
    cores_per_node: int = 12
    mem_bandwidth: float = 4.0 * GiB
    nic_bandwidth: float = 1.0 * GiB
    fabric_bandwidth: float = math.inf
    memory_per_node: float = 16.0 * GiB

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise SimulationError(f"need >= 1 node, got {self.nodes}")
        if self.cores_per_node < 1:
            raise SimulationError(
                f"need >= 1 core per node, got {self.cores_per_node}")

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node


class Machine:
    """A built platform: simulator + flow network + nodes (+ optional fabric)."""

    def __init__(self, spec: MachineSpec, seed: int = 0,
                 noise: Optional[NoiseModel] = None,
                 completion_slack: float = 0.01,
                 fairness_slack: float = 0.08,
                 solver: Optional[str] = None,
                 shards: Optional[int] = None) -> None:
        self.spec = spec
        self.sim = Simulator()
        self.flows = FlowNetwork(self.sim, completion_slack=completion_slack,
                                 fairness_slack=fairness_slack,
                                 solver=solver, shards=shards)
        self.streams = RandomStreams(seed)
        self.monitor = Monitor()
        self.noise = noise if noise is not None else OSNoise()
        self.noise.bind(self.streams)

        self.fabric: Optional[LinkCapacity] = None
        if math.isfinite(spec.fabric_bandwidth):
            self.fabric = self.flows.add_capacity(
                "fabric", spec.fabric_bandwidth)

        self.nodes: List[SMPNode] = [
            SMPNode(self, i, spec.cores_per_node,
                    mem_bandwidth=spec.mem_bandwidth,
                    nic_bandwidth=spec.nic_bandwidth,
                    memory_bytes=spec.memory_per_node)
            for i in range(spec.nodes)
        ]

    # ------------------------------------------------------------------ #
    # instrumentation
    # ------------------------------------------------------------------ #
    def attach_tracer(self, tracer: Tracer) -> Tracer:
        """Route every model layer's instrumentation into ``tracer``,
        rebinding its clock to simulated time."""
        tracer.clock = lambda: self.sim.now
        tracer.clock_name = "sim"
        self.sim.tracer = tracer
        return tracer

    @property
    def tracer(self) -> Tracer:
        return self.sim.tracer

    # ------------------------------------------------------------------ #
    # lookup helpers
    # ------------------------------------------------------------------ #
    @property
    def total_cores(self) -> int:
        return self.spec.total_cores

    def core(self, global_index: int) -> Core:
        """Resolve a machine-wide core id to a Core object."""
        per_node = self.spec.cores_per_node
        node_index, local = divmod(global_index, per_node)
        if not 0 <= node_index < len(self.nodes):
            raise SimulationError(f"no core {global_index} on {self.spec.name}")
        return self.nodes[node_index].cores[local]

    def all_cores(self) -> List[Core]:
        return [core for node in self.nodes for core in node.cores]

    # ------------------------------------------------------------------ #
    # data movement
    # ------------------------------------------------------------------ #
    def send(self, src: SMPNode, dst: SMPNode, nbytes: float,
             label: str = "msg") -> Flow:
        """Inter-node message: src NIC-tx → (fabric) → dst NIC-rx."""
        if src is dst:
            return src.memcpy(nbytes, label=label)
        path = [src.nic_tx, dst.nic_rx]
        if self.fabric is not None:
            path.insert(1, self.fabric)
        return self.flows.transfer(path, nbytes, label=label)

    def path_to_storage(self, src: SMPNode,
                        target: LinkCapacity) -> List[LinkCapacity]:
        """Capacities crossed by a write from ``src`` to a storage target."""
        path = [src.nic_tx, target]
        if self.fabric is not None:
            path.insert(1, self.fabric)
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Machine {self.spec.name!r} nodes={self.spec.nodes} "
                f"cores={self.total_cores}>")
