"""Cluster hardware models: SMP nodes, cores, NICs, interconnect, OS noise.

A :class:`~repro.cluster.machine.Machine` wires a set of
:class:`~repro.cluster.node.SMPNode` objects (each with cores, a shared
memory bus and a NIC) to an interconnect, all expressed as capacities of a
single :class:`~repro.des.bandwidth.FlowNetwork`. Parallel file systems
(:mod:`repro.storage`) attach their targets to the same network, so every
byte moved competes realistically for NICs, fabric and storage bandwidth.
"""

from repro.cluster.node import Core, SMPNode
from repro.cluster.machine import Machine, MachineSpec
from repro.cluster.noise import (
    CrossApplicationInterference,
    NoiseModel,
    NoNoise,
    OSNoise,
)

__all__ = [
    "Core",
    "CrossApplicationInterference",
    "Machine",
    "MachineSpec",
    "NoNoise",
    "NoiseModel",
    "OSNoise",
    "SMPNode",
]
