"""Jitter sources (Section II-A of the paper).

The paper identifies four causes of I/O jitter:

1. resource contention inside SMP nodes — *emergent* from the shared
   membus/NIC capacities, not modelled here;
2. communication/synchronisation — emergent from barriers and collectives;
3. kernel/OS noise — modelled by :class:`OSNoise`, a multiplicative
   perturbation of compute-phase durations;
4. cross-application contention — modelled by
   :class:`CrossApplicationInterference`, a background load process that
   modulates storage-side capacities over time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Core
    from repro.des.bandwidth import LinkCapacity
    from repro.des.core import Simulator
    from repro.des.rng import RandomStreams

__all__ = ["NoiseModel", "NoNoise", "OSNoise",
           "CrossApplicationInterference"]


class NoiseModel:
    """Interface: dilate a nominal compute duration into an observed one."""

    def bind(self, streams: "RandomStreams") -> None:
        """Attach the machine's random streams (called by Machine)."""
        self._streams = streams

    def dilate(self, core: "Core", seconds: float, stream_name: str) -> float:
        raise NotImplementedError


class NoNoise(NoiseModel):
    """Perfectly quiet operating system (useful for calibration baselines)."""

    def dilate(self, core: "Core", seconds: float, stream_name: str) -> float:
        return seconds


class OSNoise(NoiseModel):
    """Lognormal multiplicative OS noise on compute phases.

    The paper notes computation phases are "usually stable and only suffer
    from a small jitter due to the operating system": we default to a ~0.3 %
    coefficient of variation, far below the orders-of-magnitude I/O
    variability.

    Parameters
    ----------
    sigma:
        Shape of the lognormal dilation factor (mean-1 normalised).
    floor:
        Minimum dilation (a compute phase can never finish early by more
        than ``1 - floor``).
    """

    def __init__(self, sigma: float = 0.003, floor: float = 0.999) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        self.sigma = sigma
        self.floor = floor

    def dilate(self, core: "Core", seconds: float, stream_name: str) -> float:
        if seconds <= 0 or self.sigma == 0:
            return max(seconds, 0.0)
        stream = self._streams.stream(f"{stream_name}.core{core.global_index}")
        factor = float(stream.lognormal(mean=0.0, sigma=self.sigma))
        return seconds * max(factor, self.floor)


class CrossApplicationInterference:
    """Background load from other jobs sharing the file system.

    An Ornstein-Uhlenbeck-like process re-samples a *load factor* in
    ``[min_load, max_load]`` every ``period`` seconds and scales the
    attached capacities to ``nominal × (1 - load)``. This produces the
    phase-to-phase unpredictability the paper attributes to shared
    platforms (external interferences in Lofstead et al.'s terminology).
    """

    def __init__(self, targets: Sequence[object],
                 period: float = 10.0, mean_load: float = 0.2,
                 volatility: float = 0.15, max_load: float = 0.85,
                 independent: bool = True,
                 stream_name: str = "cross-app") -> None:
        if not 0 <= mean_load < 1:
            raise ValueError(f"mean_load must be in [0,1), got {mean_load}")
        #: Targets are either StorageTarget objects (preferred — composes
        #: with their own concurrency model) or raw LinkCapacity objects.
        self.targets = list(targets)
        self.period = period
        self.mean_load = mean_load
        self.volatility = volatility
        self.max_load = max_load
        #: Independent per-target load walks (True) or one shared walk.
        self.independent = independent
        self.stream_name = stream_name
        self.current_loads = [mean_load] * len(self.targets)
        self._nominal = {
            id(target): target.capacity for target in self.targets
            if not hasattr(target, "set_interference")
        }

    def start(self, sim: "Simulator", streams: "RandomStreams") -> None:
        """Begin modulating capacities (runs for the whole simulation)."""
        self._stream = streams.stream(self.stream_name)
        sim.process(self._run(sim))

    def _apply(self, target: object, load: float) -> None:
        factor = max(1.0 - load, 1.0 - self.max_load, 1e-3)
        if hasattr(target, "set_interference"):
            target.set_interference(factor)
        else:
            nominal = self._nominal[id(target)]
            target.set_capacity(max(nominal * factor, 1.0))

    def _run(self, sim: "Simulator"):
        n = len(self.targets)
        loads = np.full(n if self.independent else 1, self.mean_load)
        while True:
            # Mean-reverting random walk, clipped to a sane range.
            steps = self._stream.normal(0.0, self.volatility, size=loads.shape)
            loads = loads + 0.5 * (self.mean_load - loads) + steps
            loads = np.clip(loads, 0.0, self.max_load)
            self.current_loads = (
                loads.tolist() if self.independent
                else [float(loads[0])] * n)
            for target, load in zip(self.targets, self.current_loads):
                self._apply(target, float(load))
            yield sim.timeout(self.period)
