"""repro — a reproduction of Damaris (Dorier et al., CLUSTER 2012).

Damaris leverages dedicated I/O cores on multicore SMP nodes, together with
shared intra-node memory, to perform asynchronous data processing and I/O.
This hides I/O jitter from the simulation, raises aggregate throughput, and
enables overhead-free compression.

The package is organised in layers:

- :mod:`repro.des` — a discrete-event simulation kernel (the substrate on
  which clusters, file systems and MPI are modelled).
- :mod:`repro.cluster`, :mod:`repro.storage`, :mod:`repro.mpi` — models of
  SMP nodes, interconnects, parallel file systems (Lustre/PVFS/GPFS-like)
  and an MPI-like runtime with independent and collective I/O.
- :mod:`repro.formats` — data layouts, compression codecs and the SHDF
  on-disk container.
- :mod:`repro.core` — the Damaris middleware itself: shared-memory buffers,
  event queue, event-processing engine, plugins, client API.
- :mod:`repro.runtime` — a real, thread-based Damaris runtime that writes
  real files (used by the examples).
- :mod:`repro.strategies`, :mod:`repro.apps`, :mod:`repro.experiments`,
  :mod:`repro.analysis` — the three I/O approaches under test, the CM1
  workload, and the harness reproducing every table and figure of the paper.
"""

from repro._version import __version__

__all__ = ["__version__"]
