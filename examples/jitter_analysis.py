#!/usr/bin/env python3
"""Where does I/O jitter come from, and what removes it?

Reproduces the paper's Section II analysis experimentally: runs several
write phases of the CM1 workload on the simulated Grid'5000/PVFS platform
under increasing interference, and shows how phase-to-phase
unpredictability (max - min) grows for file-per-process while Damaris
stays flat — the paper's headline "fully hides jitter" claim.

Run:  python examples/jitter_analysis.py
"""

import numpy as np

from repro.analysis import jitter_stats
from repro.experiments.harness import run_experiment
from repro.experiments.platforms import grid5000_preset
from repro.experiments.report import render_table
from repro.strategies import DamarisStrategy, FilePerProcessStrategy
from repro.units import fmt_time

CORES = 240
PHASES = 4


def main() -> None:
    preset = grid5000_preset()
    rows = []
    for load in (0.0, 0.2, 0.4):
        preset.interference_load = load
        for strategy_factory in (lambda: FilePerProcessStrategy(),
                                 lambda: DamarisStrategy()):
            strategy = strategy_factory()
            machine, fs, workload = preset.build(CORES, seed=3)
            result = run_experiment(machine, fs, workload, strategy,
                                    write_phases=PHASES)
            stats = jitter_stats([p.duration for p in result.phases])
            ranks = np.concatenate([p.rank_times for p in result.phases])
            rows.append({
                "cross-app load": f"{load:.0%}",
                "strategy": strategy.name,
                "phase avg": fmt_time(stats.mean),
                "phase max": fmt_time(stats.maximum),
                "unpredictability": fmt_time(stats.spread),
                "rank spread": fmt_time(float(ranks.max() - ranks.min())),
            })
            print(f"  load {load:.0%} / {strategy.name}: done")

    print()
    print(render_table(rows))
    print("\nThe file-per-process write phase inflates and wobbles as the "
          "shared file system gets busier; the Damaris write phase is a "
          "shared-memory copy and never sees any of it (paper Fig. 2/3).")


if __name__ == "__main__":
    main()
