#!/usr/bin/env python3
"""Simulate the paper's Kraken experiment at reduced scale.

Builds the calibrated Kraken model (Cray XT5 nodes + Lustre with one
metadata server, 336 OSTs and cross-application interference), runs CM1's
output cycle under the three I/O approaches, and prints the paper's
metrics: write-phase duration seen by the simulation, aggregate
throughput, run time, and — for Damaris — the dedicated cores' write and
spare time.

Run:  python examples/cluster_simulation.py [cores]
      (cores must be a multiple of 12; default 576, the paper's smallest)
"""

import sys

import numpy as np

from repro.experiments.harness import run_experiment
from repro.experiments.platforms import kraken_preset
from repro.experiments.report import render_table
from repro.strategies import (
    CollectiveIOStrategy,
    DamarisStrategy,
    FilePerProcessStrategy,
)
from repro.units import GB, fmt_rate, fmt_time


def main() -> None:
    ncores = int(sys.argv[1]) if len(sys.argv) > 1 else 576
    preset = kraken_preset()
    print(f"simulated Kraken: {ncores} cores "
          f"({ncores // 12} twelve-core nodes), Lustre with "
          f"336 OSTs + 1 MDS\n")

    rows = []
    for strategy_factory in (
        lambda: FilePerProcessStrategy(),
        lambda: CollectiveIOStrategy(
            mode=preset.collective_mode,
            stripe_count=preset.collective_stripe_count),
        lambda: DamarisStrategy(),
    ):
        strategy = strategy_factory()
        machine, fs, workload = preset.build(ncores, seed=1)
        result = run_experiment(machine, fs, workload, strategy,
                                write_phases=2)
        row = {
            "strategy": strategy.name,
            "write phase (avg)": fmt_time(result.avg_write_phase),
            "write phase (max)": fmt_time(result.max_write_phase),
            "throughput": fmt_rate(result.aggregate_throughput),
            "run time": fmt_time(result.run_time),
            "files": result.files_created,
        }
        if result.dedicated_write_times:
            row["dedicated write"] = fmt_time(
                float(np.mean(result.dedicated_write_times)))
            row["spare"] = f"{100 * result.spare_fraction:.0f} %"
        rows.append(row)
        print(f"  {strategy.name}: done "
              f"(simulated {result.drain_time:,.0f} s)")

    print()
    print(render_table(rows))
    print("\npaper (Figure 2/4/6): Damaris hides the write phase "
          "(~0.2 s), scales nearly perfectly, and out-writes "
          "file-per-process ~6x and collective-I/O ~15x at 9216 cores.")


if __name__ == "__main__":
    main()
