#!/usr/bin/env python3
"""A CM1-style storm simulation with Damaris doing the I/O.

This is the paper's motivating workload end-to-end on one machine:

- a mini-CM1 warm-bubble storm, horizontally decomposed over clients;
- the Damaris configuration loaded from the *paper's XML dialect*;
- zero-copy output: fields are computed straight into the shared buffer
  (``dc_alloc``/``dc_commit``), so the write phase costs one queue push;
- the dedicated cores reduce precision to 16 bits and gzip before
  persisting — the paper's ~600 % visualization pipeline — plus a custom
  plugin that tracks the storm's peak updraft inline (in-situ analysis);
- per-iteration jitter accounting: the client-visible write cost vs the
  dedicated-core cost.

Run:  python examples/tornado_simulation.py
"""

import tempfile

import numpy as np

from repro.apps.cm1 import MiniCM1
from repro.core import DamarisConfig
from repro.formats import SHDFReader
from repro.runtime import DamarisRuntime
from repro.units import fmt_bytes, fmt_time

CLIENTS = 4
ITERATIONS = 6
STEPS_PER_ITERATION = 5

CONFIG_XML = """
<damaris>
  <architecture>
    <buffer size="256MiB" allocator="mutex" />
    <dedicated cores="1" />
    <queue size="256" />
  </architecture>
  <data>
    <layout name="subdomain" type="real" dimensions="{nx},{ny},{nz}" />
    <variable name="u"     layout="subdomain" unit="m/s" />
    <variable name="v"     layout="subdomain" unit="m/s" />
    <variable name="w"     layout="subdomain" unit="m/s"
              description="vertical wind (updraft)" />
    <variable name="theta" layout="subdomain" unit="K"
              description="potential temperature perturbation" />
    <variable name="qv"    layout="subdomain" unit="kg/kg" />
    <variable name="prs"   layout="subdomain" unit="Pa" />
  </data>
  <actions>
    <event name="end_iteration" action="compress16" scope="local" />
    <event name="track_storm"   action="storm_tracker" scope="local" />
  </actions>
</damaris>
"""


def main() -> None:
    model = MiniCM1(nx=64, ny=64, nz=32, seed=11)
    sub_nx = model.nx // CLIENTS
    config = DamarisConfig.from_xml(CONFIG_XML.format(
        nx=sub_nx, ny=model.ny, nz=model.nz))

    # A user plugin, exactly as Section III-C describes: a function the
    # event-processing engine calls when the event arrives.
    peak_updrafts = []

    def storm_tracker(context):
        iteration = context.event.iteration
        peak = max(float(context.array_of(entry).max())
                   for entry in context.entries
                   if entry.name == "w")
        peak_updrafts.append((iteration, peak))

    with tempfile.TemporaryDirectory() as outdir:
        runtime = DamarisRuntime(config, output_dir=outdir, nodes=1,
                                 clients_per_node=CLIENTS,
                                 actions={"storm_tracker": storm_tracker})
        print(f"storm simulation: {model.nx}x{model.ny}x{model.nz} grid, "
              f"{CLIENTS} clients + 1 dedicated core\n")

        variables = ("u", "v", "w", "theta", "qv", "prs")
        for iteration in range(ITERATIONS):
            model.step(STEPS_PER_ITERATION)
            for client in runtime.clients:
                fields = model.subdomain(client.rank, CLIENTS, 1)
                for name in variables:
                    # Zero-copy: "write" without writing. The window is a
                    # live view of the shared buffer.
                    window = client.dc_alloc(name, iteration)
                    window[:] = fields[name]
                    client.dc_commit(name, iteration)
                client.df_signal("track_storm", iteration)
                client.df_signal("end_iteration", iteration)
            print(f"iteration {iteration}: committed "
                  f"{len(variables)} variables x {CLIENTS} clients "
                  f"(zero-copy)")

        runtime.shutdown()

        print("\nin-situ storm tracking (computed on the dedicated core):")
        for iteration, peak in peak_updrafts:
            bar = "#" * int(peak * 4)
            print(f"  iter {iteration}: peak updraft {peak:5.2f} m/s {bar}")

        totals = runtime.total_bytes()
        print(f"\nvisualization pipeline  : float16 + gzip")
        print(f"data                    : {fmt_bytes(totals['raw'])} -> "
              f"{fmt_bytes(totals['stored'])} "
              f"({runtime.compression_ratio_percent():.0f} % ratio; paper "
              f"reports ~600 %)")
        print(f"client-visible I/O time : "
              f"{fmt_time(runtime.client_write_seconds())}")
        print(f"dedicated-core I/O time : "
              f"{fmt_time(runtime.server_write_seconds())}")

        # Verify a file is readable and holds the reduced-precision data.
        with SHDFReader(runtime.output_files()[-1]) as reader:
            sample = reader.read_dataset(reader.datasets[0])
            print(f"\nverified {len(reader.datasets)} datasets in the last "
                  f"file; sample shape {sample.shape}")


if __name__ == "__main__":
    main()
