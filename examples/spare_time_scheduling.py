#!/usr/bin/env python3
"""Leveraging the dedicated cores' spare time (paper Section IV-D).

The dedicated cores are idle 75-99 % of the time. This example runs the
Damaris strategy on the simulated Kraken with the two spare-time features
the paper evaluates — lossless compression and contention-avoiding
transfer-slot scheduling — and prints their effect on the dedicated-core
write time and on storage volume (Figure 7's tradeoff).

Run:  python examples/spare_time_scheduling.py
"""

import numpy as np

from repro.core.server import DamarisOptions
from repro.experiments.harness import run_experiment
from repro.experiments.platforms import kraken_preset
from repro.experiments.report import render_table
from repro.formats.compression import GZIP_MODEL
from repro.strategies import DamarisStrategy
from repro.units import GB, fmt_time

CORES = 576
PHASES = 3


def main() -> None:
    preset = kraken_preset()
    variants = [
        ("plain", DamarisStrategy()),
        ("+ scheduling", DamarisStrategy(
            options=DamarisOptions(use_scheduler=True))),
        ("+ gzip", DamarisStrategy(
            compress_on_server=True,
            options=DamarisOptions(compression=GZIP_MODEL))),
        ("+ gzip + scheduling", DamarisStrategy(
            compress_on_server=True,
            options=DamarisOptions(compression=GZIP_MODEL,
                                   use_scheduler=True))),
    ]
    rows = []
    for label, strategy in variants:
        machine, fs, workload = preset.build(CORES, seed=9)
        result = run_experiment(machine, fs, workload, strategy,
                                write_phases=PHASES)
        deployment = strategy.deployment
        totals = deployment.total_bytes()
        rows.append({
            "variant": label,
            "dedicated write (avg)": fmt_time(
                float(np.mean(result.dedicated_write_times))),
            "spare": f"{100 * result.spare_fraction:.0f} %",
            "stored volume": f"{totals['out'] / GB:.2f} GB",
            "client write phase": fmt_time(result.avg_write_phase),
        })
        print(f"  {label}: done")

    print()
    print(render_table(rows))
    print("\nScheduling staggers the dedicated cores' writes into slots "
          "and lowers contention; compression trades dedicated-core time "
          "for a ~1.9x smaller footprint. Both are invisible to the "
          "simulation (constant client write phase).")


if __name__ == "__main__":
    main()
