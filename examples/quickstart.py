#!/usr/bin/env python3
"""Quickstart: Damaris in five minutes.

Runs the real, thread-based Damaris runtime on this machine: two emulated
12-core SMP nodes, one dedicated I/O core each. Clients hand mini-CM1
fields to their node's dedicated core through shared memory (a single
memcpy) and immediately return to "computing"; the dedicated cores
compress and persist asynchronously into SHDF files.

Run:  python examples/quickstart.py
"""

import os
import tempfile

import numpy as np

from repro.apps.cm1 import MiniCM1
from repro.core import DamarisConfig
from repro.formats import SHDFReader
from repro.runtime import DamarisRuntime
from repro.units import fmt_bytes, fmt_time

NODES = 2
CLIENTS_PER_NODE = 3  # compute cores per node (plus 1 dedicated core)
ITERATIONS = 4


def main() -> None:
    # 1. The simulation: a small warm-bubble storm, decomposed over the
    #    clients like CM1 splits its horizontal grid.
    model = MiniCM1(nx=48, ny=48, nz=24, seed=7)
    px, py = NODES * CLIENTS_PER_NODE, 1

    # 2. The Damaris configuration — the XML dialect of the paper, built
    #    programmatically here (DamarisConfig.from_xml parses the real
    #    thing; see tornado_simulation.py).
    config = DamarisConfig()
    sub = (model.nx // (px * py), model.ny, model.nz)
    config.add_layout("grid3d", "float", sub)
    for name in ("theta", "w", "qv"):
        config.add_variable(name, "grid3d", unit="SI",
                            description=f"CM1 field {name}")
    config.add_event("end_iteration", "compress")  # gzip on the I/O core
    config.buffer_size = 128 << 20

    with tempfile.TemporaryDirectory() as outdir:
        runtime = DamarisRuntime(config, output_dir=outdir, nodes=NODES,
                                 clients_per_node=CLIENTS_PER_NODE)
        print(f"Damaris up: {NODES} nodes x {CLIENTS_PER_NODE} clients "
              f"+ 1 dedicated core each\n")

        for iteration in range(ITERATIONS):
            model.step(3)  # the compute phase
            for client in runtime.clients:
                fields = model.subdomain(client.rank, px, py)
                for name in ("theta", "w", "qv"):
                    client.df_write(name, iteration,
                                    np.ascontiguousarray(fields[name]))
                client.df_signal("end_iteration", iteration)
            print(f"iteration {iteration}: max updraft "
                  f"{model.max_w():5.2f} m/s — data handed to the "
                  f"dedicated cores, simulation continues")

        runtime.shutdown()

        # 3. What happened behind the simulation's back.
        print()
        print(f"client-visible I/O time : "
              f"{fmt_time(runtime.client_write_seconds())} (total, all "
              f"clients)")
        print(f"dedicated-core I/O time : "
              f"{fmt_time(runtime.server_write_seconds())} (hidden from "
              f"the simulation)")
        totals = runtime.total_bytes()
        print(f"data written            : {fmt_bytes(totals['raw'])} raw "
              f"-> {fmt_bytes(totals['stored'])} stored "
              f"(ratio {runtime.compression_ratio_percent():.0f} %, paper "
              f"convention)")
        print(f"files                   : {len(runtime.output_files())} "
              f"(one per node per iteration)")

        # 4. Read one file back to prove the data survived.
        with SHDFReader(runtime.output_files()[0]) as reader:
            name = reader.datasets[0]
            array = reader.read_dataset(name)
            print(f"\nread back {name!r}: shape {array.shape}, "
                  f"mean {array.mean():.4f}")


if __name__ == "__main__":
    main()
