#!/usr/bin/env python3
"""Inline steering: external events and dynamic-size variables.

Two Damaris capabilities beyond the basic write path:

- **steering events** — the paper's event queue accepts events "sent
  either by the simulation or by external tools". Here an external
  monitor (think: a scientist at a dashboard) asks the dedicated cores
  for an immediate snapshot mid-run, without the simulation's
  cooperation;
- **dynamic-size variables** — "arrays that don't have a static shape
  (which is the case in particle-based simulations)": each client tracks
  a different, growing number of tracer particles and writes exactly
  that many.

Run:  python examples/steering.py
"""

import tempfile

import numpy as np

from repro.core import DamarisConfig
from repro.runtime import DamarisRuntime
from repro.tools.shdfls import describe_file
from repro.formats import SHDFReader

CLIENTS = 3
MAX_PARTICLES = 10_000


def main() -> None:
    config = DamarisConfig()
    # A dynamic layout: dtype + maximum extent; actual writes are smaller.
    config.add_layout("particles", "float", (MAX_PARTICLES, 3))
    config.add_variable("tracers", "particles",
                        description="tracer particle positions")
    config.add_event("end_iteration", "persist")
    config.add_event("snapshot", "persist")  # fired externally
    config.buffer_size = 64 << 20

    rng = np.random.default_rng(3)
    with tempfile.TemporaryDirectory() as outdir:
        runtime = DamarisRuntime(config, output_dir=outdir, nodes=1,
                                 clients_per_node=CLIENTS)

        counts = [200, 500, 900]  # per-client particle populations
        for iteration in range(3):
            for client, count in zip(runtime.clients, counts):
                # Populations grow as the storm entrains more tracers.
                n = count * (iteration + 1)
                positions = rng.random((n, 3), dtype=np.float32)
                client.df_write_dynamic("tracers", iteration, positions)
            if iteration == 1:
                # The external tool wants this iteration NOW — before the
                # clients have signalled anything.
                print("external steering: snapshot requested for "
                      f"iteration {iteration}")
                runtime.signal("snapshot", iteration)
            else:
                for client in runtime.clients:
                    client.df_signal("end_iteration", iteration)
        runtime.shutdown()

        print(f"\n{len(runtime.output_files())} files written; last one:\n")
        with SHDFReader(runtime.output_files()[-1]) as reader:
            print(describe_file(reader))
            name = reader.datasets[0]
            array = reader.read_dataset(name)
            print(f"\n{name!r} holds {array.shape[0]} particles "
                  f"(layout maximum: {MAX_PARTICLES}) — only the real "
                  "bytes crossed shared memory.")


if __name__ == "__main__":
    main()
