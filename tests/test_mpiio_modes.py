"""Focused tests for the MPI-IO collective modes (two-phase rounds and
direct data sieving) and offset bookkeeping."""

import pytest

from repro.cluster import Machine, MachineSpec, NoNoise
from repro.errors import MPIError
from repro.mpi import Communicator
from repro.mpi.mpiio import (
    CollectiveFile,
    collective_close,
    collective_open,
    collective_write,
    collective_write_direct,
)
from repro.storage import Lustre, MetadataSpec, PVFS, TargetSpec
from repro.units import GiB, KiB, MiB


def make_platform(fs_cls=Lustre, nodes=2, cores=4, ntargets=4):
    machine = Machine(
        MachineSpec(nodes=nodes, cores_per_node=cores,
                    mem_bandwidth=8 * GiB, nic_bandwidth=2 * GiB),
        seed=17, noise=NoNoise(), completion_slack=0.0, fairness_slack=0.0)
    fs = fs_cls(machine, ntargets=ntargets,
                target_spec=TargetSpec(straggler_sigma=0.0,
                                       request_latency=0.0,
                                       object_half=1e9, stream_half=1e9,
                                       queue_depth=0),
                metadata_spec=MetadataSpec(sigma=0.0))
    comm = Communicator(machine, machine.all_cores())
    return machine, fs, comm


def run_ranks(machine, comm, rank_fn):
    results = [None] * comm.size

    def wrap(rank):
        results[rank] = yield from rank_fn(rank)

    for rank in range(comm.size):
        machine.sim.process(wrap(rank))
    machine.sim.run()
    return results


class TestTwoPhaseRounds:
    def test_cb_buffer_validation(self):
        machine, fs, comm = make_platform()

        def prog(rank):
            cfile = yield from collective_open(comm, rank, fs, "f")
            yield from collective_write(cfile, rank, 1 * MiB, cb_buffer=0)

        with pytest.raises(MPIError):
            run_ranks(machine, comm, prog)

    def test_small_cb_buffer_many_rounds_same_bytes(self):
        machine, fs, comm = make_platform()

        def prog(rank):
            cfile = yield from collective_open(comm, rank, fs, "f")
            yield from collective_write(cfile, rank, 2 * MiB,
                                        cb_buffer=256 * KiB)
            yield from collective_close(cfile, rank)

        run_ranks(machine, comm, prog)
        assert fs.lookup("f").size == comm.size * 2 * MiB
        # Chunked rounds issue many requests: 2 aggregators x 8 MiB
        # regions in 256 KiB rounds is 64 writes (x stripes touched).
        total_requests = sum(t.requests_served for t in fs.targets)
        assert total_requests >= 64

    def test_offsets_accumulate_across_phases(self):
        machine, fs, comm = make_platform()
        sizes = [1 * MiB, 3 * MiB, 2 * MiB]

        def prog(rank):
            cfile = yield from collective_open(comm, rank, fs, "f")
            for size in sizes:
                yield from collective_write(cfile, rank, size)
            yield from collective_close(cfile, rank)
            return cfile

        results = run_ranks(machine, comm, prog)
        cfile = results[0]
        assert cfile.offset_of_phase(0) == 0
        assert cfile.offset_of_phase(1) == comm.size * 1 * MiB
        assert cfile.offset_of_phase(2) == comm.size * 4 * MiB
        assert fs.lookup("f").size == comm.size * 6 * MiB

    def test_aggregator_mapping_covers_all_ranks(self):
        machine, fs, comm = make_platform(nodes=3, cores=4)

        def prog(rank):
            cfile = yield from collective_open(comm, rank, fs, "f")
            yield from collective_close(cfile, rank)
            return cfile

        cfile = run_ranks(machine, comm, prog)[0]
        assert len(cfile.aggregators) == 3  # one per node
        for rank in range(comm.size):
            assert cfile.aggregator_of(rank) in cfile.aggregators


class TestDirectMode:
    def test_direct_needs_all_ranks_open(self):
        machine, fs, comm = make_platform(fs_cls=PVFS)

        def prog(rank):
            cfile = yield from collective_open(comm, rank, fs, "f")
            yield from collective_write_direct(cfile, rank, 1 * MiB)

        with pytest.raises(MPIError):
            run_ranks(machine, comm, prog)

    def test_direct_every_rank_writes_its_region(self):
        machine, fs, comm = make_platform(fs_cls=PVFS)

        def prog(rank):
            cfile = yield from collective_open(comm, rank, fs, "f",
                                               all_ranks_write=True)
            yield from collective_write_direct(cfile, rank, 1 * MiB)
            yield from collective_close(cfile, rank)

        run_ranks(machine, comm, prog)
        assert fs.lookup("f").size == comm.size * 1 * MiB
        assert fs.bytes_written == comm.size * 1 * MiB

    def test_sieve_validation(self):
        machine, fs, comm = make_platform(fs_cls=PVFS)

        def prog(rank):
            cfile = yield from collective_open(comm, rank, fs, "f",
                                               all_ranks_write=True)
            yield from collective_write_direct(cfile, rank, 1 * MiB,
                                               sieve_buffer=0)

        with pytest.raises(MPIError):
            run_ranks(machine, comm, prog)

    def test_smaller_sieve_is_slower(self):
        """Data sieving granularity caps the per-stream rate (visible
        when the stream is not already bandwidth-share-limited)."""
        durations = {}
        for sieve in (64 * KiB, 16 * MiB):
            machine, fs, comm = make_platform(fs_cls=PVFS, nodes=1,
                                              cores=1)

            def prog(rank, sieve=sieve):
                cfile = yield from collective_open(comm, rank, fs, "f",
                                                   all_ranks_write=True)
                yield from collective_write_direct(cfile, rank, 4 * MiB,
                                                   sieve_buffer=sieve)
                yield from collective_close(cfile, rank)

            run_ranks(machine, comm, prog)
            durations[sieve] = machine.sim.now
        assert durations[64 * KiB] > durations[16 * MiB]


