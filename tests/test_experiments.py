"""Tests for the experiments layer: reports, presets, figure plumbing."""

import os

import pytest

from repro.errors import ReproError
from repro.experiments.figures import fast_mode, kraken_scales, model_breakeven
from repro.experiments.platforms import (
    blueprint_preset,
    grid5000_preset,
    kraken_preset,
)
from repro.experiments.report import FigureReport, render_table


class TestRenderTable:
    def test_empty(self):
        assert render_table([]) == "(no rows)"

    def test_alignment_and_order(self):
        rows = [{"name": "a", "value": 1.5}, {"name": "bb", "value": 20.0}]
        text = render_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "value" in lines[0]
        assert len(lines) == 4  # header, rule, 2 rows

    def test_explicit_columns_subset(self):
        rows = [{"a": 1, "b": 2}]
        text = render_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_float_formatting(self):
        rows = [{"x": 0.000123, "y": 123456.0, "z": 1.25}]
        text = render_table(rows)
        assert "0.000123" in text
        assert "1.23e+05" in text or "123456" in text
        assert "1.25" in text

    def test_missing_cell_is_blank(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        assert render_table(rows)  # must not raise


class TestFigureReport:
    def test_render_contains_everything(self):
        report = FigureReport(figure="Figure X", title="A title",
                              rows=[{"k": 1}],
                              paper_claims=["claim one"])
        report.add_note("a note")
        text = report.render()
        assert "Figure X" in text
        assert "A title" in text
        assert "claim one" in text
        assert "a note" in text
        assert "k" in text


class TestPresets:
    @pytest.mark.parametrize("factory,cores_per_node", [
        (kraken_preset, 12),
        (grid5000_preset, 24),
        (blueprint_preset, 16),
    ])
    def test_build_shapes(self, factory, cores_per_node):
        preset = factory()
        assert preset.cores_per_node == cores_per_node
        machine, fs, workload = preset.build(2 * cores_per_node, seed=0)
        assert machine.total_cores == 2 * cores_per_node
        assert len(fs.targets) >= 1
        assert workload.bytes_per_core() > 0

    def test_core_count_must_be_multiple(self):
        with pytest.raises(ReproError):
            kraken_preset().build(100)

    def test_same_seed_same_machine_randomness(self):
        preset = kraken_preset()
        m1, _, _ = preset.build(24, seed=5)
        m2, _, _ = preset.build(24, seed=5)
        a = m1.streams.stream("x").random(4)
        b = m2.streams.stream("x").random(4)
        assert (a == b).all()

    def test_collective_modes(self):
        assert kraken_preset().collective_mode == "two-phase"
        assert grid5000_preset().collective_mode == "direct"

    def test_interference_attached(self):
        preset = kraken_preset()
        machine, fs, _ = preset.build(24, seed=0)
        # Interference modulates target capacity over time.
        machine.sim.run(until=200.0)
        factors = [t.interference_factor for t in fs.targets]
        assert any(f < 1.0 for f in factors)


class TestFastMode:
    def test_env_toggle(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAST", raising=False)
        assert not fast_mode()
        assert kraken_scales()[-1] == 9216
        monkeypatch.setenv("REPRO_FAST", "1")
        assert fast_mode()
        assert kraken_scales()[-1] < 9216
        monkeypatch.setenv("REPRO_FAST", "0")
        assert not fast_mode()


class TestModelBreakevenDriver:
    def test_rows_and_paper_anchor(self):
        report = model_breakeven()
        by_cores = {row["cores_per_node"]: row for row in report.rows}
        assert by_cores[24]["breakeven_percent"] == pytest.approx(4.35,
                                                                  abs=0.01)
        assert by_cores[24]["pays_off_at_5pct"]
        assert not by_cores[8]["pays_off_at_5pct"]
        assert report.render()
