"""Integration tests for the Lustre / PVFS / GPFS models."""

import pytest

from repro.cluster import Machine, MachineSpec
from repro.errors import (
    FileExistsInFSError,
    FileNotFoundInFSError,
    StorageError,
)
from repro.storage import GPFS, Lustre, PVFS, MetadataSpec, TargetSpec
from repro.units import GiB, MiB


def make_machine(nodes=2, cores=4):
    return Machine(MachineSpec(nodes=nodes, cores_per_node=cores,
                               mem_bandwidth=8 * GiB, nic_bandwidth=2 * GiB),
                   seed=11, completion_slack=0.0, fairness_slack=0.0)


def quiet_target_spec(**kwargs):
    defaults = dict(straggler_sigma=0.0, request_latency=0.0,
                    object_half=1e9, stream_half=1e9)
    defaults.update(kwargs)
    return TargetSpec(**defaults)


def run_process(machine, generator):
    return machine.sim.run_until_complete(machine.sim.process(generator))


class TestNamespace:
    def test_create_open_close_write(self):
        machine = make_machine()
        fs = Lustre(machine, ntargets=4, target_spec=quiet_target_spec())
        node = machine.nodes[0]

        def scenario():
            handle = yield machine.sim.process(fs.create(node, "a/b.h5"))
            written = yield machine.sim.process(fs.write(handle, 0, 8 * MiB))
            yield machine.sim.process(fs.close(handle))
            return written

        assert run_process(machine, scenario()) == 8 * MiB
        assert fs.exists("a/b.h5")
        assert fs.lookup("a/b.h5").size == 8 * MiB
        assert fs.file_count == 1
        assert fs.files_created == 1

    def test_create_duplicate_raises(self):
        machine = make_machine()
        fs = Lustre(machine, ntargets=2, target_spec=quiet_target_spec())
        node = machine.nodes[0]

        def scenario():
            yield machine.sim.process(fs.create(node, "x"))
            yield machine.sim.process(fs.create(node, "x"))

        with pytest.raises(FileExistsInFSError):
            run_process(machine, scenario())

    def test_open_missing_raises(self):
        machine = make_machine()
        fs = Lustre(machine, ntargets=2, target_spec=quiet_target_spec())

        def scenario():
            yield machine.sim.process(fs.open(machine.nodes[0], "missing"))

        with pytest.raises(FileNotFoundInFSError):
            run_process(machine, scenario())

    def test_double_close_raises(self):
        machine = make_machine()
        fs = Lustre(machine, ntargets=2, target_spec=quiet_target_spec())
        node = machine.nodes[0]

        def scenario():
            handle = yield machine.sim.process(fs.create(node, "f"))
            yield machine.sim.process(fs.close(handle))
            yield machine.sim.process(fs.close(handle))

        with pytest.raises(StorageError):
            run_process(machine, scenario())

    def test_write_on_closed_handle_raises(self):
        machine = make_machine()
        fs = Lustre(machine, ntargets=2, target_spec=quiet_target_spec())
        node = machine.nodes[0]

        def scenario():
            handle = yield machine.sim.process(fs.create(node, "f"))
            yield machine.sim.process(fs.close(handle))
            yield machine.sim.process(fs.write(handle, 0, 1024))

        with pytest.raises(StorageError):
            run_process(machine, scenario())

    def test_unlink(self):
        machine = make_machine()
        fs = Lustre(machine, ntargets=2, target_spec=quiet_target_spec())
        node = machine.nodes[0]

        def scenario():
            handle = yield machine.sim.process(fs.create(node, "gone"))
            yield machine.sim.process(fs.close(handle))
            yield machine.sim.process(fs.unlink("gone"))

        run_process(machine, scenario())
        assert not fs.exists("gone")


class TestStripingBalance:
    def test_write_spreads_over_stripe_targets(self):
        machine = make_machine()
        fs = Lustre(machine, ntargets=8, target_spec=quiet_target_spec(),
                    default_stripe_count=4, default_stripe_size=1 * MiB)
        node = machine.nodes[0]

        def scenario():
            handle = yield machine.sim.process(fs.create(node, "f"))
            yield machine.sim.process(fs.write(handle, 0, 64 * MiB))
            yield machine.sim.process(fs.close(handle))

        run_process(machine, scenario())
        balance = fs.target_balance()
        used = [b for b in balance if b > 0]
        assert len(used) == 4
        assert max(used) == min(used)

    def test_files_rotate_first_target(self):
        machine = make_machine()
        fs = Lustre(machine, ntargets=8, target_spec=quiet_target_spec(),
                    default_stripe_count=2)
        node = machine.nodes[0]

        def scenario():
            for i in range(4):
                handle = yield machine.sim.process(fs.create(node, f"f{i}"))
                yield machine.sim.process(fs.write(handle, 0, 4 * MiB))
                yield machine.sim.process(fs.close(handle))

        run_process(machine, scenario())
        assert all(b > 0 for b in fs.target_balance())


class TestMetadataSerialisation:
    def test_lustre_single_mds_serialises_creates(self):
        machine = make_machine(nodes=4, cores=4)
        spec = MetadataSpec(create=10e-3, sigma=0.0, concurrency=1)
        fs = Lustre(machine, ntargets=4, target_spec=quiet_target_spec(),
                    metadata_spec=spec)
        finished = []

        def creator(i):
            node = machine.nodes[i % 4]
            yield machine.sim.process(fs.create(node, f"file-{i}"))
            finished.append(machine.sim.now)

        for i in range(20):
            machine.sim.process(creator(i))
        machine.sim.run()
        # 20 creates at 10 ms through one queue: last finishes near 200 ms.
        assert max(finished) == pytest.approx(0.2, rel=0.05)

    def test_pvfs_distributes_creates(self):
        machine = make_machine(nodes=4, cores=4)
        spec = MetadataSpec(create=10e-3, sigma=0.0, concurrency=1)
        fs = PVFS(machine, ntargets=5, target_spec=quiet_target_spec(),
                  metadata_spec=spec)
        finished = []

        def creator(i):
            node = machine.nodes[i % 4]
            yield machine.sim.process(fs.create(node, f"file-{i}"))
            finished.append(machine.sim.now)

        for i in range(20):
            machine.sim.process(creator(i))
        machine.sim.run()
        # Hashed over 5 metadata servers: much faster than serialised.
        assert max(finished) < 0.15

    def test_pvfs_has_no_locks(self):
        machine = make_machine()
        fs = PVFS(machine, ntargets=3, target_spec=quiet_target_spec())
        assert fs.locks is None

    def test_gpfs_has_locks_and_few_targets(self):
        machine = make_machine()
        fs = GPFS(machine, ntargets=2, target_spec=quiet_target_spec())
        assert fs.locks is not None
        assert len(fs.targets) == 2


class TestSharedFileLocking:
    def test_shared_writers_to_same_stripe_pay_revocations(self):
        machine = make_machine()
        fs = Lustre(machine, ntargets=2, target_spec=quiet_target_spec(),
                    default_stripe_size=64 * MiB, default_stripe_count=1)
        nodes = machine.nodes

        def writers():
            handle_a = yield machine.sim.process(fs.create(nodes[0], "shared"))
            handle_b = yield machine.sim.process(fs.open(nodes[1], "shared"))

            def write_with(handle, offset):
                yield machine.sim.process(fs.write(handle, offset, 1 * MiB))

            proc_a = machine.sim.process(write_with(handle_a, 0))
            proc_b = machine.sim.process(write_with(handle_b, 2 * MiB))
            yield proc_a
            yield proc_b

        run_process(machine, writers())
        # Both writes hit stripe 0 (64 MiB stripes): one revocation.
        assert fs.locks.revocations >= 1

    def test_exclusive_file_pays_no_lock_overhead(self):
        machine = make_machine()
        fs = Lustre(machine, ntargets=2, target_spec=quiet_target_spec(),
                    default_stripe_size=1 * MiB)
        node = machine.nodes[0]

        def scenario():
            handle = yield machine.sim.process(fs.create(node, "solo"))
            yield machine.sim.process(fs.write(handle, 0, 16 * MiB))
            yield machine.sim.process(fs.close(handle))

        run_process(machine, scenario())
        assert fs.locks.acquisitions == 0


class TestExpansiveLocks:
    def test_object_grant_conflicts_and_flushes(self):
        from repro.storage.locks import ExtentLockManager
        machine = make_machine()
        locks = ExtentLockManager(machine, revoke_latency=1e-3,
                                  flush_bandwidth=10e6, expansive=True)

        def scenario():
            # Owner 1 writes 10 MB to target 0; owner 2 then conflicts and
            # must wait for the 1 s flush plus the revoke round-trip.
            yield from locks.acquire_expansive(0, owner=1,
                                               target_bytes={0: 10e6})
            start = machine.sim.now
            yield from locks.acquire_expansive(0, owner=2,
                                               target_bytes={0: 1e6})
            return machine.sim.now - start

        elapsed = run_process(machine, scenario())
        assert elapsed == pytest.approx(1.001, rel=1e-3)
        assert locks.revocations == 1

    def test_same_owner_never_conflicts(self):
        from repro.storage.locks import ExtentLockManager
        machine = make_machine()
        locks = ExtentLockManager(machine, expansive=True)

        def scenario():
            for _ in range(5):
                yield from locks.acquire_expansive(0, owner=1,
                                                   target_bytes={0: 1e6,
                                                                 1: 1e6})
            return machine.sim.now

        assert run_process(machine, scenario()) == 0.0
        assert locks.revocations == 0


class TestRead:
    def test_read_returns_bytes(self):
        machine = make_machine()
        fs = Lustre(machine, ntargets=4, target_spec=quiet_target_spec())
        node = machine.nodes[0]

        def scenario():
            handle = yield machine.sim.process(fs.create(node, "f"))
            yield machine.sim.process(fs.write(handle, 0, 8 * MiB))
            got = yield machine.sim.process(fs.read(handle, 0, 8 * MiB))
            return got

        assert run_process(machine, scenario()) == 8 * MiB
