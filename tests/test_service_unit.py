"""Unit tests for the service building blocks (no server, no sockets).

Covers the pieces :mod:`repro.service.server` composes: the priority
queue's ordering/cancellation/close semantics, token-bucket arithmetic
under an injected clock, quota admission, the Prometheus registry's
exposition format, typed-error wire round-trips, and job payload
validation. The full wire path is exercised in ``test_service.py``.
"""

import asyncio
import json

import pytest

from repro.service.errors import (
    InvalidSpecError,
    JobNotFinishedError,
    QuotaExceededError,
    RateLimitedError,
    ServiceDrainingError,
    ServiceError,
    UnknownJobError,
    WorkerCrashedError,
    error_from_payload,
    error_payload,
)
from repro.service.jobs import Job, validate_job_payload
from repro.service.metrics import MetricsRegistry
from repro.service.queue import JobQueue, QueueClosed
from repro.service.quotas import QuotaManager, TenantPolicy, TokenBucket
from repro.service.testing import FakeClock, make_spec


def run(coro):
    return asyncio.run(coro)


# --------------------------------------------------------------------- #
# JobQueue
# --------------------------------------------------------------------- #
def test_queue_priority_then_fifo():
    async def scenario():
        q = JobQueue()
        await q.put("low-a", 0)
        await q.put("high", 5)
        await q.put("low-b", 0)
        return [await q.get() for _ in range(3)]

    assert run(scenario()) == ["high", "low-a", "low-b"]


def test_queue_get_waits_for_put():
    async def scenario():
        q = JobQueue()

        async def put_later():
            await asyncio.sleep(0.01)
            await q.put("x")

        getter = asyncio.ensure_future(q.get())
        await asyncio.gather(put_later(), getter)
        return getter.result()

    assert run(scenario()) == "x"


def test_queue_remove_tombstones_without_reordering():
    async def scenario():
        q = JobQueue()
        for name in ("a", "b", "c"):
            await q.put(name)
        removed = await q.remove(lambda item: item == "b")
        assert removed == ["b"]
        assert q.depth == 2
        return [await q.get() for _ in range(2)]

    assert run(scenario()) == ["a", "c"]


def test_queue_close_drains_then_raises():
    async def scenario():
        q = JobQueue()
        await q.put("pre-close")
        await q.close()
        with pytest.raises(QueueClosed):
            await q.put("post-close")
        drained = await q.get()
        with pytest.raises(QueueClosed):
            await q.get()
        return drained

    assert run(scenario()) == "pre-close"


def test_queue_close_wakes_blocked_getter():
    async def scenario():
        q = JobQueue()
        getter = asyncio.ensure_future(q.get())
        await asyncio.sleep(0.01)
        await q.close()
        with pytest.raises(QueueClosed):
            await getter

    run(scenario())


# --------------------------------------------------------------------- #
# TokenBucket / QuotaManager
# --------------------------------------------------------------------- #
def test_token_bucket_spends_and_refills():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=20.0, clock=clock)
    assert bucket.try_acquire(20.0) == 0.0  # full burst available
    retry = bucket.try_acquire(5.0)
    assert retry == pytest.approx(0.5)  # 5 tokens at 10/s
    clock.advance(0.5)
    assert bucket.try_acquire(5.0) == 0.0
    assert bucket.tokens == pytest.approx(0.0)


def test_token_bucket_caps_at_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=100.0, burst=10.0, clock=clock)
    clock.advance(3600.0)
    assert bucket.tokens == pytest.approx(10.0)


def test_quota_specs_per_job_cap():
    quotas = QuotaManager(TenantPolicy(max_specs_per_job=2),
                          clock=FakeClock())
    with pytest.raises(QuotaExceededError) as info:
        quotas.admit("t", 3)
    assert info.value.details["limit"] == "max_specs_per_job"
    assert quotas.usage_for("t").jobs_rejected == 1


def test_quota_active_jobs_cap_and_release():
    quotas = QuotaManager(TenantPolicy(max_active_jobs=1, rate=0),
                          clock=FakeClock())
    quotas.admit("t", 1)
    with pytest.raises(QuotaExceededError):
        quotas.admit("t", 1)
    quotas.release("t")
    quotas.admit("t", 1)  # slot freed
    # other tenants are unaffected throughout
    quotas.admit("other", 1)


def test_quota_rate_limit_and_recovery():
    clock = FakeClock()
    quotas = QuotaManager(TenantPolicy(max_active_jobs=0, rate=2.0,
                                       burst=4.0), clock=clock)
    quotas.admit("t", 4)  # spends the burst
    with pytest.raises(RateLimitedError) as info:
        quotas.admit("t", 2)
    assert info.value.retry_after == pytest.approx(1.0)
    clock.advance(info.value.retry_after)
    quotas.admit("t", 2)  # recovered exactly at the advertised time


def test_quota_overrides_replace_default():
    quotas = QuotaManager(TenantPolicy(max_specs_per_job=1),
                          overrides={"big": TenantPolicy(
                              max_specs_per_job=100)},
                          clock=FakeClock())
    quotas.admit("big", 50)
    with pytest.raises(QuotaExceededError):
        quotas.admit("small", 50)


# --------------------------------------------------------------------- #
# Metrics registry
# --------------------------------------------------------------------- #
def test_metrics_render_format():
    reg = MetricsRegistry()
    jobs = reg.counter("jobs_total", "Jobs finished.", ("state",))
    depth = reg.gauge("queue_depth", "Queued jobs.")
    jobs.inc(state="done")
    jobs.inc(2, state="failed")
    depth.set(3)
    page = reg.render()
    assert "# HELP jobs_total Jobs finished.\n# TYPE jobs_total counter" \
        in page
    assert 'jobs_total{state="done"} 1' in page
    assert 'jobs_total{state="failed"} 2' in page
    assert "# TYPE queue_depth gauge" in page
    assert "queue_depth 3" in page
    assert page.endswith("\n")


def test_metrics_unlabelled_metric_renders_zero():
    reg = MetricsRegistry()
    reg.counter("touched_total", "Never incremented.")
    assert "touched_total 0" in reg.render()


def test_metrics_label_escaping_and_sorting():
    reg = MetricsRegistry()
    c = reg.counter("odd_total", "Odd labels.", ("name",))
    c.inc(name='quo"te\nnew\\slash')
    c.inc(name="aaa")
    page = reg.render()
    assert 'odd_total{name="quo\\"te\\nnew\\\\slash"} 1' in page
    assert page.index('name="aaa"') < page.index('name="quo')


def test_metrics_counter_rejects_decrease_and_conflicts():
    reg = MetricsRegistry()
    c = reg.counter("n_total", "N.")
    with pytest.raises(ValueError):
        c.inc(-1)
    assert reg.counter("n_total", "N.") is c  # idempotent
    with pytest.raises(ValueError):
        reg.gauge("n_total", "N.")  # type conflict
    with pytest.raises(ValueError):
        reg.counter("n_total", "N.", ("tenant",))  # labelset conflict


def test_metrics_float_and_int_formatting():
    reg = MetricsRegistry()
    g = reg.gauge("ratio", "R.")
    g.set(0.5)
    assert "ratio 0.5" in reg.render()
    g.set(2.0)
    assert "ratio 2\n" in reg.render()


# --------------------------------------------------------------------- #
# Typed errors over the wire
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("exc", [
    InvalidSpecError("bad spec", spec_index=3),
    UnknownJobError("no such job", job_id="job-9"),
    JobNotFinishedError("still running", state="running"),
    QuotaExceededError("over quota", limit="max_active_jobs"),
    RateLimitedError("slow down", retry_after=1.25),
    ServiceDrainingError("draining"),
    WorkerCrashedError("pool worker died"),
])
def test_error_round_trip(exc):
    rebuilt = error_from_payload(
        json.loads(json.dumps(error_payload(exc))), exc.status)
    assert type(rebuilt) is type(exc)
    assert rebuilt.message == exc.message
    assert rebuilt.details == exc.details
    if isinstance(exc, RateLimitedError):
        assert rebuilt.retry_after == pytest.approx(1.25)


def test_error_unknown_kind_degrades_to_base():
    rebuilt = error_from_payload(
        {"error": {"kind": "from_the_future", "message": "m",
                   "details": {"x": 1}}}, 500)
    assert type(rebuilt) is ServiceError
    assert rebuilt.details == {"x": 1}


def test_error_malformed_payload_degrades_to_base():
    rebuilt = error_from_payload("not json we expected", 502)
    assert isinstance(rebuilt, ServiceError)
    assert "502" in rebuilt.message


# --------------------------------------------------------------------- #
# Job payload validation and the job model
# --------------------------------------------------------------------- #
def test_validate_payload_rejects_junk():
    with pytest.raises(InvalidSpecError):
        validate_job_payload(["not", "a", "dict"])
    with pytest.raises(InvalidSpecError):
        validate_job_payload({"specs": []})
    with pytest.raises(InvalidSpecError):
        validate_job_payload({"specs": [make_spec()], "nope": 1})
    with pytest.raises(InvalidSpecError):
        validate_job_payload({"specs": [make_spec()], "priority": 99})
    with pytest.raises(InvalidSpecError):
        validate_job_payload({"specs": [make_spec()], "priority": True})


def test_validate_payload_pinpoints_bad_spec():
    bad = make_spec()
    bad["ncores"] = -1
    with pytest.raises(InvalidSpecError) as info:
        validate_job_payload({"specs": [make_spec(), bad]})
    assert info.value.details["spec_index"] == 1
    assert "specs[1]" in info.value.message


def test_job_progress_and_events():
    clock = FakeClock()
    job = Job(tenant="t", specs=[make_spec(seed=i) for i in range(3)],
              clock=clock)
    assert job.state == "queued"
    assert job.events[0]["kind"] == "queued"
    job.mark_running()
    job.record_result(1, {"run_time": 1.0}, "cache")
    job.record_result(0, {"run_time": 2.0}, "pool")
    snap = job.snapshot()
    assert snap["progress"] == {"done": 2, "total": 3, "cache_hits": 1,
                                "computed": 1}
    job.record_result(2, {"run_time": 3.0}, "pool")
    job.finish("done")
    kinds = [e["kind"] for e in job.events]
    assert kinds == ["queued", "started", "progress", "progress",
                     "progress", "done"]
    seqs = [e["seq"] for e in job.events]
    assert seqs == list(range(len(job.events)))
    dones = [e["done"] for e in job.events if e["kind"] == "progress"]
    assert dones == [1, 2, 3]  # strictly monotonic
    assert job.events_since(3) == job.events[4:]
    assert job.events_since(-5) == job.events
