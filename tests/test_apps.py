"""Tests for the mini-CM1 kernel and the workload models."""

import numpy as np
import pytest

from repro.apps import CM1Workload, IOBenchWorkload, MiniCM1
from repro.errors import ReproError
from repro.units import MiB


class TestMiniCM1:
    def test_grid_validation(self):
        with pytest.raises(ReproError):
            MiniCM1(2, 8, 8)

    def test_fields_have_declared_shapes(self):
        model = MiniCM1(16, 12, 8)
        for name, field in model.variables().items():
            assert field.shape == (16, 12, 8), name
            assert field.dtype == np.float32, name

    def test_step_advances_and_stays_finite(self):
        model = MiniCM1(16, 16, 12, seed=3)
        model.step(5)
        assert model.iteration == 5
        for name, field in model.variables().items():
            assert np.all(np.isfinite(field)), name

    def test_warm_bubble_rises(self):
        """Buoyancy must generate an updraft from the warm bubble."""
        model = MiniCM1(24, 24, 16, seed=0)
        assert model.max_w() == 0.0
        model.step(10)
        assert model.max_w() > 0.0

    def test_deterministic_given_seed(self):
        a = MiniCM1(12, 12, 8, seed=9)
        b = MiniCM1(12, 12, 8, seed=9)
        a.step(3)
        b.step(3)
        assert np.array_equal(a.theta, b.theta)

    def test_bytes_per_output(self):
        model = MiniCM1(16, 16, 8)
        assert model.bytes_per_output == 6 * 16 * 16 * 8 * 4

    def test_subdomain_decomposition(self):
        model = MiniCM1(16, 16, 8)
        pieces = [model.subdomain(rank, 2, 2) for rank in range(4)]
        # Reassemble theta from the four subdomains.
        top = np.concatenate([pieces[0]["theta"], pieces[1]["theta"]], axis=0)
        bottom = np.concatenate([pieces[2]["theta"], pieces[3]["theta"]],
                                axis=0)
        whole = np.concatenate([top, bottom], axis=1)
        assert np.array_equal(whole, model.theta)

    def test_subdomain_validation(self):
        model = MiniCM1(16, 16, 8)
        with pytest.raises(ReproError):
            model.subdomain(4, 2, 2)
        with pytest.raises(ReproError):
            model.subdomain(0, 3, 2)  # 16 not divisible by 3

    def test_fields_compress_realistically(self):
        """CM1-like fields must be smooth enough for gzip to bite —
        the premise of the paper's 187 % ratio."""
        import zlib
        model = MiniCM1(32, 32, 24, seed=1)
        model.step(10)
        raw = b"".join(f.tobytes() for f in model.variables().values())
        compressed = zlib.compress(raw, 4)
        # Aggregate ratio (paper convention) comfortably above 150 %.
        assert len(raw) / len(compressed) > 1.5


class TestCM1Workload:
    def test_validation(self):
        with pytest.raises(ReproError):
            CM1Workload(subdomain=(0, 4, 4))
        with pytest.raises(ReproError):
            CM1Workload(seconds_per_iteration=0)
        with pytest.raises(ReproError):
            CM1Workload(iterations_per_output=0)
        with pytest.raises(ReproError):
            CM1Workload(variables=())

    def test_kraken_preset_volume(self):
        workload = CM1Workload.kraken()
        assert workload.points_per_core == 44 * 44 * 200
        # 6 float32 variables -> 24 B per point.
        assert workload.bytes_per_core() == 44 * 44 * 200 * 24

    def test_grid5000_is_24mb_per_process(self):
        workload = CM1Workload.grid5000()
        assert workload.bytes_per_core() == pytest.approx(24e6, rel=0.05)
        # 672 cores -> the paper's 15.8 GB per write phase.
        assert workload.total_bytes(672) == pytest.approx(15.8e9, rel=0.05)

    def test_dilation(self):
        workload = CM1Workload.kraken()
        assert workload.dilation(12, 1) == pytest.approx(12 / 11)
        assert workload.dilation(12, 0) == 1.0
        with pytest.raises(ReproError):
            workload.dilation(2, 2)

    def test_dilation_scales_volume_and_time(self):
        workload = CM1Workload.kraken()
        d = workload.dilation(12, 1)
        assert workload.bytes_per_core(d) == pytest.approx(
            workload.bytes_per_core() * d, rel=1e-6)
        assert workload.compute_block_seconds(d) == pytest.approx(
            workload.compute_block_seconds() * d)

    def test_variable_bytes_sum_to_total(self):
        workload = CM1Workload.grid5000()
        assert sum(workload.variable_bytes().values()) == \
            workload.bytes_per_core()

    def test_blueprint_variable_scaling(self):
        small = CM1Workload.blueprint(nvariables=2)
        large = CM1Workload.blueprint(nvariables=6)
        assert large.bytes_per_core() == 3 * small.bytes_per_core()
        with pytest.raises(ReproError):
            CM1Workload.blueprint(nvariables=0)


class TestIOBenchWorkload:
    def test_exact_volume(self):
        workload = IOBenchWorkload(bytes_per_rank=8 * MiB)
        assert workload.bytes_per_core() == 8 * MiB
        assert list(workload.variable_bytes()) == ["payload"]

    def test_validation(self):
        with pytest.raises(ReproError):
            IOBenchWorkload(bytes_per_rank=2)
