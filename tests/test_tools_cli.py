"""Subprocess smoke tests for the repo's CLI tools.

Each tool runs as ``python -m repro.tools.<name>`` in a real
subprocess — argument parsing, module entry points, exit codes and
stdout format are exercised exactly as a user would hit them.
``tracereport`` reads the committed fixture trace under ``tests/data``;
``cachectl`` operates on a store seeded in-process; ``servectl`` talks
to a live server started by its own ``serve`` subcommand.
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.cache import ResultCache
from repro.experiments.executor import SweepTask, run_sweep

TOOLS_ENV = dict(os.environ,
                 PYTHONPATH=os.path.join(os.path.dirname(__file__), "..",
                                         "src"))
TRACE_FIXTURE = os.path.join(os.path.dirname(__file__), "data",
                             "trace_grid5000_damaris.jsonl")
#: A REPRO_SOLVER=sharded run of a small weakly coupled ladder storm;
#: its solver events carry the shard counters the wider table shows.
SHARDED_TRACE_FIXTURE = os.path.join(os.path.dirname(__file__), "data",
                                     "trace_sharded_storm.jsonl")


def run_tool(*argv, check=True, timeout=120):
    proc = subprocess.run(
        [sys.executable, "-m", *argv], env=TOOLS_ENV,
        capture_output=True, text=True, timeout=timeout)
    if check:
        assert proc.returncode == 0, proc.stderr or proc.stdout
    return proc


def _tenx(x):
    return x * 10


def _seed_store(root):
    cache = ResultCache(str(root))
    run_sweep([SweepTask(_tenx, (i,), label=f"t{i}") for i in range(3)],
              parallel=1, cache=cache)
    return cache


# --------------------------------------------------------------------- #
# cachectl
# --------------------------------------------------------------------- #
class TestCachectl:
    def test_stats_ls_verify_prune_clear(self, tmp_path):
        store = tmp_path / "store"
        _seed_store(store)
        base = ("repro.tools.cachectl", "--cache-dir", str(store))

        stats = run_tool(*base, "stats").stdout
        assert "entries:          3" in stats
        assert "model fingerprint" in stats

        ls = run_tool(*base, "ls").stdout
        assert len([l for l in ls.splitlines() if l.strip()]) >= 3
        assert "t0" in ls

        verify = run_tool(*base, "verify")
        assert "3 entries verified" in verify.stdout \
            or "ok" in verify.stdout.lower()

        run_tool(*base, "prune")
        assert "entries:          3" in run_tool(*base, "stats").stdout

        clear = run_tool(*base, "clear").stdout
        assert "3" in clear
        assert "entries:          0" in run_tool(*base, "stats").stdout

    def test_verify_flags_corruption_nonzero(self, tmp_path):
        store = tmp_path / "store"
        cache = _seed_store(store)
        victim = next(iter(cache.entries()))
        with open(victim.path, "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            fh.write(b"\xff")
        proc = run_tool("repro.tools.cachectl", "--cache-dir", str(store),
                        "verify", check=False)
        assert proc.returncode != 0


# --------------------------------------------------------------------- #
# tracereport (committed fixture trace)
# --------------------------------------------------------------------- #
class TestTracereport:
    def test_summary(self):
        out = run_tool("repro.tools.tracereport", TRACE_FIXTURE).stdout
        assert "write_phase" in out

    @pytest.mark.parametrize("by,expect", [
        ("solver", "flows_solved"),
        ("sched", "migrations"),
        ("actor", "actor"),
    ])
    def test_by_tables(self, by, expect):
        out = run_tool("repro.tools.tracereport", TRACE_FIXTURE,
                       "--by", by).stdout
        assert expect in out

    def test_sharded_trace_prints_shard_counters(self):
        out = run_tool("repro.tools.tracereport", SHARDED_TRACE_FIXTURE,
                       "--by", "solver").stdout
        for column in ("shards", "shard_solves", "cut_bytes",
                       "imbalance", "reconcile_iters"):
            assert column in out, out
        # The non-sharded fixture keeps the narrow pre-shard table.
        narrow = run_tool("repro.tools.tracereport", TRACE_FIXTURE,
                          "--by", "solver").stdout
        assert "cut_bytes" not in narrow, narrow

    def test_missing_file_is_clean_error(self, tmp_path):
        proc = run_tool("repro.tools.tracereport",
                        str(tmp_path / "nope.jsonl"), check=False)
        assert proc.returncode != 0


# --------------------------------------------------------------------- #
# servectl (against a live served instance)
# --------------------------------------------------------------------- #
class TestServectl:
    @pytest.fixture()
    def server(self, tmp_path):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.tools.servectl", "serve",
             "--port", "0", "--workers", "1", "--job-slots", "1"],
            env=dict(TOOLS_ENV, REPRO_FAST="1"),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        line = proc.stdout.readline()
        assert "serving on http://" in line, line
        hostport = line.split("http://", 1)[1].split()[0]
        host, port = hostport.rsplit(":", 1)
        try:
            yield host, port
        finally:
            proc.terminate()
            proc.wait(timeout=30)

    def test_full_cli_session(self, server, tmp_path):
        host, port = server
        base = ("repro.tools.servectl", "--host", host, "--port", port)
        specs = tmp_path / "specs.json"
        specs.write_text(json.dumps([
            {"preset": "grid5000", "ncores": 24,
             "strategy": {"kind": "damaris"}, "seed": 11,
             "write_phases": 1}]))

        health = json.loads(run_tool(*base[:1], "health",
                                     *base[1:]).stdout)
        assert health["state"] == "ok"

        snap = json.loads(run_tool(
            "repro.tools.servectl", "submit", str(specs),
            "--tenant", "cli", "--label", "smoke", "--wait",
            "--timeout", "300", *base[1:]).stdout)
        assert snap["state"] == "done"
        job_id = snap["job_id"]

        status = json.loads(run_tool(*base[:1], "status", *base[1:],
                                     job_id).stdout)
        assert status["progress"]["done"] == 1

        events = run_tool(*base[:1], "events", *base[1:], job_id).stdout
        kinds = [json.loads(l)["kind"] for l in events.splitlines()]
        assert kinds[0] == "queued" and kinds[-1] == "done"

        doc = json.loads(run_tool(*base[:1], "fetch", *base[1:],
                                  job_id).stdout)
        assert doc["results"][0]["run_time"] > 0

        metrics = run_tool(*base[:1], "metrics", *base[1:]).stdout
        assert 'repro_jobs_total{state="done"} 1' in metrics

        drain = json.loads(run_tool(*base[:1], "drain",
                                    *base[1:]).stdout)
        assert drain["state"] == "draining"
        refused = run_tool(
            "repro.tools.servectl", "submit", str(specs), *base[1:],
            check=False)
        assert refused.returncode == 2
        assert "draining" in refused.stderr

    def test_bad_specs_file_rejected(self, server, tmp_path):
        host, port = server
        specs = tmp_path / "bad.json"
        specs.write_text(json.dumps([{"preset": "nope"}]))
        proc = run_tool("repro.tools.servectl", "submit", str(specs),
                        "--host", host, "--port", port, check=False)
        assert proc.returncode == 2
        assert "invalid_spec" in proc.stderr
