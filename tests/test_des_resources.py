"""Unit tests for Resource / PriorityResource / Store."""

import pytest

from repro.des import PriorityResource, Resource, Simulator, Store
from repro.errors import SimulationError


class TestResource:
    def test_capacity_validation(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), capacity=0)

    def test_serialises_fifo(self):
        sim = Simulator()
        server = Resource(sim, capacity=1)
        order = []

        def client(name):
            with server.request() as req:
                yield req
                yield sim.timeout(1.0)
                order.append((name, sim.now))

        for name in "abc":
            sim.process(client(name))
        sim.run()
        assert order == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_parallel_capacity(self):
        sim = Simulator()
        server = Resource(sim, capacity=2)
        order = []

        def client(name):
            with server.request() as req:
                yield req
                yield sim.timeout(1.0)
                order.append((name, sim.now))

        for name in "abcd":
            sim.process(client(name))
        sim.run()
        assert order == [("a", 1.0), ("b", 1.0), ("c", 2.0), ("d", 2.0)]

    def test_count_and_queue_length(self):
        sim = Simulator()
        server = Resource(sim, capacity=1)
        server.request()
        server.request()
        assert server.count == 1
        assert server.queue_length == 1

    def test_release_queued_request_cancels(self):
        sim = Simulator()
        server = Resource(sim, capacity=1)
        held = server.request()
        queued = server.request()
        server.release(queued)  # cancel while waiting
        assert server.queue_length == 0
        server.release(held)
        assert server.count == 0

    def test_release_unknown_request_is_noop(self):
        sim = Simulator()
        server = Resource(sim, capacity=1)
        other = Resource(sim, capacity=1)
        req = other.request()
        server.release(req)  # not ours; must not corrupt state
        assert server.count == 0


class TestPriorityResource:
    def test_lower_priority_value_served_first(self):
        sim = Simulator()
        server = PriorityResource(sim, capacity=1)
        order = []

        def client(name, priority, arrive):
            yield sim.timeout(arrive)
            req = server.request(priority=priority)
            yield req
            yield sim.timeout(1.0)
            order.append(name)
            server.release(req)

        # "hog" occupies the server; "low" then "high" queue up.
        sim.process(client("hog", 0, 0.0))
        sim.process(client("low", 5, 0.1))
        sim.process(client("high", 1, 0.2))
        sim.run()
        assert order == ["hog", "high", "low"]

    def test_fifo_within_same_priority(self):
        sim = Simulator()
        server = PriorityResource(sim, capacity=1)
        order = []

        def client(name, arrive):
            yield sim.timeout(arrive)
            req = server.request(priority=3)
            yield req
            yield sim.timeout(1.0)
            order.append(name)
            server.release(req)

        for i, name in enumerate("abc"):
            sim.process(client(name, i * 0.01))
        sim.run()
        assert order == ["a", "b", "c"]


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def producer():
            yield store.put("item-1")
            yield store.put("item-2")

        def consumer():
            got.append((yield store.get()))
            got.append((yield store.get()))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == ["item-1", "item-2"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((sim.now, item))

        def producer():
            yield sim.timeout(4.0)
            yield store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(4.0, "late")]

    def test_bounded_put_blocks(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        log = []

        def producer():
            yield store.put("a")
            log.append(("put-a", sim.now))
            yield store.put("b")  # blocks until "a" is taken
            log.append(("put-b", sim.now))

        def consumer():
            yield sim.timeout(3.0)
            item = yield store.get()
            log.append(("got-" + item, sim.now))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert ("put-a", 0.0) in log
        assert ("put-b", 3.0) in log

    def test_capacity_validation(self):
        with pytest.raises(SimulationError):
            Store(Simulator(), capacity=0)

    def test_len(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")
        sim.run()
        assert len(store) == 1

    def test_fifo_order_many(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def producer():
            for i in range(20):
                yield store.put(i)

        def consumer():
            for _ in range(20):
                got.append((yield store.get()))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == list(range(20))
