"""Tests for the offline post-processing pipeline (runtime -> catalog ->
reassembly -> diagnostics)."""

import numpy as np
import pytest

from repro.apps.cm1 import MiniCM1
from repro.apps.postproc import (
    OutputCatalog,
    StormDiagnostics,
    assemble_global,
    load_iteration,
    storm_time_series,
)
from repro.core import DamarisConfig
from repro.errors import FormatError
from repro.runtime import DamarisRuntime
from repro.units import MiB


@pytest.fixture
def storm_output(tmp_path):
    """Run a small storm through the real runtime; return (dir, model)."""
    model = MiniCM1(16, 16, 8, seed=5)
    clients = 4
    config = DamarisConfig()
    config.add_layout("sub", "float", (16 // clients, 16, 8))
    config.add_variable("w", "sub")
    config.add_variable("theta", "sub")
    config.add_event("end_iteration", "persist")
    config.buffer_size = 16 * MiB
    runtime = DamarisRuntime(config, output_dir=str(tmp_path), nodes=2,
                             clients_per_node=clients // 2)
    snapshots = []
    for iteration in range(3):
        model.step(4)
        snapshots.append({name: f.copy()
                          for name, f in model.variables().items()})
        for client in runtime.clients:
            fields = model.subdomain(client.rank, clients, 1)
            client.df_write("w", iteration,
                            np.ascontiguousarray(fields["w"]))
            client.df_write("theta", iteration,
                            np.ascontiguousarray(fields["theta"]))
            client.df_signal("end_iteration", iteration)
    runtime.shutdown()
    return str(tmp_path), snapshots


class TestCatalog:
    def test_scan_finds_all_iterations(self, storm_output):
        root, _ = storm_output
        catalog = OutputCatalog.scan(root)
        assert catalog.iterations == [0, 1, 2]
        # 2 nodes per iteration.
        assert all(len(catalog.files(i)) == 2 for i in range(3))

    def test_scan_missing_dir(self):
        with pytest.raises(FormatError):
            OutputCatalog.scan("/definitely/not/here")

    def test_missing_iteration(self, storm_output):
        root, _ = storm_output
        with pytest.raises(FormatError):
            OutputCatalog.scan(root).files(99)


class TestReassembly:
    def test_global_field_matches_source(self, storm_output):
        root, snapshots = storm_output
        catalog = OutputCatalog.scan(root)
        for iteration in range(3):
            pieces = load_iteration(catalog, iteration, "w")
            assert sorted(pieces) == [0, 1, 2, 3]
            whole = assemble_global(pieces, axis=0)
            assert np.array_equal(whole, snapshots[iteration]["w"])

    def test_unknown_variable(self, storm_output):
        root, _ = storm_output
        catalog = OutputCatalog.scan(root)
        with pytest.raises(FormatError):
            load_iteration(catalog, 0, "nope")

    def test_assemble_empty(self):
        with pytest.raises(FormatError):
            assemble_global({})


class TestDiagnostics:
    def test_compute(self):
        w = np.zeros((4, 4, 4), dtype=np.float32)
        w[0, 0, 0] = 3.0
        theta = np.full((4, 4, 4), -2.0, dtype=np.float32)
        diag = StormDiagnostics.compute(7, w, theta)
        assert diag.iteration == 7
        assert diag.max_updraft == 3.0
        assert diag.max_theta_perturbation == 2.0
        assert diag.updraft_volume_fraction == pytest.approx(1 / 64)

    def test_time_series_end_to_end(self, storm_output):
        root, snapshots = storm_output
        series = storm_time_series(root)
        assert [d.iteration for d in series] == [0, 1, 2]
        # The storm intensifies: peak updraft grows over the series.
        assert series[-1].max_updraft > series[0].max_updraft
        for diag, snapshot in zip(series, snapshots):
            assert diag.max_updraft == pytest.approx(
                float(snapshot["w"].max()))
