"""Unit/integration tests for the MPI-like layer and collective I/O."""

import pytest

from repro.cluster import Machine, MachineSpec, NoNoise
from repro.errors import MPIError
from repro.mpi import Communicator, collective_open, collective_write
from repro.mpi.mpiio import collective_close, default_aggregators
from repro.storage import Lustre, MetadataSpec, TargetSpec
from repro.units import GiB, MiB


def make_comm(nodes=2, cores=4, **machine_kwargs):
    machine = Machine(
        MachineSpec(nodes=nodes, cores_per_node=cores,
                    mem_bandwidth=8 * GiB, nic_bandwidth=2 * GiB,
                    **machine_kwargs),
        seed=13, noise=NoNoise(), completion_slack=0.0, fairness_slack=0.0)
    return machine, Communicator(machine, machine.all_cores())


def run_ranks(machine, comm, rank_fn):
    """Run rank_fn(rank) as one process per rank; returns list of results."""
    results = [None] * comm.size

    def wrap(rank):
        value = yield from rank_fn(rank)
        results[rank] = value

    for rank in range(comm.size):
        machine.sim.process(wrap(rank))
    machine.sim.run()
    return results


class TestCommunicator:
    def test_needs_ranks(self):
        machine, _ = make_comm()
        with pytest.raises(MPIError):
            Communicator(machine, [])

    def test_size_and_node_mapping(self):
        machine, comm = make_comm(nodes=2, cores=4)
        assert comm.size == 8
        assert comm.node_of(0) is machine.nodes[0]
        assert comm.node_of(7) is machine.nodes[1]
        assert comm.ranks_on_node(machine.nodes[0]) == [0, 1, 2, 3]

    def test_split(self):
        machine, comm = make_comm()
        sub = comm.split([0, 2, 4])
        assert sub.size == 3
        assert sub.node_of(2) is machine.nodes[1]


class TestBarrier:
    def test_all_ranks_leave_after_slowest(self):
        machine, comm = make_comm()
        leave_times = []

        def prog(rank):
            yield machine.sim.timeout(float(rank))  # staggered arrivals
            yield from comm.barrier(rank)
            leave_times.append(machine.sim.now)

        run_ranks(machine, comm, prog)
        assert len(leave_times) == comm.size
        slowest_arrival = comm.size - 1
        assert all(t >= slowest_arrival for t in leave_times)
        assert max(leave_times) - min(leave_times) < 1e-9

    def test_barriers_match_in_order(self):
        machine, comm = make_comm(nodes=1, cores=2)
        log = []

        def prog(rank):
            for phase in range(3):
                yield from comm.barrier(rank)
                log.append((phase, rank))

        run_ranks(machine, comm, prog)
        # Both ranks complete phase k before either completes phase k+1.
        phases = [phase for phase, _ in log]
        assert phases == sorted(phases)


class TestCollectives:
    def test_bcast_distributes_root_value(self):
        machine, comm = make_comm()

        def prog(rank):
            value = "payload" if rank == 2 else None
            got = yield from comm.bcast(rank, value, root=2)
            return got

        assert run_ranks(machine, comm, prog) == ["payload"] * comm.size

    def test_gather_collects_in_rank_order(self):
        machine, comm = make_comm(nodes=1, cores=4)

        def prog(rank):
            got = yield from comm.gather(rank, rank * 10, root=1)
            return got

        results = run_ranks(machine, comm, prog)
        assert results[1] == [0, 10, 20, 30]
        assert results[0] is None

    def test_allgather(self):
        machine, comm = make_comm(nodes=1, cores=4)

        def prog(rank):
            return (yield from comm.allgather(rank, rank))

        for result in run_ranks(machine, comm, prog):
            assert result == [0, 1, 2, 3]

    def test_reduce_and_allreduce(self):
        machine, comm = make_comm(nodes=1, cores=4)

        def prog(rank):
            total = yield from comm.reduce(rank, rank + 1, root=0)
            every = yield from comm.allreduce(rank, rank + 1)
            return total, every

        results = run_ranks(machine, comm, prog)
        assert results[0] == (10, 10)
        assert results[3] == (None, 10)

    def test_alltoallv_validates_length(self):
        machine, comm = make_comm(nodes=1, cores=2)

        def prog(rank):
            yield from comm.alltoallv(rank, [1.0])

        with pytest.raises(MPIError):
            run_ranks(machine, comm, prog)

    def test_alltoallv_charges_network_time(self):
        machine, comm = make_comm(nodes=2, cores=2)

        def prog(rank):
            sizes = [0.0] * comm.size
            # Everyone sends 1 GiB to the diagonally-opposite rank.
            sizes[(rank + 2) % comm.size] = float(1 * GiB)
            yield from comm.alltoallv(rank, sizes)
            return machine.sim.now

        results = run_ranks(machine, comm, prog)
        # 2 GiB leaves each node through a 2 GiB/s NIC: ~1 s minimum.
        assert min(results) >= 1.0


class TestP2P:
    def test_send_recv_payload(self):
        machine, comm = make_comm(nodes=2, cores=1)

        def prog(rank):
            if rank == 0:
                yield from comm.send(rank, 1, payload={"k": 1},
                                     nbytes=float(2 * GiB))
                return None
            message = yield from comm.recv(rank)
            return (machine.sim.now, message)

        results = run_ranks(machine, comm, prog)
        arrival, message = results[1]
        assert message == {"k": 1}
        assert arrival >= 1.0  # 2 GiB over a 2 GiB/s NIC

    def test_send_to_invalid_rank(self):
        machine, comm = make_comm(nodes=1, cores=2)

        def prog(rank):
            if rank == 0:
                yield from comm.send(rank, 99)
            else:
                yield machine.sim.timeout(0.0)

        with pytest.raises(MPIError):
            run_ranks(machine, comm, prog)

    def test_recv_before_send(self):
        machine, comm = make_comm(nodes=1, cores=2)

        def prog(rank):
            if rank == 1:
                return (yield from comm.recv(rank))
            yield machine.sim.timeout(2.0)
            yield from comm.send(rank, 1, payload="late")
            return None

        results = run_ranks(machine, comm, prog)
        assert results[1] == "late"


class TestCollectiveIO:
    @staticmethod
    def quiet_fs(machine, **kwargs):
        return Lustre(
            machine, ntargets=4,
            target_spec=TargetSpec(straggler_sigma=0.0, request_latency=0.0,
                                   object_half=1e9, stream_half=1e9),
            metadata_spec=MetadataSpec(sigma=0.0),
            **kwargs)

    def test_default_aggregators_one_per_node(self):
        machine, comm = make_comm(nodes=3, cores=4)
        assert default_aggregators(comm) == [0, 4, 8]

    def test_collective_write_produces_one_file_of_right_size(self):
        machine, comm = make_comm(nodes=2, cores=4)
        fs = self.quiet_fs(machine)

        def prog(rank):
            cfile = yield from collective_open(comm, rank, fs, "out.h5")
            yield from collective_write(cfile, rank, 4 * MiB)
            yield from collective_write(cfile, rank, 4 * MiB)
            yield from collective_close(cfile, rank)
            return machine.sim.now

        run_ranks(machine, comm, prog)
        assert fs.file_count == 1
        assert fs.lookup("out.h5").size == 2 * comm.size * 4 * MiB

    def test_only_aggregators_touch_the_filesystem(self):
        machine, comm = make_comm(nodes=2, cores=4)
        fs = self.quiet_fs(machine)

        def prog(rank):
            cfile = yield from collective_open(comm, rank, fs, "out.h5")
            yield from collective_write(cfile, rank, 1 * MiB)
            yield from collective_close(cfile, rank)
            return None

        run_ranks(machine, comm, prog)
        # 2 aggregators wrote; the file saw exactly the payload bytes.
        assert fs.bytes_written == comm.size * 1 * MiB

    def test_all_ranks_finish_simultaneously(self):
        """The write phase ends at a barrier: no rank leaves early."""
        machine, comm = make_comm(nodes=2, cores=4)
        fs = self.quiet_fs(machine)

        def prog(rank):
            cfile = yield from collective_open(comm, rank, fs, "out.h5")
            yield from collective_write(cfile, rank, 4 * MiB)
            return machine.sim.now

        results = run_ranks(machine, comm, prog)
        assert max(results) - min(results) < 1e-6
