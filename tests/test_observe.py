"""Tests for the tracing subsystem: tracer, exporters, aggregation, CLI.

Includes the paper's structural acceptance check: in a traced Damaris
run the dedicated cores' ``persist`` spans overlap the compute cores'
subsequent ``write_phase`` spans (I/O hidden behind compute), which a
synchronous strategy cannot exhibit.
"""

import io
import json
from dataclasses import replace

import pytest

from repro.errors import ReproError
from repro.experiments.harness import run_experiment
from repro.experiments.specs import run_spec
from repro.experiments.platforms import grid5000_preset
from repro.observe import (
    NULL_TRACER,
    EVENT_CATEGORIES,
    SPAN_CATEGORIES,
    Tracer,
    dump_chrome_trace,
    dump_jsonl,
    load_jsonl,
    merge_intervals,
    overlap_seconds,
    per_actor_table,
    per_category_table,
    per_target_table,
    render_summary,
    to_chrome_trace,
    to_jsonl,
)
from repro.strategies import CollectiveIOStrategy, DamarisStrategy
from repro.tools import tracereport


def make_tracer():
    """A tracer with a deterministic hand-driven clock and a bit of
    everything on it."""
    tracer = Tracer(clock=lambda: 0.0, clock_name="test")
    tracer.record_span("write_phase", "phase0", "node0/rank0",
                       0.0, 2.0, rank=0, phase=0)
    tracer.record_span("persist", "iter0", "node0/server-core11",
                       1.0, 3.0, iteration=0, nbytes=1000)
    tracer.record_span("net_transfer", "damaris", "storage/fs.t0",
                       1.2, 2.8, target="fs.t0", nbytes=1000)
    tracer.record_event("lock_revoke", "file3", "locks/file3",
                        time=1.5, file_id=3, owner=1, revokes=2)
    tracer.record_event("queue_depth", "put", "node0/queue",
                        time=0.5, depth=4)
    return tracer


class TestTracer:
    def test_unknown_categories_rejected(self):
        tracer = Tracer()
        with pytest.raises(ReproError):
            tracer.record_span("no_such", "x", "a", 0.0, 1.0)
        with pytest.raises(ReproError):
            tracer.record_event("no_such", "x", "a")

    def test_span_context_manager(self):
        times = iter([1.0, 4.0])
        tracer = Tracer(clock=lambda: next(times))
        with tracer.span("persist", "iter0", "node0/server"):
            pass
        (span,) = tracer.spans
        assert (span.start, span.end, span.duration) == (1.0, 4.0, 3.0)

    def test_null_tracer_is_inert(self):
        assert not NULL_TRACER.enabled
        NULL_TRACER.record_span("persist", "x", "a", 0.0, 1.0)
        NULL_TRACER.record_event("error", "x", "a")
        assert len(NULL_TRACER) == 0

    def test_category_sets_disjoint_from_typos(self):
        assert "write_phase" in SPAN_CATEGORIES
        assert "lock_revoke" in EVENT_CATEGORIES


class TestJsonlExport:
    def test_roundtrip_preserves_everything(self):
        tracer = make_tracer()
        loaded = load_jsonl(to_jsonl(tracer))
        assert loaded.clock_name == "test"
        assert len(loaded.spans) == len(tracer.spans)
        assert len(loaded.events) == len(tracer.events)
        by_name = {s.name: s for s in loaded.spans}
        persist = by_name["iter0"]
        assert (persist.category, persist.actor) == \
            ("persist", "node0/server-core11")
        assert (persist.start, persist.end) == (1.0, 3.0)
        assert persist.attrs == {"iteration": 0, "nbytes": 1000}
        revoke = loaded.events_in("lock_revoke")[0]
        assert revoke.time == 1.5
        assert revoke.attrs["revokes"] == 2

    def test_meta_line_first_and_versioned(self):
        lines = to_jsonl(make_tracer()).splitlines()
        meta = json.loads(lines[0])
        assert meta == {"type": "meta", "version": 1, "clock": "test"}
        # Records are sorted by time.
        times = [json.loads(line).get("start", json.loads(line).get("time"))
                 for line in lines[1:]]
        assert times == sorted(times)

    def test_load_rejects_unknown_version(self):
        bad = json.dumps({"type": "meta", "version": 999, "clock": "wall"})
        with pytest.raises(ReproError):
            load_jsonl(bad)

    def test_load_rejects_garbage(self):
        with pytest.raises(ReproError):
            load_jsonl("not json at all\n")

    def test_load_accepts_file_objects(self):
        tracer = make_tracer()
        loaded = load_jsonl(io.StringIO(to_jsonl(tracer)))
        assert len(loaded) == len(tracer)

    def test_dump_to_disk(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        dump_jsonl(make_tracer(), str(path))
        with open(path) as fh:
            assert len(load_jsonl(fh)) == len(make_tracer())


class TestChromeExport:
    def test_shape_and_timestamps(self):
        trace = to_chrome_trace(make_tracer())
        events = trace["traceEvents"]
        assert trace["otherData"]["clock"] == "test"
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 3
        phase = next(e for e in complete if e["name"] == "phase0")
        # Chrome timestamps are microseconds; actor splits into pid/tid.
        assert (phase["ts"], phase["dur"]) == (0.0, 2_000_000.0)
        assert (phase["pid"], phase["tid"]) == ("node0", "rank0")
        counters = [e for e in events if e["ph"] == "C"]
        assert counters and counters[0]["args"] == {"depth": 4}
        instants = [e for e in events if e["ph"] == "i"]
        assert instants and instants[0]["name"] == "file3"
        # The whole object must be JSON-serialisable for the browser.
        json.dumps(trace)

    def test_dump_is_json_loadable(self, tmp_path):
        path = tmp_path / "trace.json"
        dump_chrome_trace(make_tracer(), str(path))
        with open(path) as fh:
            assert json.load(fh)["traceEvents"]


class TestAggregation:
    def test_per_category_table(self):
        rows = per_category_table(make_tracer())
        by_cat = {row["category"]: row for row in rows}
        assert by_cat["persist"]["count"] == 1
        assert by_cat["persist"]["total_s"] == pytest.approx(2.0)
        assert by_cat["persist"]["bytes"] == 1000

    def test_per_actor_and_target_tables(self):
        actors = {row["actor"] for row in per_actor_table(make_tracer())}
        assert {"node0/rank0", "node0/server-core11",
                "storage/fs.t0"} <= actors
        (target_row,) = per_target_table(make_tracer())
        assert target_row["target"] == "fs.t0"
        assert target_row["bytes"] == 1000

    def test_merge_intervals(self):
        assert merge_intervals([(0, 1), (0.5, 2), (3, 4), (4, 4)]) == \
            [(0, 2), (3, 4)]

    def test_overlap_seconds(self):
        tracer = make_tracer()
        overlap = overlap_seconds(tracer.spans_in("persist"),
                                  tracer.spans_in("write_phase"))
        assert overlap == pytest.approx(1.0)

    def test_render_summary_mentions_overlap(self):
        text = render_summary(make_tracer())
        assert "persist/write_phase overlap" in text
        assert "by storage target" in text


def short_compute_run(strategy, tracer, write_phases=3):
    """A small Grid'5000 run whose compute blocks are short enough for
    asynchronous persists to spill into the next write phase."""
    preset = grid5000_preset()
    machine, fs, workload = preset.build(48, seed=1)
    workload = replace(workload, seconds_per_iteration=0.02,
                       iterations_per_output=1)
    return run_experiment(machine, fs, workload, strategy,
                          write_phases=write_phases, tracer=tracer)


class TestOverlapAcceptance:
    def test_damaris_persists_overlap_next_write_phases(self, tmp_path):
        """The paper's jitter-hiding claim, structurally: dedicated-core
        persist intervals intersect later write phases; the same run's
        trace loads in Chrome trace_event form."""
        tracer = Tracer()
        short_compute_run(DamarisStrategy(), tracer)
        assert tracer.clock_name == "sim"
        persists = tracer.spans_in("persist")
        phases = tracer.spans_in("write_phase")
        assert persists and phases
        assert overlap_seconds(persists, phases) > 0
        # Every persist starts at/after the phase that produced its data.
        first_phase_end = min(s.end for s in phases)
        assert all(p.end > first_phase_end for p in persists)
        path = tmp_path / "damaris.json"
        dump_chrome_trace(tracer, str(path))
        with open(path) as fh:
            trace = json.load(fh)
        assert any(e["cat"] == "persist" for e in trace["traceEvents"])

    def test_collective_has_no_asynchronous_persist(self):
        """The synchronous baseline records the same write phases but no
        persist spans at all — nothing is hidden behind compute."""
        tracer = Tracer()
        short_compute_run(CollectiveIOStrategy(mode="two-phase"), tracer)
        assert tracer.spans_in("write_phase")
        assert tracer.spans_in("fs_write")
        assert not tracer.spans_in("persist")


class TestFigureTraceFlag:
    def test_run_spec_dumps_trace_when_env_set(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path))
        run_spec({
            "preset": "grid5000", "ncores": 48,
            "strategy": {"kind": "damaris"}, "seed": 1,
            "write_phases": 1, "trace_label": "test/grid5000/48/damaris",
        })
        (trace_file,) = tmp_path.glob("*.jsonl")
        assert trace_file.name == "test-grid5000-48-damaris.jsonl"
        with open(trace_file) as fh:
            tracer = load_jsonl(fh)
        assert tracer.clock_name == "sim"
        assert tracer.spans_in("write_phase")

    def test_run_spec_untraced_without_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        run_spec({
            "preset": "grid5000", "ncores": 48,
            "strategy": {"kind": "noio"}, "seed": 1, "write_phases": 1,
        })
        assert not list(tmp_path.glob("*.jsonl"))


class TestTracereportCli:
    def test_summary_and_chrome_conversion(self, tmp_path, capsys):
        jsonl = tmp_path / "trace.jsonl"
        dump_jsonl(make_tracer(), str(jsonl))
        chrome = tmp_path / "trace.json"
        assert tracereport.main([str(jsonl), "--chrome", str(chrome)]) == 0
        out = capsys.readouterr().out
        assert "trace summary" in out
        assert "persist/write_phase overlap" in out
        with open(chrome) as fh:
            assert json.load(fh)["traceEvents"]

    def test_groupings(self, tmp_path, capsys):
        jsonl = tmp_path / "trace.jsonl"
        dump_jsonl(make_tracer(), str(jsonl))
        for grouping, expect in (("actor", "node0/rank0"),
                                 ("category", "persist"),
                                 ("target", "fs.t0")):
            assert tracereport.main([str(jsonl), "--by", grouping]) == 0
            assert expect in capsys.readouterr().out

    def test_bad_inputs(self, tmp_path, capsys):
        assert tracereport.main([]) == 0          # help text
        assert tracereport.main(["a", "b"]) == 2  # too many files
        assert tracereport.main([str(tmp_path / "missing.jsonl")]) == 1
        bad = tmp_path / "bad.jsonl"
        bad.write_text("garbage\n")
        assert tracereport.main([str(bad)]) == 1
        capsys.readouterr()
