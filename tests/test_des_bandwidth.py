"""Unit + property tests for the max-min fair-share flow network."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import FlowNetwork, Simulator
from repro.errors import SimulationError


def run_transfers(capacities, flows):
    """Helper: run flows (list of (resource-names, nbytes, rate_cap, start))
    and return dict label -> completion time."""
    sim = Simulator()
    net = FlowNetwork(sim)
    links = {name: net.add_capacity(name, cap) for name, cap in capacities.items()}
    done = {}

    def worker(label, names, nbytes, cap, start):
        yield sim.timeout(start)
        flow = net.transfer([links[n] for n in names], nbytes, rate_cap=cap,
                            label=label)
        yield flow.event
        done[label] = sim.now

    for i, (names, nbytes, cap, start) in enumerate(flows):
        sim.process(worker(str(i), names, nbytes, cap, start))
    sim.run()
    return done


class TestSingleLink:
    def test_single_flow_uses_full_capacity(self):
        done = run_transfers({"l": 100.0}, [(["l"], 500.0, math.inf, 0.0)])
        assert done["0"] == pytest.approx(5.0)

    def test_two_equal_flows_share_equally(self):
        done = run_transfers({"l": 100.0},
                             [(["l"], 100.0, math.inf, 0.0)] * 2)
        assert done["0"] == pytest.approx(2.0)
        assert done["1"] == pytest.approx(2.0)

    def test_short_flow_leaves_then_long_speeds_up(self):
        # A=150B, B=50B on 100B/s: share 50 each; B done at t=1 (50B);
        # A then has 100B at full rate: done at t=2.
        done = run_transfers({"l": 100.0},
                             [(["l"], 150.0, math.inf, 0.0),
                              (["l"], 50.0, math.inf, 0.0)])
        assert done["1"] == pytest.approx(1.0)
        assert done["0"] == pytest.approx(2.0)

    def test_late_arrival_shares(self):
        # A: 200B from t=0. Alone until t=1 (100B moved). Then B (100B)
        # arrives; both have 100B left at 50B/s -> both done at t=3.
        done = run_transfers({"l": 100.0},
                             [(["l"], 200.0, math.inf, 0.0),
                              (["l"], 100.0, math.inf, 1.0)])
        assert done["0"] == pytest.approx(3.0)
        assert done["1"] == pytest.approx(3.0)

    def test_zero_byte_flow_completes_instantly(self):
        sim = Simulator()
        net = FlowNetwork(sim)
        link = net.add_capacity("l", 10.0)
        flow = net.transfer([link], 0.0)
        assert flow.event.triggered
        assert flow.end_time == 0.0


class TestRateCaps:
    def test_cap_limits_single_flow(self):
        done = run_transfers({"l": 100.0}, [(["l"], 100.0, 10.0, 0.0)])
        assert done["0"] == pytest.approx(10.0)

    def test_capped_flow_releases_bandwidth(self):
        done = run_transfers({"l": 100.0},
                             [(["l"], 100.0, 10.0, 0.0),
                              (["l"], 100.0, math.inf, 0.0)])
        assert done["0"] == pytest.approx(10.0)
        # The uncapped flow gets the remaining 90 B/s.
        assert done["1"] == pytest.approx(100.0 / 90.0)

    def test_flow_without_resources_needs_cap(self):
        sim = Simulator()
        net = FlowNetwork(sim)
        with pytest.raises(SimulationError):
            net.transfer([], 100.0)

    def test_flow_with_only_cap(self):
        done = run_transfers({}, [([], 100.0, 20.0, 0.0)])
        assert done["0"] == pytest.approx(5.0)


class TestMultiResource:
    def test_bottleneck_is_the_minimum(self):
        # NIC 1000 B/s, server 100 B/s: server is the bottleneck.
        done = run_transfers({"nic": 1000.0, "srv": 100.0},
                             [(["nic", "srv"], 100.0, math.inf, 0.0)])
        assert done["0"] == pytest.approx(1.0)

    def test_two_nics_one_server(self):
        done = run_transfers(
            {"n1": 1000.0, "n2": 1000.0, "srv": 100.0},
            [(["n1", "srv"], 100.0, math.inf, 0.0),
             (["n2", "srv"], 100.0, math.inf, 0.0)])
        assert done["0"] == pytest.approx(2.0)
        assert done["1"] == pytest.approx(2.0)

    def test_maxmin_asymmetric(self):
        # Flow A uses link1 only (cap 100). Flows A+B share link2 (cap 60).
        # Max-min: link2 gives 30 each; A further limited by nothing else
        # (link1 has 100): A=30, B=30.
        done = run_transfers(
            {"l1": 100.0, "l2": 60.0},
            [(["l1", "l2"], 30.0, math.inf, 0.0),
             (["l2"], 30.0, math.inf, 0.0)])
        assert done["0"] == pytest.approx(1.0)
        assert done["1"] == pytest.approx(1.0)

    def test_unbottlenecked_flow_grabs_leftover(self):
        # l1: flows A,B -> 50 each. l2: flow C alone after picking up
        # leftover: C capped only by l2 (100): rate 100.
        done = run_transfers(
            {"l1": 100.0, "l2": 100.0},
            [(["l1"], 50.0, math.inf, 0.0),
             (["l1"], 50.0, math.inf, 0.0),
             (["l2"], 100.0, math.inf, 0.0)])
        assert done["0"] == pytest.approx(1.0)
        assert done["1"] == pytest.approx(1.0)
        assert done["2"] == pytest.approx(1.0)


class TestValidation:
    def test_duplicate_capacity_name(self):
        net = FlowNetwork(Simulator())
        net.add_capacity("x", 1.0)
        with pytest.raises(SimulationError):
            net.add_capacity("x", 2.0)

    def test_nonpositive_capacity(self):
        net = FlowNetwork(Simulator())
        with pytest.raises(SimulationError):
            net.add_capacity("bad", 0.0)

    def test_negative_bytes(self):
        net = FlowNetwork(Simulator())
        link = net.add_capacity("l", 1.0)
        with pytest.raises(SimulationError):
            net.transfer([link], -5.0)

    def test_too_many_resources(self):
        net = FlowNetwork(Simulator())
        links = [net.add_capacity(f"l{i}", 1.0) for i in range(5)]
        with pytest.raises(SimulationError):
            net.transfer(links, 10.0)

    def test_foreign_capacity_rejected(self):
        sim = Simulator()
        net_a, net_b = FlowNetwork(sim), FlowNetwork(sim)
        foreign = net_b.add_capacity("l", 1.0)
        with pytest.raises(SimulationError):
            net_a.transfer([foreign], 10.0)


class TestCancel:
    def test_cancelled_flow_never_completes(self):
        sim = Simulator()
        net = FlowNetwork(sim)
        link = net.add_capacity("l", 10.0)
        flow = net.transfer([link], 1000.0)
        other = net.transfer([link], 10.0)

        def canceller():
            yield sim.timeout(0.5)
            flow.cancel()

        sim.process(canceller())
        sim.run()
        assert not flow.event.triggered
        assert other.event.triggered
        # After cancel, the other flow got the full link.
        assert other.end_time < 2.0


class TestAccounting:
    def test_total_bytes_moved(self):
        sim = Simulator()
        net = FlowNetwork(sim)
        link = net.add_capacity("l", 100.0)
        net.transfer([link], 250.0)
        net.transfer([link], 750.0)
        sim.run()
        assert net.total_bytes_moved == pytest.approx(1000.0, rel=1e-6)
        assert net.completed_flows == 2

    def test_slot_reuse_after_many_flows(self):
        sim = Simulator()
        net = FlowNetwork(sim)
        link = net.add_capacity("l", 1000.0)
        count = []

        def worker(i):
            yield sim.timeout(i * 0.1)
            flow = net.transfer([link], 10.0)
            yield flow.event
            count.append(i)

        for i in range(300):  # > initial slab of 64 slots
            sim.process(worker(i))
        sim.run()
        assert len(count) == 300
        assert net.active_flow_count == 0


class TestCapacityChange:
    def test_set_capacity_rescales_flows(self):
        sim = Simulator()
        net = FlowNetwork(sim)
        link = net.add_capacity("l", 100.0)
        done = {}

        def worker():
            flow = net.transfer([link], 200.0)
            yield flow.event
            done["t"] = sim.now

        def degrade():
            yield sim.timeout(1.0)  # 100 B moved so far
            link.set_capacity(50.0)  # remaining 100 B at 50 B/s -> +2 s

        sim.process(worker())
        sim.process(degrade())
        sim.run()
        assert done["t"] == pytest.approx(3.0)


class TestSlotGrowth:
    def test_grown_slots_are_clean(self):
        """Growing the slot arrays must zero/inf-pad the new slots —
        ``np.resize`` used to tile the old values into them, leaving
        stale ``_flow_cap``/``_res``/``_remaining`` entries."""
        sim = Simulator()
        net = FlowNetwork(sim)
        link = net.add_capacity("l", 1e6)
        # Exceed the initial 64-slot slab with distinctive values that
        # would be visible if tiled into the grown region.
        for _ in range(100):
            net.transfer([link], 1e3, rate_cap=5.0)
        free = np.array(sorted(net._free), dtype=np.int64)
        assert free.size > 0
        assert np.all(np.isinf(net._flow_cap[free]))
        assert np.all(net._remaining[free] == 0.0)
        assert np.all(net._res[free] == -1)
        assert np.all(net._start[free] == 0.0)
        assert not net._active[free].any()

    def test_flows_across_growth_complete_correctly(self):
        sim = Simulator()
        net = FlowNetwork(sim)
        link = net.add_capacity("l", 100.0)
        flows = [net.transfer([link], 50.0) for _ in range(80)]
        sim.run()
        assert net.completed_flows == 80
        assert all(f.event.triggered for f in flows)
        # 80 equal flows of 50 B share 100 B/s: all finish at t=40.
        assert sim.now == pytest.approx(40.0)


class TestCompletionTick:
    def test_no_heap_leak_under_staggered_arrivals(self):
        """Each recompute used to push a fresh version-stale tick event;
        with chained arrivals the heap must stay a handful of entries."""
        sim = Simulator()
        net = FlowNetwork(sim)
        link = net.add_capacity("l", 1e6)
        peak = [0]
        started = [0]

        def arrive():
            started[0] += 1
            net.transfer([link], 1e4)
            if started[0] < 100:
                sim.schedule_callback(1e-3, arrive)
            peak[0] = max(peak[0], len(sim._heap))

        sim.schedule_callback(0.0, arrive)
        sim.run()
        assert net.completed_flows == 100
        assert peak[0] <= 10

    def test_arrival_on_link_with_headroom_keeps_existing_rates(self):
        # A (cap 100, 100 B) starts at t=0 on a 1000 B/s link; B
        # (cap 200, 100 B) arrives at t=0.5. Neither saturates the link,
        # so A keeps its rate: A ends at 1.0, B at 1.0.
        done = run_transfers({"l": 1000.0},
                             [(["l"], 100.0, 100.0, 0.0),
                              (["l"], 100.0, 200.0, 0.5)])
        assert done["0"] == pytest.approx(1.0)
        assert done["1"] == pytest.approx(1.0)

    def test_arrival_squeezing_capped_flow_recomputes(self):
        # A (cap 60, 120 B) alone on a 100 B/s link: rate 60. B
        # (uncapped, 100 B) arrives at t=1: fair share drops A to 50.
        # A: 60 B left at 50 B/s -> ends 2.2. B then finishes its
        # remaining 40 B alone at min(cap, 100) = 100 B/s -> ends 2.6.
        done = run_transfers({"l": 100.0},
                             [(["l"], 120.0, 60.0, 0.0),
                              (["l"], 100.0, math.inf, 1.0)])
        assert done["0"] == pytest.approx(2.2)
        assert done["1"] == pytest.approx(2.6)


class TestMaxMinProperties:
    """Property-based checks on the water-filling solver."""

    @given(
        nbytes=st.lists(st.floats(min_value=1.0, max_value=1e6),
                        min_size=1, max_size=30),
        capacity=st.floats(min_value=1.0, max_value=1e6),
    )
    @settings(max_examples=40, deadline=None)
    def test_single_link_work_conservation(self, nbytes, capacity):
        """On one shared link the total finish time equals volume/capacity."""
        sim = Simulator()
        net = FlowNetwork(sim)
        link = net.add_capacity("l", capacity)
        for volume in nbytes:
            net.transfer([link], volume)
        sim.run()
        expected = sum(nbytes) / capacity
        assert sim.now == pytest.approx(expected, rel=1e-5)

    @given(
        n=st.integers(min_value=1, max_value=20),
        capacity=st.floats(min_value=10.0, max_value=1e5),
    )
    @settings(max_examples=30, deadline=None)
    def test_equal_flows_finish_together(self, n, capacity):
        sim = Simulator()
        net = FlowNetwork(sim)
        link = net.add_capacity("l", capacity)
        ends = []

        def worker():
            flow = net.transfer([link], 1000.0)
            yield flow.event
            ends.append(sim.now)

        for _ in range(n):
            sim.process(worker())
        sim.run()
        assert len(ends) == n
        assert np.ptp(ends) < 1e-6 * max(ends)

    @given(
        caps=st.lists(st.floats(min_value=1.0, max_value=100.0),
                      min_size=2, max_size=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_rates_never_exceed_capacity(self, caps):
        """Sum of allocated rates on a link never exceeds its capacity."""
        sim = Simulator()
        net = FlowNetwork(sim)
        link = net.add_capacity("l", 50.0)
        for cap in caps:
            net.transfer([link], 100.0, rate_cap=cap)
        # Force one recompute, then inspect rates directly.
        sim.run(until=0.0)
        active = net._active
        total_rate = float(net._rate[active].sum())
        assert total_rate <= 50.0 * (1.0 + 1e-9) + 1e-6
