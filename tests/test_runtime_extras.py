"""Tests for runtime extras: dynamic-shape variables, external steering
events, and the inspection tools."""

import numpy as np
import pytest

from repro.core import DamarisConfig
from repro.errors import ReproError, UnknownEventError
from repro.formats import SHDFReader
from repro.runtime import DamarisRuntime
from repro.tools.shdfls import describe_dataset, describe_file
from repro.tools.figures import DRIVERS, main as figures_main
from repro.units import MiB


def particle_config(action="persist"):
    config = DamarisConfig()
    config.add_layout("particles", "float", (1000, 3))
    config.add_variable("tracers", "particles")
    config.add_event("end_iteration", action)
    config.add_event("snapshot", action)
    config.buffer_size = 16 * MiB
    return config


class TestDynamicVariables:
    def test_roundtrip_with_actual_shape(self, tmp_path):
        config = particle_config()
        data = np.arange(30, dtype=np.float32).reshape(10, 3)
        with DamarisRuntime(config, output_dir=str(tmp_path)) as runtime:
            runtime.clients[0].df_write_dynamic("tracers", 0, data)
            runtime.clients[0].df_signal("end_iteration", 0)
        with SHDFReader(runtime.output_files()[0]) as reader:
            back = reader.read_dataset(reader.datasets[0])
            assert back.shape == (10, 3)
            assert np.array_equal(back, data)

    def test_only_actual_bytes_reserved(self, tmp_path):
        config = particle_config(action="discard")
        data = np.zeros((10, 3), dtype=np.float32)
        with DamarisRuntime(config, output_dir=str(tmp_path)) as runtime:
            runtime.clients[0].df_write_dynamic("tracers", 0, data)
            assert runtime.clients[0].bytes_written == data.nbytes
            runtime.clients[0].df_signal("end_iteration", 0)

    def test_oversized_rejected(self, tmp_path):
        config = particle_config()
        too_big = np.zeros((2000, 3), dtype=np.float32)
        with DamarisRuntime(config, output_dir=str(tmp_path)) as runtime:
            with pytest.raises(ReproError):
                runtime.clients[0].df_write_dynamic("tracers", 0, too_big)

    def test_wrong_dtype_rejected(self, tmp_path):
        config = particle_config()
        wrong = np.zeros((10, 3), dtype=np.float64)
        with DamarisRuntime(config, output_dir=str(tmp_path)) as runtime:
            with pytest.raises(ReproError):
                runtime.clients[0].df_write_dynamic("tracers", 0, wrong)


class TestSteeringEvents:
    def test_external_signal_fires_without_client_rendezvous(self,
                                                             tmp_path):
        config = particle_config()
        data = np.ones((5, 3), dtype=np.float32)
        runtime = DamarisRuntime(config, output_dir=str(tmp_path),
                                 nodes=1, clients_per_node=3)
        # Only ONE of three clients wrote; a local-scope client signal
        # would wait for all three — the external signal must not.
        runtime.clients[0].df_write_dynamic("tracers", 0, data)
        runtime.signal("snapshot", 0)
        runtime.shutdown()
        assert len(runtime.output_files()) == 1

    def test_signal_targets_one_node(self, tmp_path):
        config = particle_config()
        data = np.ones((5, 3), dtype=np.float32)
        runtime = DamarisRuntime(config, output_dir=str(tmp_path),
                                 nodes=2, clients_per_node=1)
        for client in runtime.clients:
            client.df_write_dynamic("tracers", 0, data)
        runtime.signal("snapshot", 0, node=1)
        runtime.shutdown()  # node 0 flushes at finalize
        files = runtime.output_files()
        assert len(files) == 2
        assert any("node1" in path for path in files)

    def test_unknown_event_rejected(self, tmp_path):
        config = particle_config()
        with DamarisRuntime(config, output_dir=str(tmp_path)) as runtime:
            with pytest.raises(UnknownEventError):
                runtime.signal("nope", 0)


class TestShdflsTool:
    def make_file(self, tmp_path):
        config = particle_config()
        data = np.linspace(0, 1, 60, dtype=np.float32).reshape(20, 3)
        with DamarisRuntime(config, output_dir=str(tmp_path)) as runtime:
            runtime.clients[0].df_write_dynamic("tracers", 0, data)
            runtime.clients[0].df_signal("end_iteration", 0)
        return runtime.output_files()[0]

    def test_describe_file(self, tmp_path):
        path = self.make_file(tmp_path)
        with SHDFReader(path) as reader:
            text = describe_file(reader)
        assert "tracers/src0" in text
        assert "(20, 3)" in text
        assert "float32" in text

    def test_describe_dataset(self, tmp_path):
        path = self.make_file(tmp_path)
        with SHDFReader(path) as reader:
            text = describe_dataset(reader, "tracers/src0")
        assert "min 0" in text
        assert "max 1" in text

    def test_cli_main(self, tmp_path, capsys):
        path = self.make_file(tmp_path)
        from repro.tools.shdfls import main
        assert main([str(path)]) == 0
        assert "tracers/src0" in capsys.readouterr().out
        assert main([str(path), "tracers/src0"]) == 0
        assert main(["--help"]) == 0


class TestFiguresCLI:
    def test_lists_figures(self, capsys):
        assert figures_main([]) == 0
        out = capsys.readouterr().out
        for name in DRIVERS:
            assert name in out

    def test_unknown_figure(self, capsys):
        assert figures_main(["figx"]) == 2

    def test_runs_cheap_driver(self, capsys):
        assert figures_main(["model"]) == 0
        assert "breakeven" in capsys.readouterr().out
