"""Integration tests: Damaris clients + dedicated-core server on the DES."""

import numpy as np
import pytest

from repro.cluster import Machine, MachineSpec, NoNoise
from repro.core import DamarisConfig, DamarisDeployment, VariableStore
from repro.core.metadata import StoredVariable
from repro.core.plugins import PluginRegistry
from repro.core.scheduler import TransferScheduler
from repro.core.server import DamarisOptions
from repro.core.shm import Block
from repro.errors import (
    ConfigurationError,
    PluginError,
    ReproError,
    UnknownEventError,
)
from repro.formats.compression import GZIP_MODEL
from repro.formats.layout import Layout
from repro.storage import Lustre, MetadataSpec, TargetSpec
from repro.units import GiB, KiB, MiB


def build(nodes=2, cores=4, buffer_mib=256, allocator="mutex",
          options=None, registry=None, seed=7):
    machine = Machine(
        MachineSpec(nodes=nodes, cores_per_node=cores,
                    mem_bandwidth=2 * GiB, nic_bandwidth=1 * GiB),
        seed=seed, noise=NoNoise(), completion_slack=0.0, fairness_slack=0.0)
    fs = Lustre(machine, ntargets=8,
                target_spec=TargetSpec(straggler_sigma=0.0,
                                       request_latency=0.0,
                                       object_half=1e9, stream_half=1e9),
                metadata_spec=MetadataSpec(sigma=0.0))
    config = DamarisConfig()
    config.add_layout("grid", "float", (64, 64, 16))  # 256 KiB
    config.add_variable("temperature", "grid")
    config.add_variable("wind_u", "grid")
    config.add_event("end_iteration", "persist")
    config.buffer_size = buffer_mib * MiB
    config.allocator = allocator
    deployment = DamarisDeployment(machine, fs, config, options=options,
                                   registry=registry)
    deployment.start()
    return machine, fs, deployment


def run_clients(machine, deployment, iterations=2, compute=5.0,
                variables=("temperature", "wind_u")):
    """Drive every client through the canonical CM1-style loop; returns the
    per-client list of write-phase durations."""
    phases = []

    def client_program(client):
        for iteration in range(iterations):
            yield client.core.compute(compute)
            start = machine.sim.now
            for variable in variables:
                yield machine.sim.process(
                    client.df_write(variable, iteration))
            yield machine.sim.process(
                client.df_signal("end_iteration", iteration))
            phases.append(machine.sim.now - start)
        yield machine.sim.process(client.df_finalize())

    for client in deployment.clients:
        machine.sim.process(client_program(client))
    machine.sim.run()
    return phases


class TestDeployment:
    def test_partitioning(self):
        machine, _, deployment = build(nodes=2, cores=4)
        assert len(deployment.servers) == 2
        assert deployment.nclients == 6  # 3 compute cores per node
        for node in machine.nodes:
            assert len(node.dedicated_cores()) == 1

    def test_cannot_dedicate_all_cores(self):
        machine = Machine(MachineSpec(nodes=1, cores_per_node=2), seed=0)
        from repro.storage import Lustre
        fs = Lustre(machine, ntargets=2)
        config = DamarisConfig()
        config.dedicated_cores = 2
        with pytest.raises(ConfigurationError):
            DamarisDeployment(machine, fs, config)

    def test_two_dedicated_cores_split_clients(self):
        machine = Machine(MachineSpec(nodes=1, cores_per_node=6), seed=0,
                          noise=NoNoise())
        fs = Lustre(machine, ntargets=2,
                    target_spec=TargetSpec(straggler_sigma=0.0))
        config = DamarisConfig()
        config.add_layout("l", "float", (16,))
        config.add_variable("v", "l")
        config.add_event("e", "persist")
        config.dedicated_cores = 2
        deployment = DamarisDeployment(machine, fs, config)
        assert len(deployment.servers) == 2
        assert sorted(s.nclients for s in deployment.servers) == [2, 2]

    def test_client_lookup(self):
        _, _, deployment = build(nodes=1, cores=4)
        client = deployment.client_for_core(0)
        assert client.rank == 0
        with pytest.raises(ConfigurationError):
            deployment.client_for_core(3)  # the dedicated core


class TestWritePath:
    def test_write_phase_is_memcpy_fast(self):
        machine, _, deployment = build()
        phases = run_clients(machine, deployment)
        # 2 variables x 256 KiB over a 2 GiB/s bus shared by 3 clients:
        # well under 10 ms, vastly below any real I/O time.
        assert max(phases) < 0.01

    def test_one_file_per_node_per_iteration(self):
        machine, fs, deployment = build(nodes=2)
        run_clients(machine, deployment, iterations=3)
        assert deployment.files_written() == 6
        assert fs.file_count == 6

    def test_file_contains_all_clients_data(self):
        machine, fs, deployment = build(nodes=1)
        run_clients(machine, deployment, iterations=1)
        file = fs.lookup("damaris/node0/core3/iter0.h5")
        data_bytes = 3 * 2 * 256 * KiB  # 3 clients x 2 variables
        assert file.size >= data_bytes  # plus format overhead

    def test_shared_memory_drains_after_persist(self):
        machine, _, deployment = build()
        run_clients(machine, deployment)
        for server in deployment.servers:
            assert server.segment.used_bytes == 0
            assert len(server.store) == 0

    def test_write_with_explicit_nbytes(self):
        machine, _, deployment = build(nodes=1)
        client = deployment.clients[0]

        def program():
            yield machine.sim.process(
                client.df_write("temperature", 0, nbytes=1000))
            yield machine.sim.process(client.df_signal("end_iteration", 0))
            yield machine.sim.process(client.df_finalize())

        # Other clients must finalize too so the server stops.
        def finalize_only(other):
            yield machine.sim.process(other.df_finalize())

        machine.sim.process(program())
        for other in deployment.clients[1:]:
            machine.sim.process(finalize_only(other))
        machine.sim.run()
        assert client.bytes_written == 1000

    def test_zero_copy_alloc_commit(self):
        machine, _, deployment = build(nodes=1)
        client = deployment.clients[0]
        log = {}

        def program():
            block = yield machine.sim.process(
                client.dc_alloc("temperature", 0))
            log["block"] = block
            # Simulation computes in place, then commits with no memcpy.
            start = machine.sim.now
            yield machine.sim.process(
                client.dc_commit("temperature", 0, block))
            log["commit_time"] = machine.sim.now - start
            yield machine.sim.process(client.df_signal("end_iteration", 0))
            yield machine.sim.process(client.df_finalize())

        def finalize_only(other):
            yield machine.sim.process(other.df_finalize())

        machine.sim.process(program())
        for other in deployment.clients[1:]:
            machine.sim.process(finalize_only(other))
        machine.sim.run()
        assert isinstance(log["block"], Block)
        assert log["commit_time"] < 1e-4  # notification only

    def test_full_buffer_applies_backpressure(self):
        # The buffer fits exactly one iteration's data (3 clients x 2
        # variables x 256 KiB = 1.5 MiB). With near-zero compute time,
        # iteration k+1's writes arrive before iteration k is persisted
        # and must stall until the server frees the buffer.
        machine, _, deployment = build(nodes=1, buffer_mib=2)
        run_clients(machine, deployment, iterations=3, compute=1e-4)
        assert any(client.stall_time > 0 for client in deployment.clients)
        assert deployment.files_written() == 3

    def test_partitioned_allocator_end_to_end(self):
        machine, _, deployment = build(allocator="partitioned")
        phases = run_clients(machine, deployment)
        assert deployment.files_written() == 4
        for server in deployment.servers:
            assert server.segment.used_bytes == 0

    def test_client_use_after_finalize_raises(self):
        machine, _, deployment = build(nodes=1)
        client = deployment.clients[0]

        def program():
            yield machine.sim.process(client.df_finalize())
            yield machine.sim.process(client.df_write("temperature", 0))

        machine.sim.process(program())
        with pytest.raises(ReproError):
            machine.sim.run()

    def test_unknown_event_rejected_at_client(self):
        machine, _, deployment = build(nodes=1)
        client = deployment.clients[0]

        def program():
            yield machine.sim.process(client.df_signal("no_such_event", 0))

        machine.sim.process(program())
        with pytest.raises(UnknownEventError):
            machine.sim.run()


class TestCompressionAndScheduling:
    def test_compression_shrinks_output(self):
        options = DamarisOptions(compression=GZIP_MODEL)
        config_patch = {"end_iteration": "compress"}
        machine, fs, deployment = build(options=options)
        # Rebind the event to the compress plugin.
        deployment.config.actions["end_iteration"] = \
            deployment.config.actions["end_iteration"].__class__(
                "end_iteration", "compress")
        run_clients(machine, deployment, iterations=1)
        totals = deployment.total_bytes()
        assert totals["out"] == pytest.approx(totals["raw"] / 1.87, rel=0.01)

    def test_compression_time_charged_to_dedicated_core(self):
        options = DamarisOptions(compression=GZIP_MODEL)
        machine, _, deployment = build(options=options)
        deployment.config.actions["end_iteration"] = \
            deployment.config.actions["end_iteration"].__class__(
                "end_iteration", "compress")
        run_clients(machine, deployment, iterations=1)
        plain_machine, _, plain_deployment = build()
        run_clients(plain_machine, plain_deployment, iterations=1)
        assert (np.mean(deployment.dedicated_write_times())
                > np.mean(plain_deployment.dedicated_write_times()))

    def test_scheduler_staggers_servers(self):
        options = DamarisOptions(use_scheduler=True)
        machine, _, deployment = build(nodes=4, options=options)
        run_clients(machine, deployment, iterations=3, compute=2.0)
        # After the first (unestimated) phase, servers write in distinct
        # slots: their persist completion times within an iteration spread.
        ends = [server.persist_end_by_iteration[2]
                for server in deployment.servers]
        assert max(ends) - min(ends) > 0.3  # ~2s period over 4 slots

    def test_scheduler_validation(self):
        with pytest.raises(ReproError):
            TransferScheduler(slot_index=3, nslots=3)
        with pytest.raises(ReproError):
            TransferScheduler(slot_index=0, nslots=0)

    def test_scheduler_learns_period(self):
        scheduler = TransferScheduler(slot_index=1, nslots=4)
        scheduler.observe_phase_start(100.0)
        assert scheduler.slot_offset() == 0.0  # no estimate yet
        scheduler.observe_phase_start(300.0)
        assert scheduler.estimated_period == 200.0
        assert scheduler.slot_offset() == 50.0
        assert scheduler.delay_until_slot(now=310.0, phase_start=300.0) == 40.0


class TestPluginsAndEPE:
    def test_custom_plugin_runs(self):
        registry = PluginRegistry()
        calls = []

        def my_plugin(context):
            calls.append(context.iteration)
            yield context.server.machine.sim.timeout(0.0)
            context.server.release_iteration(context.iteration)

        registry.register("do_something", my_plugin)
        machine, _, deployment = build(registry=registry)
        deployment.config.add_event("my_event", "do_something")

        def program(client):
            yield machine.sim.process(client.df_write("temperature", 0))
            yield machine.sim.process(client.df_signal("my_event", 0))
            yield machine.sim.process(client.df_finalize())

        for client in deployment.clients:
            machine.sim.process(program(client))
        machine.sim.run()
        # scope=local: fired once per node after all clients signalled.
        assert calls == [0, 0]

    def test_global_scope_fires_per_signal(self):
        registry = PluginRegistry()
        calls = []

        def counter_plugin(context):
            calls.append(context.event.source)
            return None

        registry.register("count", counter_plugin)
        machine, _, deployment = build(nodes=1, registry=registry)
        deployment.config.add_event("tick", "count", scope="global")

        def program(client):
            yield machine.sim.process(client.df_signal("tick", 0))
            yield machine.sim.process(client.df_finalize())

        for client in deployment.clients:
            machine.sim.process(program(client))
        machine.sim.run()
        assert len(calls) == 3  # one per client signal

    def test_registry_validation(self):
        registry = PluginRegistry()
        with pytest.raises(PluginError):
            registry.register("persist", lambda ctx: None)  # duplicate
        with pytest.raises(PluginError):
            registry.register("bad", "not-callable")
        with pytest.raises(PluginError):
            registry.get("missing")
        assert "compress" in registry

    def test_discard_plugin_frees_without_files(self):
        machine, fs, deployment = build(nodes=1)
        deployment.config.actions["end_iteration"] = \
            deployment.config.actions["end_iteration"].__class__(
                "end_iteration", "discard")
        run_clients(machine, deployment, iterations=1)
        assert fs.file_count == 0
        for server in deployment.servers:
            assert server.segment.used_bytes == 0

    def test_statistics_plugin(self):
        machine, fs, deployment = build(nodes=1)
        deployment.config.add_event("stats", "statistics")

        def program(client):
            yield machine.sim.process(client.df_write("temperature", 0))
            yield machine.sim.process(client.df_signal("stats", 0))
            yield machine.sim.process(client.df_signal("end_iteration", 0))
            yield machine.sim.process(client.df_finalize())

        for client in deployment.clients:
            machine.sim.process(program(client))
        machine.sim.run()
        assert deployment.servers[0].stats_runs == 1


class TestExternalSteering:
    def test_external_signal_persists_without_rendezvous(self):
        machine, fs, deployment = build(nodes=1)
        done = []

        def program(client, is_writer):
            if is_writer:
                yield machine.sim.process(client.df_write("temperature", 0))
            # Nobody signals end_iteration — the external tool will.
            yield client.core.compute(1.0)
            yield machine.sim.process(client.df_finalize())
            done.append(client.rank)

        for index, client in enumerate(deployment.clients):
            machine.sim.process(program(client, is_writer=(index == 0)))

        def external_tool():
            yield machine.sim.timeout(0.5)
            deployment.signal("end_iteration", 0)

        machine.sim.process(external_tool())
        machine.sim.run()
        assert len(done) == 3
        # The external signal persisted iteration 0 before finalize.
        assert deployment.files_written() >= 1

    def test_signal_validates_event(self):
        _, _, deployment = build(nodes=1)
        with pytest.raises(UnknownEventError):
            deployment.signal("ghost-event", 0)


class TestVariableStore:
    def entry(self, name="v", iteration=0, source=0):
        return StoredVariable(
            name=name, iteration=iteration, source=source,
            layout=Layout("l", "float", (4,)), block=Block(0, 16), nbytes=16)

    def test_add_get(self):
        store = VariableStore()
        entry = self.entry()
        store.add(entry)
        assert store.get("v", 0, 0) is entry
        assert len(store) == 1

    def test_duplicate_rejected(self):
        store = VariableStore()
        store.add(self.entry())
        with pytest.raises(ReproError):
            store.add(self.entry())

    def test_missing_raises(self):
        with pytest.raises(ReproError):
            VariableStore().get("v", 0, 0)

    def test_iteration_grouping(self):
        store = VariableStore()
        store.add(self.entry(source=0))
        store.add(self.entry(source=1))
        store.add(self.entry(iteration=1, source=0))
        assert len(store.iteration_entries(0)) == 2
        assert store.iterations() == [0, 1]
        popped = store.pop_iteration(0)
        assert len(popped) == 2
        assert len(store) == 1
        assert store.total_buffered_bytes() == 16

    def test_output_bytes_tracks_processing(self):
        entry = self.entry()
        assert entry.output_bytes == 16
        entry.processed_bytes = 4
        assert entry.output_bytes == 4
