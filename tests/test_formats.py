"""Tests for layouts, compression codecs and the SHDF container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import FormatError
from repro.formats import (
    GzipCodec,
    HDF5CostModel,
    Layout,
    Precision16Codec,
    SHDFReader,
    SHDFWriter,
    compress_pipeline,
    decompress_pipeline,
)
from repro.formats.compression import (
    GZIP16_MODEL,
    GZIP_MODEL,
    CompressionModel,
    compression_ratio_percent,
)


class TestLayout:
    def test_paper_example(self):
        # <layout name="my_layout" type="real" dimensions="64,16,2"
        #         language="fortran" />
        layout = Layout.parse("my_layout", "real", "64,16,2", "fortran")
        assert layout.element_count == 64 * 16 * 2
        assert layout.nbytes == 64 * 16 * 2 * 4
        assert layout.shape == (2, 16, 64)  # fortran: reversed for numpy
        assert layout.dtype == np.float32

    def test_c_ordering_keeps_shape(self):
        layout = Layout.parse("l", "double", "4,8")
        assert layout.shape == (4, 8)
        assert layout.element_size == 8

    def test_matches(self):
        layout = Layout("l", "float", (8, 8))
        assert layout.matches(np.zeros((8, 8), dtype=np.float32))
        assert layout.matches(np.zeros(64, dtype=np.float32))
        assert not layout.matches(np.zeros((8, 8), dtype=np.float64))
        assert not layout.matches(np.zeros((4, 8), dtype=np.float32))

    def test_unknown_type(self):
        with pytest.raises(FormatError):
            Layout("l", "quaternion", (4,))

    def test_bad_dimensions(self):
        with pytest.raises(FormatError):
            Layout("l", "int", ())
        with pytest.raises(FormatError):
            Layout("l", "int", (0, 4))
        with pytest.raises(FormatError):
            Layout.parse("l", "int", "a,b")

    def test_bad_language(self):
        with pytest.raises(FormatError):
            Layout("l", "int", (4,), language="cobol")


class TestCodecs:
    def test_gzip_roundtrip(self):
        rng = np.random.default_rng(0)
        array = rng.normal(size=(16, 16)).astype(np.float32)
        codec = GzipCodec()
        payload, meta = codec.encode(array)
        back = codec.decode(payload, meta)
        assert np.array_equal(array, back)

    def test_gzip_compresses_smooth_data(self):
        smooth = np.zeros((64, 64), dtype=np.float32)
        payload, _ = GzipCodec().encode(smooth)
        assert len(payload) < smooth.nbytes / 10

    def test_gzip_level_validation(self):
        with pytest.raises(FormatError):
            GzipCodec(level=0)

    def test_precision16_halves_floats(self):
        array = np.linspace(0, 1, 128, dtype=np.float32)
        payload, meta = Precision16Codec().encode(array)
        assert len(payload) == array.nbytes // 2
        back = Precision16Codec().decode(payload, meta)
        assert back.dtype == np.float32
        assert np.allclose(array, back, atol=1e-3)

    def test_precision16_passes_ints_through(self):
        array = np.arange(10, dtype=np.int32)
        payload, meta = Precision16Codec().encode(array)
        back = Precision16Codec().decode(payload, meta)
        assert np.array_equal(array, back)

    def test_pipeline_chain_roundtrip(self):
        rng = np.random.default_rng(1)
        array = rng.normal(size=(32, 32)).astype(np.float32)
        codecs = [Precision16Codec(), GzipCodec()]
        payload, metas = compress_pipeline(array, codecs)
        back = decompress_pipeline(payload, metas)
        assert back.shape == array.shape
        assert np.allclose(array, back, atol=2e-3)

    def test_empty_pipeline_is_raw(self):
        array = np.arange(6, dtype=np.int16).reshape(2, 3)
        payload, metas = compress_pipeline(array, [])
        assert payload == array.tobytes()
        assert np.array_equal(decompress_pipeline(payload, metas), array)

    @given(hnp.arrays(dtype=np.float32,
                      shape=hnp.array_shapes(min_dims=1, max_dims=3,
                                             max_side=16),
                      elements=st.floats(-1e6, 1e6, width=32)))
    @settings(max_examples=40, deadline=None)
    def test_gzip_roundtrip_property(self, array):
        payload, metas = compress_pipeline(array, [GzipCodec()])
        assert np.array_equal(decompress_pipeline(payload, metas), array)


class TestCompressionModel:
    def test_paper_conventions(self):
        assert compression_ratio_percent(187, 100) == pytest.approx(187.0)
        assert GZIP_MODEL.output_bytes(187.0) == pytest.approx(100.0)
        assert GZIP16_MODEL.output_bytes(600.0) == pytest.approx(100.0)

    def test_cpu_seconds(self):
        model = CompressionModel(bandwidth=100e6, ratio_percent=200.0)
        assert model.cpu_seconds(200e6) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(FormatError):
            CompressionModel(bandwidth=0)
        with pytest.raises(FormatError):
            CompressionModel(ratio_percent=50.0)
        with pytest.raises(FormatError):
            compression_ratio_percent(100, 0)


class TestHDF5CostModel:
    def test_file_bytes_adds_overheads(self):
        model = HDF5CostModel(file_overhead_bytes=100,
                              dataset_overhead_bytes=10)
        assert model.file_bytes(1000, ndatasets=3) == 1130

    def test_collective_mode_rejects_compression(self):
        model = HDF5CostModel(collective=True)
        with pytest.raises(FormatError):
            model.compressed_bytes(1000, GZIP_MODEL)

    def test_independent_mode_compresses(self):
        model = HDF5CostModel(collective=False)
        assert model.compressed_bytes(187.0, GZIP_MODEL) == pytest.approx(100.0)


class TestSHDF:
    def test_roundtrip_plain(self, tmp_path):
        path = str(tmp_path / "f.shdf")
        rng = np.random.default_rng(2)
        array = rng.normal(size=(20, 30)).astype(np.float64)
        with SHDFWriter(path) as writer:
            writer.write_dataset("grid/temp", array)
            writer.set_attr("iteration", 7)
        with SHDFReader(path) as reader:
            assert reader.datasets == ["grid/temp"]
            assert "grid" in reader.groups
            assert reader.attrs["iteration"] == 7
            assert np.array_equal(reader.read_dataset("grid/temp"), array)

    def test_roundtrip_chunked_compressed(self, tmp_path):
        path = str(tmp_path / "f.shdf")
        x = np.linspace(0, 4 * np.pi, 96)
        array = np.sin(np.add.outer(x, x)).astype(np.float32)
        with SHDFWriter(path) as writer:
            stored = writer.write_dataset("v", array, chunk_shape=(32, 32),
                                          codecs=[GzipCodec()])
        assert stored < array.nbytes  # smooth field compresses
        with SHDFReader(path) as reader:
            assert np.array_equal(reader.read_dataset("v"), array)
            assert reader.stored_bytes("v") == stored
            assert reader.raw_bytes("v") == array.nbytes

    def test_lossy_pipeline(self, tmp_path):
        path = str(tmp_path / "f.shdf")
        array = np.linspace(0, 1, 1000, dtype=np.float32)
        with SHDFWriter(path) as writer:
            writer.write_dataset("v", array,
                                 codecs=[Precision16Codec(), GzipCodec()])
        with SHDFReader(path) as reader:
            assert np.allclose(reader.read_dataset("v"), array, atol=1e-3)

    def test_dataset_attrs(self, tmp_path):
        path = str(tmp_path / "f.shdf")
        with SHDFWriter(path) as writer:
            writer.write_dataset("v", np.zeros(4), attrs={"unit": "K"})
            writer.set_attr("source", 3, dataset="v")
        with SHDFReader(path) as reader:
            assert reader.dataset_attrs("v") == {"unit": "K", "source": 3}

    def test_duplicate_dataset_raises(self, tmp_path):
        path = str(tmp_path / "f.shdf")
        with SHDFWriter(path) as writer:
            writer.write_dataset("v", np.zeros(4))
            with pytest.raises(FormatError):
                writer.write_dataset("v", np.zeros(4))

    def test_missing_dataset_raises(self, tmp_path):
        path = str(tmp_path / "f.shdf")
        with SHDFWriter(path) as writer:
            writer.write_dataset("v", np.zeros(4))
        with SHDFReader(path) as reader:
            with pytest.raises(FormatError):
                reader.read_dataset("nope")

    def test_not_shdf_file(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"definitely not shdf")
        with pytest.raises(FormatError):
            SHDFReader(str(path))

    def test_write_after_close_raises(self, tmp_path):
        path = str(tmp_path / "f.shdf")
        writer = SHDFWriter(path)
        writer.close()
        with pytest.raises(FormatError):
            writer.write_dataset("v", np.zeros(4))

    def test_scalar_promoted_to_1d(self, tmp_path):
        path = str(tmp_path / "f.shdf")
        with SHDFWriter(path) as writer:
            writer.write_dataset("s", np.float64(3.5))
        with SHDFReader(path) as reader:
            assert reader.read_dataset("s").tolist() == [3.5]

    def test_bad_chunk_shape(self, tmp_path):
        path = str(tmp_path / "f.shdf")
        with SHDFWriter(path) as writer:
            with pytest.raises(FormatError):
                writer.write_dataset("v", np.zeros((4, 4)), chunk_shape=(2,))
            with pytest.raises(FormatError):
                writer.write_dataset("v", np.zeros((4, 4)),
                                     chunk_shape=(0, 2))

    @given(hnp.arrays(dtype=np.float32,
                      shape=hnp.array_shapes(min_dims=1, max_dims=3,
                                             max_side=20),
                      elements=st.floats(-1e3, 1e3, width=32)))
    @settings(max_examples=25, deadline=None)
    def test_shdf_roundtrip_property(self, tmp_path_factory, array):
        path = str(tmp_path_factory.mktemp("shdf") / "f.shdf")
        chunk = tuple(max(1, s // 2) for s in array.shape)
        with SHDFWriter(path) as writer:
            writer.write_dataset("v", array, chunk_shape=chunk,
                                 codecs=[GzipCodec()])
        with SHDFReader(path) as reader:
            assert np.array_equal(reader.read_dataset("v"), array)
