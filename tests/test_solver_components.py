"""The component-partitioned incremental solver vs the forced-global one.

The tentpole property: at ``fairness_slack=0`` exact max-min fairness
decomposes over connected components of the resource-contention graph,
so ``REPRO_SOLVER=component`` (solve only the dirty components) must be
*bit-identical* — completion times, bytes moved, rate trajectories — to
``REPRO_SOLVER=global`` (re-solve everything on every change). The storm
tests here throw randomized multi-component workloads with arrivals,
rate caps, cancellations, capacity changes and component-bridging flows
at both solvers and diff the full observable outcome.

Also covered: the union-find component registry (merge on arrival, lazy
split on rebuild), the per-component completion targets feeding the
tick, solver selection (argument vs ``REPRO_SOLVER``), the solver
statistics surfaced through the tracer and ``tracereport``, and
serial-vs-parallel sweep determinism under the component solver.
"""

import math

import numpy as np
import pytest

from repro.des import FlowNetwork, Simulator
from repro.des.bandwidth import SOLVER_COMPONENT, SOLVER_GLOBAL
from repro.errors import SimulationError


# ---------------------------------------------------------------------- #
# randomized storm equivalence
# ---------------------------------------------------------------------- #
def _run_storm(solver, seed, nodes=12, writers=4, fairness_slack=0.0,
               completion_slack=0.0):
    """One randomized multi-component storm; returns every observable.

    Each node owns a private NIC and target (one component per node);
    the workload mixes infinite and finite rate caps, staggered
    arrivals, mid-run capacity changes, cancellations and occasional
    cross-node flows that temporarily bridge two components.
    """
    rng = np.random.default_rng(seed)
    sim = Simulator()
    net = FlowNetwork(sim, solver=solver, fairness_slack=fairness_slack,
                      completion_slack=completion_slack)
    nics = [net.add_capacity(f"nic{i}", 1e9) for i in range(nodes)]
    tgts = [net.add_capacity(f"ost{i}", 4e8 * (1 + 1e-3 * i))
            for i in range(nodes)]
    completions = []
    flows = []

    def record(evt):
        completions.append((evt.value.label, evt.value.end_time))

    for n in range(nodes):
        for w in range(writers):
            nbytes = float(rng.integers(1_000_000, 30_000_000))
            start = float(rng.uniform(0.0, 0.2))
            cap = math.inf if rng.random() < 0.5 else float(
                rng.uniform(5e7, 3e8))

            def launch(n=n, w=w, nbytes=nbytes, cap=cap):
                flow = net.transfer([nics[n], tgts[n]], nbytes,
                                    rate_cap=cap, label=f"w{n}.{w}")
                flow.event.callbacks.append(record)
                flows.append(flow)
            sim.schedule_callback(start, launch)

    # A few cross-node flows: each bridges two otherwise-disjoint
    # components for its lifetime (exercises union + later split).
    for b in range(max(2, nodes // 4)):
        a, c = rng.choice(nodes, size=2, replace=False)
        nbytes = float(rng.integers(2_000_000, 20_000_000))
        start = float(rng.uniform(0.0, 0.15))

        def launch_bridge(a=int(a), c=int(c), b=b, nbytes=nbytes):
            flow = net.transfer([nics[a], tgts[c]], nbytes,
                                label=f"bridge{b}")
            flow.event.callbacks.append(record)
            flows.append(flow)
        sim.schedule_callback(start, launch_bridge)

    # Mid-run interference: capacity drops/restores on random targets.
    for k in range(3):
        j = int(rng.integers(0, nodes))
        factor = float(rng.uniform(0.4, 0.9))
        at = float(rng.uniform(0.05, 0.25))
        sim.schedule_callback(
            at, lambda j=j, factor=factor: tgts[j].set_capacity(
                4e8 * (1 + 1e-3 * j) * factor))

    # A couple of cancellations of whatever is still running.
    def cancel_one():
        for flow in flows:
            if flow.end_time is None and net._flows[flow.index] is flow:
                flow.cancel()
                return
    sim.schedule_callback(float(rng.uniform(0.08, 0.2)), cancel_one)

    sim.run()
    return {
        "completions": completions,
        "bytes_moved": net.total_bytes_moved,
        "completed": net.completed_flows,
        "sim_time": sim.now,
        "stats": net.solver_stats,
    }


@pytest.mark.parametrize("seed", range(8))
def test_storm_bit_identical_to_global(seed):
    comp = _run_storm(SOLVER_COMPONENT, seed)
    glob = _run_storm(SOLVER_GLOBAL, seed)
    assert comp["completions"] == glob["completions"]
    assert comp["bytes_moved"] == glob["bytes_moved"]
    assert comp["completed"] == glob["completed"]
    assert comp["sim_time"] == glob["sim_time"]


@pytest.mark.parametrize("seed", range(4))
def test_storm_with_completion_slack_bit_identical(seed):
    """Completion batching is applied globally in both modes, so it must
    not break the equivalence either."""
    comp = _run_storm(SOLVER_COMPONENT, seed, completion_slack=0.01)
    glob = _run_storm(SOLVER_GLOBAL, seed, completion_slack=0.01)
    assert comp["completions"] == glob["completions"]
    assert comp["bytes_moved"] == glob["bytes_moved"]


def test_component_solver_actually_partitions():
    """The equivalence tests are vacuous if the component solver secretly
    always solves everything; check it solves far fewer flows."""
    comp = _run_storm(SOLVER_COMPONENT, 99, nodes=16)
    glob = _run_storm(SOLVER_GLOBAL, 99, nodes=16)
    assert comp["stats"]["component_solves"] > 0
    # A batch whose dirty set happens to span every active flow takes
    # the whole-network path even in component mode; it must be rare.
    assert comp["stats"]["full_solves"] < comp["stats"]["component_solves"]
    assert glob["stats"]["component_solves"] == 0
    assert comp["stats"]["flows_solved"] < glob["stats"]["flows_solved"] / 2


def test_storm_positive_fairness_slack_stays_sane():
    """At slack>0 the solvers batch differently (documented); both must
    still conserve work and complete every flow."""
    comp = _run_storm(SOLVER_COMPONENT, 5, fairness_slack=0.08)
    glob = _run_storm(SOLVER_GLOBAL, 5, fairness_slack=0.08)
    assert comp["completed"] == glob["completed"]
    assert comp["bytes_moved"] == pytest.approx(glob["bytes_moved"],
                                                rel=1e-6)


# ---------------------------------------------------------------------- #
# union-find component registry
# ---------------------------------------------------------------------- #
def test_components_merge_on_bridging_flow():
    sim = Simulator()
    net = FlowNetwork(sim, solver=SOLVER_COMPONENT)
    a = net.add_capacity("a", 1e9)
    b = net.add_capacity("b", 1e9)
    net.transfer([a], 1e6)
    net.transfer([b], 1e6)
    sim.run(until=0.0)
    assert net.component_of(a) != net.component_of(b)
    assert net.components_live == 2
    net.transfer([a, b], 1e6, label="bridge")
    sim.run(until=0.0)
    assert net.component_of(a) == net.component_of(b)
    assert net.components_live == 1


def test_components_split_after_rebuild():
    sim = Simulator()
    net = FlowNetwork(sim, solver=SOLVER_COMPONENT)
    a = net.add_capacity("a", 1e9)
    b = net.add_capacity("b", 1e9)
    net.transfer([a], 1e9, label="left")
    net.transfer([b], 1e9, label="right")
    bridge = net.transfer([a, b], 1e5, label="bridge")
    sim.run(until=0.0)
    assert net.component_of(a) == net.component_of(b)
    sim.run_until_complete(bridge.event)  # departure leaves unions coarse
    assert bridge.end_time is not None
    assert net.component_of(a) == net.component_of(b)
    net._rebuild_components()  # the lazy split, forced
    assert net.component_of(a) != net.component_of(b)
    assert net.components_live == 2
    # The rebuild must not disturb the outcome: both survivors finish.
    sim.run()
    assert net.completed_flows == 3


def test_rebuild_triggers_after_many_departures():
    sim = Simulator()
    net = FlowNetwork(sim, solver=SOLVER_COMPONENT)
    caps = [net.add_capacity(f"c{i}", 1e9) for i in range(4)]
    # Far more multi-resource departures than the rebuild threshold.
    for k in range(200):
        net.transfer([caps[k % 3], caps[k % 3 + 1]], 1e5)
        sim.run()
    assert net.solver_stats["rebuilds"] >= 1
    assert net.completed_flows == 200


def test_capless_flows_never_contend():
    """Flows with no resources live in the reserved cap-only component,
    are granted their rate cap, and are never re-solved."""
    sim = Simulator()
    net = FlowNetwork(sim, solver=SOLVER_COMPONENT)
    link = net.add_capacity("link", 1e9)
    free = net.transfer([], 1e6, rate_cap=2e6, label="capless")
    shared = net.transfer([link], 1e6, label="shared")
    sim.run(until=0.0)
    assert float(net._rate[free.index]) == 2e6
    sim.run()
    assert free.end_time == pytest.approx(0.5)
    assert shared.end_time is not None


def test_component_targets_merge_to_tick_target():
    sim = Simulator()
    net = FlowNetwork(sim, solver=SOLVER_COMPONENT)
    links = [net.add_capacity(f"l{i}", 1e9) for i in range(5)]
    for i, link in enumerate(links):
        net.transfer([link], 1e6 * (i + 1))
    sim.run(until=0.0)
    targets = net.component_targets()
    assert len(targets) == 5
    assert min(targets.values()) == net._tick_target


# ---------------------------------------------------------------------- #
# solver selection
# ---------------------------------------------------------------------- #
def test_solver_argument_beats_environment(monkeypatch):
    monkeypatch.setenv("REPRO_SOLVER", "global")
    net = FlowNetwork(Simulator(), solver="component")
    assert net.solver == SOLVER_COMPONENT


def test_solver_from_environment(monkeypatch):
    monkeypatch.setenv("REPRO_SOLVER", "global")
    assert FlowNetwork(Simulator()).solver == SOLVER_GLOBAL
    monkeypatch.setenv("REPRO_SOLVER", "component")
    assert FlowNetwork(Simulator()).solver == SOLVER_COMPONENT
    monkeypatch.delenv("REPRO_SOLVER")
    assert FlowNetwork(Simulator()).solver == SOLVER_COMPONENT


def test_invalid_solver_rejected(monkeypatch):
    with pytest.raises(SimulationError):
        FlowNetwork(Simulator(), solver="quantum")
    monkeypatch.setenv("REPRO_SOLVER", "fast")
    with pytest.raises(SimulationError):
        FlowNetwork(Simulator())


def test_machine_solver_passthrough():
    from repro.cluster.machine import Machine, MachineSpec

    spec = MachineSpec(nodes=1, cores_per_node=2)
    machine = Machine(spec, solver="global")
    assert machine.flows.solver == SOLVER_GLOBAL


def test_solver_mode_folded_into_cache_context(monkeypatch):
    from repro.experiments.executor import env_mode_context

    monkeypatch.delenv("REPRO_SOLVER", raising=False)
    assert env_mode_context()["repro_solver"] == SOLVER_COMPONENT
    monkeypatch.setenv("REPRO_SOLVER", "global")
    assert env_mode_context()["repro_solver"] == SOLVER_GLOBAL


# ---------------------------------------------------------------------- #
# incremental bookkeeping
# ---------------------------------------------------------------------- #
def test_active_indices_incremental_matches_mask():
    """The packed ascending index array must track the active mask
    through random interleaved arrivals and departures."""
    rng = np.random.default_rng(11)
    sim = Simulator()
    net = FlowNetwork(sim)
    link = net.add_capacity("link", 1e9)
    live = []
    for step in range(300):
        if live and rng.random() < 0.45:
            live.pop(int(rng.integers(len(live)))).cancel()
        else:
            live.append(net.transfer([link], 1e9))
        idx = net._active_indices()
        expected = np.flatnonzero(net._active)
        assert np.array_equal(idx, expected), f"diverged at step {step}"
        assert np.all(np.diff(idx) > 0)


def test_tick_heap_stays_small_under_churn():
    """Arming must not leak one heap entry per recompute (the old
    `_tick_times` list bug class)."""
    sim = Simulator()
    net = FlowNetwork(sim)
    link = net.add_capacity("link", 1e9)
    peak = [0]
    count = [0]

    def arrive():
        count[0] += 1
        net.transfer([link], 5e5)
        if count[0] < 300:
            sim.schedule_callback(1e-4, arrive)
        peak[0] = max(peak[0], len(net._tick_heap))

    sim.schedule_callback(0.0, arrive)
    sim.run()
    assert net.completed_flows == 300
    assert peak[0] <= 4


# ---------------------------------------------------------------------- #
# solver statistics and reporting
# ---------------------------------------------------------------------- #
def test_solver_stats_counters():
    result = _run_storm(SOLVER_COMPONENT, 3)
    stats = result["stats"]
    assert stats["solver"] == SOLVER_COMPONENT
    assert stats["recomputes"] > 0
    assert stats["component_solves"] > 0
    assert stats["components_solved"] >= stats["component_solves"]
    assert stats["components_live"] == 0  # storm drained


def test_solver_trace_events_and_table():
    from repro.observe import Tracer, solver_table

    sim = Simulator()
    tracer = Tracer(clock=lambda: sim.now, clock_name="sim")
    sim.tracer = tracer
    net = FlowNetwork(sim, solver=SOLVER_COMPONENT)
    link_a = net.add_capacity("a", 1e9)
    link_b = net.add_capacity("b", 1e9)
    net.transfer([link_a], 1e6)
    net.transfer([link_b], 2e6)
    sim.run()

    events = tracer.events_in("solver")
    assert events, "no solver events recorded"
    rows = solver_table(tracer)
    assert len(rows) == 1
    row = rows[0]
    assert row["solver"] == SOLVER_COMPONENT
    assert row["recomputes"] == net.solver_stats["recomputes"]
    assert row["component"] == net.solver_stats["component_solves"]
    assert row["fast"] == net.solver_stats["fast_grants"]


def test_tracereport_by_solver(tmp_path, capsys):
    from repro.observe import Tracer, dump_jsonl
    from repro.tools import tracereport

    sim = Simulator()
    tracer = Tracer(clock=lambda: sim.now, clock_name="sim")
    sim.tracer = tracer
    net = FlowNetwork(sim)
    link = net.add_capacity("link", 1e9)
    net.transfer([link], 1e6)
    sim.run()

    path = tmp_path / "trace.jsonl"
    dump_jsonl(tracer, str(path))
    assert tracereport.main([str(path), "--by", "solver"]) == 0
    out = capsys.readouterr().out
    assert "component" in out
    assert "recomputes" in out
    # The default summary view includes the solver section too.
    assert tracereport.main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "-- bandwidth solver --" in out


def test_render_summary_without_solver_events():
    """Traces from runs without flow networks keep rendering."""
    from repro.observe import Tracer, render_summary

    tracer = Tracer()
    tracer.record_span("persist", "it0", "server", 0.0, 1.0)
    text = render_summary(tracer)
    assert "bandwidth solver" not in text


# ---------------------------------------------------------------------- #
# serial vs parallel sweep determinism under the component solver
# ---------------------------------------------------------------------- #
def _storm_task(seed):
    return _run_storm(SOLVER_COMPONENT, seed)["completions"]


def test_serial_vs_parallel_sweep_determinism(monkeypatch):
    from repro.experiments.executor import SweepTask, run_sweep

    monkeypatch.delenv("REPRO_TRACE", raising=False)
    tasks = [SweepTask(_storm_task, args=(seed,), label=f"storm{seed}")
             for seed in range(4)]
    serial = run_sweep(tasks, parallel=1, cache=False)
    parallel = run_sweep(tasks, parallel=2, cache=False)
    assert serial == parallel
