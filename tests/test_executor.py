"""Tests for the cache-aware sweep executor and driver determinism."""

import os
import uuid
import warnings

import pytest

from repro.cache import ResultCache
from repro.experiments import figures
from repro.experiments.executor import (
    SweepTask,
    default_parallelism,
    pool_chunksize,
    resolve_cache_context,
    run_sweep,
)


def _square(x):
    return x * x


def _pid_and_value(x):
    return (os.getpid(), x)


def _record_call(x, marker_dir):
    """Leave one unique marker file per invocation (worker-safe)."""
    path = os.path.join(marker_dir, f"{uuid.uuid4().hex}.call")
    with open(path, "w", encoding="utf-8"):
        pass
    return x * 10


def _calls(marker_dir):
    return len([name for name in os.listdir(marker_dir)
                if name.endswith(".call")])


def _type_name(x):
    return type(x).__name__


class TestDefaultParallelism:
    def test_unset_means_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        assert default_parallelism() == 1

    def test_env_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "4")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a valid value must not warn
            assert default_parallelism() == 4

    def test_garbage_warns_and_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "eight")
        with pytest.warns(RuntimeWarning, match="'eight'"):
            assert default_parallelism() == 1

    def test_negative_warns_and_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "-2")
        with pytest.warns(RuntimeWarning, match="'-2'"):
            assert default_parallelism() == 1

    def test_zero_warns_and_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        with pytest.warns(RuntimeWarning, match="'0'"):
            assert default_parallelism() == 1


class TestPoolChunksize:
    def test_serial_is_one(self):
        assert pool_chunksize(1000, 1) == 1

    def test_small_sweep_stays_fine_grained(self):
        assert pool_chunksize(10, 4) == 1

    def test_large_sweep_amortises_ipc(self):
        assert pool_chunksize(256, 4) == 16

    def test_capped(self):
        assert pool_chunksize(100000, 2) == 16

    def test_chunked_results_identical_to_unchunked(self):
        tasks = [SweepTask(_square, (i,)) for i in range(40)]
        unchunked = run_sweep(tasks, parallel=3, cache=False, chunksize=1)
        chunked = run_sweep(tasks, parallel=3, cache=False, chunksize=7)
        auto = run_sweep(tasks, parallel=3, cache=False)
        assert unchunked == chunked == auto == [i * i for i in range(40)]


class TestSweepTask:
    def test_lambda_rejected(self):
        with pytest.raises(TypeError):
            SweepTask(lambda: 1)

    def test_nested_function_rejected(self):
        def local():
            return 1

        with pytest.raises(TypeError):
            SweepTask(local)

    def test_run(self):
        assert SweepTask(_square, (3,)).run() == 9


class TestRunSweep:
    def test_serial_preserves_order(self):
        tasks = [SweepTask(_square, (i,)) for i in range(10)]
        assert run_sweep(tasks, parallel=1) == [i * i for i in range(10)]

    def test_parallel_preserves_order(self):
        tasks = [SweepTask(_square, (i,)) for i in range(10)]
        assert run_sweep(tasks, parallel=3) == [i * i for i in range(10)]

    def test_parallel_uses_worker_processes(self):
        tasks = [SweepTask(_pid_and_value, (i,)) for i in range(4)]
        results = run_sweep(tasks, parallel=2)
        assert [value for _pid, value in results] == [0, 1, 2, 3]
        assert all(pid != os.getpid() for pid, _value in results)

    def test_empty_sweep(self):
        assert run_sweep([]) == []

    def test_env_default_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "2")
        tasks = [SweepTask(_pid_and_value, (i,)) for i in range(2)]
        results = run_sweep(tasks)
        assert all(pid != os.getpid() for pid, _value in results)


class TestRunSweepCache:
    """The cache-aware scheduler: hits skip execution, misses write back."""

    def _cache(self, tmp_path):
        return ResultCache(str(tmp_path / "cache"), fingerprint="test-fp")

    def _tasks(self, tmp_path, n=6):
        marker = tmp_path / "markers"
        marker.mkdir(exist_ok=True)
        return ([SweepTask(_record_call, (i, str(marker))) for i in range(n)],
                str(marker))

    def test_warm_run_recomputes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        cache = self._cache(tmp_path)
        tasks, marker = self._tasks(tmp_path)
        cold = run_sweep(tasks, parallel=1, cache=cache)
        assert _calls(marker) == 6
        assert cache.stats.misses == 6 and cache.stats.writes == 6
        warm = run_sweep(tasks, parallel=1, cache=cache)
        assert _calls(marker) == 6  # nothing recomputed
        assert cache.stats.hits == 6
        assert warm == cold == [i * 10 for i in range(6)]

    def test_warm_parallel_matches_cold_serial(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        cache = self._cache(tmp_path)
        tasks, marker = self._tasks(tmp_path)
        cold = run_sweep(tasks, parallel=2, cache=cache)
        assert _calls(marker) == 6
        warm = run_sweep(tasks, parallel=2, cache=cache)
        assert _calls(marker) == 6
        assert warm == cold

    def test_partial_invalidation_only_recomputes_changed(self, tmp_path,
                                                          monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        cache = self._cache(tmp_path)
        tasks, marker = self._tasks(tmp_path)
        run_sweep(tasks, parallel=1, cache=cache)
        # One new point (the incremental-figure workflow): only it runs.
        extra_marker = tmp_path / "markers"
        tasks.append(SweepTask(_record_call, (99, str(extra_marker))))
        results = run_sweep(tasks, parallel=1, cache=cache)
        assert _calls(marker) == 7
        assert results == [i * 10 for i in range(6)] + [990]

    def test_fingerprint_change_invalidates_everything(self, tmp_path,
                                                       monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        tasks, marker = self._tasks(tmp_path)
        old = ResultCache(str(tmp_path / "cache"), fingerprint="model-v1")
        run_sweep(tasks, parallel=1, cache=old)
        assert _calls(marker) == 6
        new = ResultCache(str(tmp_path / "cache"), fingerprint="model-v2")
        run_sweep(tasks, parallel=1, cache=new)
        assert _calls(marker) == 12  # a stale entry is never served
        assert new.stats.hits == 0 and new.stats.misses == 6

    def test_corrupt_entry_recomputed(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        cache = self._cache(tmp_path)
        tasks, marker = self._tasks(tmp_path, n=1)
        run_sweep(tasks, parallel=1, cache=cache)
        # The store's own context stays None (run_sweep never mutates
        # it); reproducing the sweep's key needs the same context the
        # executor resolved.
        key = cache.key_for(tasks[0].fn, tasks[0].args, tasks[0].kwargs,
                            context=resolve_cache_context(cache))
        with open(cache.entry_path(key), "r+b") as fh:
            fh.truncate(10)
        results = run_sweep(tasks, parallel=1, cache=cache)
        assert results == [0]
        assert _calls(marker) == 2
        assert cache.stats.corrupt == 1

    def test_trace_run_bypasses_cache(self, tmp_path, monkeypatch):
        cache = self._cache(tmp_path)
        tasks, marker = self._tasks(tmp_path, n=2)
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        run_sweep(tasks, parallel=1, cache=cache)
        assert _calls(marker) == 2
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "traces"))
        run_sweep(tasks, parallel=1, cache=cache)
        assert _calls(marker) == 4  # cache not consulted under tracing
        assert cache.stats.bypasses == 2

    def test_uncacheable_args_bypass_not_crash(self, tmp_path, monkeypatch):
        # An argument the canonical encoder refuses (here a raw object())
        # must run the task every time, counted as a bypass — mixed into
        # the same sweep as cacheable tasks.
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        cache = self._cache(tmp_path)
        tasks = [SweepTask(_type_name, (object(),)), SweepTask(_square, (4,))]
        first = run_sweep(tasks, parallel=1, cache=cache)
        second = run_sweep(tasks, parallel=1, cache=cache)
        assert first == second == ["object", 16]
        assert cache.stats.bypasses == 2  # the object() task, both runs
        assert cache.stats.hits == 1      # the square task, second run

    def test_env_resolution(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        tasks, marker = self._tasks(tmp_path, n=3)
        run_sweep(tasks, parallel=1)
        run_sweep(tasks, parallel=1)
        assert _calls(marker) == 3
        store = ResultCache(str(tmp_path / "envcache"))
        assert store.totals()["hits"] == 3
        assert store.totals()["misses"] == 3

    def test_cache_false_forces_off(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        tasks, marker = self._tasks(tmp_path, n=2)
        run_sweep(tasks, parallel=1, cache=False)
        run_sweep(tasks, parallel=1, cache=False)
        assert _calls(marker) == 4


class TestDriverDeterminism:
    """Same seed ⇒ bit-identical figure output, serial vs parallel."""

    def test_fig2_serial_vs_parallel(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        serial = figures.fig2_write_phase_kraken(scales=(48,))
        monkeypatch.setenv("REPRO_PARALLEL", "2")
        parallel = figures.fig2_write_phase_kraken(scales=(48,))
        assert repr(serial.rows) == repr(parallel.rows)
        assert repr(serial.notes) == repr(parallel.notes)

    def test_fig2_same_seed_bit_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        first = figures.fig2_write_phase_kraken(scales=(48,), seed=7)
        second = figures.fig2_write_phase_kraken(scales=(48,), seed=7)
        assert repr(first.rows) == repr(second.rows)

    def test_fig2_seed_changes_output(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        first = figures.fig2_write_phase_kraken(scales=(48,), seed=7)
        second = figures.fig2_write_phase_kraken(scales=(48,), seed=8)
        assert repr(first.rows) != repr(second.rows)

    def test_fig2_cold_warm_serial_parallel_bit_identical(self, monkeypatch,
                                                          tmp_path):
        """The acceptance matrix: cold, warm, serial and parallel runs of
        one figure all produce byte-for-byte the same report."""
        monkeypatch.setenv("REPRO_FAST", "1")
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        cold = figures.fig2_write_phase_kraken(scales=(48,))
        warm = figures.fig2_write_phase_kraken(scales=(48,))
        monkeypatch.setenv("REPRO_PARALLEL", "2")
        warm_parallel = figures.fig2_write_phase_kraken(scales=(48,))
        monkeypatch.setenv("REPRO_CACHE", "0")
        uncached_parallel = figures.fig2_write_phase_kraken(scales=(48,))
        assert repr(cold.rows) == repr(warm.rows) \
            == repr(warm_parallel.rows) == repr(uncached_parallel.rows)
        assert repr(cold.notes) == repr(warm.notes) \
            == repr(warm_parallel.notes) == repr(uncached_parallel.notes)
        store = ResultCache(str(tmp_path / "cache"))
        assert store.totals()["misses"] == 4   # the cold run only
        assert store.totals()["hits"] == 8     # two fully warm runs

    def test_fig2_fast_mode_keys_do_not_collide(self, monkeypatch, tmp_path):
        """REPRO_FAST is read inside the task body, so it must be part of
        the cache key: a fast-mode result must never satisfy a full-mode
        lookup of the same spec."""
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_FAST", "1")
        fast = figures.fig2_write_phase_kraken(scales=(48,))
        monkeypatch.setenv("REPRO_FAST", "0")
        full = figures.fig2_write_phase_kraken(scales=(48,))
        store = ResultCache(str(tmp_path / "cache"))
        assert store.totals()["hits"] == 0  # no cross-mode contamination
        assert store.totals()["misses"] == 8
        # fast mode runs 1 write phase, full mode 2: results must differ.
        assert repr(fast.rows) != repr(full.rows)


class TestSweepProgress:
    """Regression: cache hits and pool results feed one accounting path,
    so progress events are strictly monotonic however tasks resolve."""

    def _run(self, tasks, **kwargs):
        events = []
        results = run_sweep(tasks, progress=events.append, **kwargs)
        return results, events

    def _assert_single_path(self, events, total):
        # one event per finished task, `done` strictly monotonic from 1,
        # and the per-source counters always reconcile with `done`
        assert [e.done for e in events] == list(range(1, total + 1))
        for e in events:
            assert e.hits + e.computed == e.done
            assert e.total == total
            assert e.source in ("cache", "pool", "serial")
        assert sorted(e.index for e in events) == list(range(total))

    def test_progress_serial_no_cache(self):
        tasks = [SweepTask(_square, (i,)) for i in range(5)]
        results, events = self._run(tasks, parallel=1, cache=False)
        assert results == [i * i for i in range(5)]
        self._assert_single_path(events, 5)
        assert all(e.source == "serial" for e in events)
        assert events[-1].hits == 0 and events[-1].computed == 5

    def test_progress_parallel_no_cache(self):
        tasks = [SweepTask(_square, (i,)) for i in range(6)]
        results, events = self._run(tasks, parallel=2, cache=False)
        assert results == [i * i for i in range(6)]
        self._assert_single_path(events, 6)
        assert all(e.source == "pool" for e in events)

    def test_progress_mixed_hits_and_misses(self, tmp_path):
        cache = ResultCache(str(tmp_path / "store"))
        warm = [SweepTask(_square, (i,), label=f"t{i}") for i in range(3)]
        self._run(warm, parallel=1, cache=cache)
        # 3 cached + 3 cold tasks: hits emit during partition, misses
        # stream from the pool — both through the same counter
        mixed = [SweepTask(_square, (i,), label=f"t{i}") for i in range(6)]
        results, events = self._run(mixed, parallel=2, cache=cache)
        assert results == [i * i for i in range(6)]
        self._assert_single_path(events, 6)
        assert events[-1].hits == 3 and events[-1].computed == 3
        # the three hits are emitted first (admission-time short-circuit)
        assert [e.source for e in events[:3]] == ["cache"] * 3
        assert {e.source for e in events[3:]} == {"pool"}
        assert [e.label for e in events[:3]] == ["t0", "t1", "t2"]

    def test_progress_all_hits_never_touches_pool(self, tmp_path):
        cache = ResultCache(str(tmp_path / "store"))
        tasks = [SweepTask(_square, (i,)) for i in range(4)]
        self._run(tasks, parallel=1, cache=cache)
        results, events = self._run(
            [SweepTask(_square, (i,)) for i in range(4)],
            parallel=4, cache=cache)
        assert results == [i * i for i in range(4)]
        self._assert_single_path(events, 4)
        assert all(e.source == "cache" for e in events)

    def test_progress_counts_uncacheable_bypasses(self, tmp_path):
        cache = ResultCache(str(tmp_path / "store"))
        # an uncacheable argument (a set) cannot key the store: it must
        # still be counted exactly once, as computed work
        tasks = [SweepTask(_type_name, ({1, 2},)),
                 SweepTask(_square, (3,))]
        results, events = self._run(tasks, parallel=1, cache=cache)
        assert results == ["set", 9]
        self._assert_single_path(events, 2)
        assert events[-1].computed == 2
        assert cache.stats.bypasses == 1
