"""Tests for the process-parallel sweep executor and driver determinism."""

import os

import pytest

from repro.experiments import figures
from repro.experiments.executor import (
    SweepTask,
    default_parallelism,
    run_sweep,
)


def _square(x):
    return x * x


def _pid_and_value(x):
    return (os.getpid(), x)


class TestDefaultParallelism:
    def test_unset_means_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        assert default_parallelism() == 1

    def test_env_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "4")
        assert default_parallelism() == 4

    def test_garbage_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "lots")
        assert default_parallelism() == 1

    def test_nonpositive_clamped(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "-3")
        assert default_parallelism() == 1


class TestSweepTask:
    def test_lambda_rejected(self):
        with pytest.raises(TypeError):
            SweepTask(lambda: 1)

    def test_nested_function_rejected(self):
        def local():
            return 1

        with pytest.raises(TypeError):
            SweepTask(local)

    def test_run(self):
        assert SweepTask(_square, (3,)).run() == 9


class TestRunSweep:
    def test_serial_preserves_order(self):
        tasks = [SweepTask(_square, (i,)) for i in range(10)]
        assert run_sweep(tasks, parallel=1) == [i * i for i in range(10)]

    def test_parallel_preserves_order(self):
        tasks = [SweepTask(_square, (i,)) for i in range(10)]
        assert run_sweep(tasks, parallel=3) == [i * i for i in range(10)]

    def test_parallel_uses_worker_processes(self):
        tasks = [SweepTask(_pid_and_value, (i,)) for i in range(4)]
        results = run_sweep(tasks, parallel=2)
        assert [value for _pid, value in results] == [0, 1, 2, 3]
        assert all(pid != os.getpid() for pid, _value in results)

    def test_empty_sweep(self):
        assert run_sweep([]) == []

    def test_env_default_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "2")
        tasks = [SweepTask(_pid_and_value, (i,)) for i in range(2)]
        results = run_sweep(tasks)
        assert all(pid != os.getpid() for pid, _value in results)


class TestDriverDeterminism:
    """Same seed ⇒ bit-identical figure output, serial vs parallel."""

    def test_fig2_serial_vs_parallel(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        serial = figures.fig2_write_phase_kraken(scales=(48,))
        monkeypatch.setenv("REPRO_PARALLEL", "2")
        parallel = figures.fig2_write_phase_kraken(scales=(48,))
        assert repr(serial.rows) == repr(parallel.rows)
        assert repr(serial.notes) == repr(parallel.notes)

    def test_fig2_same_seed_bit_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        first = figures.fig2_write_phase_kraken(scales=(48,), seed=7)
        second = figures.fig2_write_phase_kraken(scales=(48,), seed=7)
        assert repr(first.rows) == repr(second.rows)

    def test_fig2_seed_changes_output(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        first = figures.fig2_write_phase_kraken(scales=(48,), seed=7)
        second = figures.fig2_write_phase_kraken(scales=(48,), seed=8)
        assert repr(first.rows) != repr(second.rows)
