"""End-to-end service tests over the real wire path.

Every test here boots an in-process
:class:`~repro.service.testing.ServiceFixture` (real asyncio server on
an ephemeral port, real process pool) and drives it through the real
:class:`~repro.service.client.ServiceClient` — the same code path
``servectl`` uses. Stub runners keep the suite fast; the one test that
exercises the full simulation engine end-to-end is marked ``slow``.
"""

import os

import pytest

from repro.cache import ResultCache
from repro.service.errors import (
    JobNotFinishedError,
    QuotaExceededError,
    RateLimitedError,
    ServiceDrainingError,
    UnknownJobError,
    WorkerCrashedError,
)
from repro.service.quotas import QuotaManager, TenantPolicy
from repro.service.testing import (
    FakeClock,
    ServiceFixture,
    echo_runner,
    make_spec,
    slow_runner,
)


def _specs(n, **kw):
    return [make_spec(seed=i, **kw) for i in range(n)]


# --------------------------------------------------------------------- #
# submission, progress, results
# --------------------------------------------------------------------- #
def test_submit_wait_fetch_round_trip():
    with ServiceFixture(runner=echo_runner) as fx:
        client = fx.client(tenant="alice")
        snap = client.submit(_specs(3), label="roundtrip")
        assert snap["state"] in ("queued", "running")
        final = client.wait(snap["job_id"], timeout=60)
        assert final["state"] == "done"
        assert final["progress"]["done"] == 3
        doc = client.result(snap["job_id"])
        assert [r["seed"] for r in doc["results"]] == [0, 1, 2]
        assert doc["counters"]["recomputes"] == pytest.approx(3.0)
        assert client.jobs(tenant="alice")[0]["job_id"] == snap["job_id"]


def test_progress_events_are_monotonic_and_complete():
    with ServiceFixture(runner=echo_runner) as fx:
        client = fx.client()
        snap = client.submit(_specs(4))
        client.wait(snap["job_id"], timeout=60)
        events = client.events(snap["job_id"])["events"]
        assert [e["seq"] for e in events] == list(range(len(events)))
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "queued" and kinds[-1] == "done"
        progress = [e for e in events if e["kind"] == "progress"]
        assert [e["done"] for e in progress] == [1, 2, 3, 4]
        for e in progress:
            assert e["cache_hits"] + e["computed"] == e["done"]
        # incremental reads resume exactly where they left off
        tail = client.events(snap["job_id"], after=events[-2]["seq"])
        assert [e["seq"] for e in tail["events"]] == [events[-1]["seq"]]


def test_result_before_terminal_is_typed_409():
    with ServiceFixture(runner=slow_runner, workers=1) as fx:
        client = fx.client()
        snap = client.submit([make_spec(seed=1, ncores=80)])
        with pytest.raises(JobNotFinishedError):
            client.result(snap["job_id"])
        with pytest.raises(UnknownJobError):
            client.status("job-999999")
        client.cancel(snap["job_id"])


def test_invalid_spec_rejected_at_admission():
    with ServiceFixture(runner=echo_runner) as fx:
        client = fx.client()
        from repro.service.errors import InvalidSpecError
        with pytest.raises(InvalidSpecError):
            client.submit([{"preset": "nope", "ncores": 8,
                            "strategy": {"kind": "damaris"}}])
        assert client.jobs() == []  # nothing was enqueued


# --------------------------------------------------------------------- #
# concurrent tenants, cache-aware admission, dedup
# --------------------------------------------------------------------- #
def test_second_tenant_sweep_is_cache_hits(tmp_path):
    cache = ResultCache(str(tmp_path / "store"))
    with ServiceFixture(runner=echo_runner, cache=cache) as fx:
        alice, bob = fx.client(tenant="alice"), fx.client(tenant="bob")
        first = alice.submit(_specs(4), label="cold")
        alice.wait(first["job_id"], timeout=60)
        # bob resubmits the identical sweep: served from the store,
        # nothing reaches the pool
        second = bob.submit(_specs(4), label="warm")
        final = bob.wait(second["job_id"], timeout=60)
        progress = final["progress"]
        assert progress["cache_hits"] >= progress["total"] * 0.5
        assert progress["cache_hits"] == 4 and progress["computed"] == 0
        doc = bob.result(second["job_id"])
        assert doc["sources"] == ["cache"] * 4
        # both tenants' results agree spec-for-spec
        assert doc["results"] == alice.result(first["job_id"])["results"]


def test_concurrent_overlapping_sweeps_dedup_in_flight(tmp_path):
    cache = ResultCache(str(tmp_path / "store"))
    # slow_runner + ncores=100 -> each spec takes ~1s, so bob's
    # identical submission lands while alice's specs are still being
    # computed: the in-flight map must collapse them.
    with ServiceFixture(runner=slow_runner, cache=cache, workers=2,
                        job_slots=4) as fx:
        alice, bob = fx.client(tenant="alice"), fx.client(tenant="bob")
        specs = _specs(2, ncores=60)
        first = alice.submit(specs)
        fx.wait_until(
            lambda: alice.status(first["job_id"])["state"] == "running")
        second = bob.submit(specs)
        a_final = alice.wait(first["job_id"], timeout=60)
        b_final = bob.wait(second["job_id"], timeout=60)
        assert a_final["state"] == b_final["state"] == "done"
        total_pool = (a_final["progress"]["computed"]
                      + b_final["progress"]["computed"])
        assert total_pool == 2  # each distinct spec computed exactly once
        assert b_final["progress"]["cache_hits"] >= 1
        metrics = alice.metrics()
        assert 'repro_specs_total{source="pool"} 2' in metrics


# --------------------------------------------------------------------- #
# quotas and rate limiting
# --------------------------------------------------------------------- #
def test_quota_exhaustion_is_typed_and_recovers():
    quotas = QuotaManager(TenantPolicy(max_active_jobs=1, rate=0))
    with ServiceFixture(runner=slow_runner, workers=1,
                        quotas=quotas) as fx:
        client = fx.client(tenant="alice")
        first = client.submit([make_spec(seed=1, ncores=60)])
        with pytest.raises(QuotaExceededError) as info:
            client.submit([make_spec(seed=2)])
        assert info.value.details["limit"] == "max_active_jobs"
        # an unrelated tenant is not affected
        other = fx.client(tenant="bob").submit([make_spec(seed=3)])
        fx.client(tenant="bob").wait(other["job_id"], timeout=60)
        client.wait(first["job_id"], timeout=60)
        # the slot frees once the job is terminal
        second = client.submit([make_spec(seed=4)])
        client.wait(second["job_id"], timeout=60)


def test_rate_limit_recovery_with_fake_clock():
    clock = FakeClock()
    quotas = QuotaManager(
        TenantPolicy(max_active_jobs=0, rate=1.0, burst=3.0),
        clock=clock)
    with ServiceFixture(runner=echo_runner, quotas=quotas,
                        clock=clock) as fx:
        client = fx.client(tenant="alice")
        burst = client.submit(_specs(3))  # spends the whole burst
        client.wait(burst["job_id"], timeout=60)
        with pytest.raises(RateLimitedError) as info:
            client.submit(_specs(2))
        assert info.value.retry_after == pytest.approx(2.0)
        # no wall-clock sleeping: advancing the injected clock is the
        # recovery
        clock.advance(info.value.retry_after)
        ok = client.submit(_specs(2))
        client.wait(ok["job_id"], timeout=60)
        assert "repro_rejections_total" in client.metrics()


# --------------------------------------------------------------------- #
# cancellation
# --------------------------------------------------------------------- #
def test_cancel_running_job():
    with ServiceFixture(runner=slow_runner, workers=1) as fx:
        client = fx.client(tenant="alice")
        snap = client.submit([make_spec(seed=i, ncores=80)
                              for i in range(3)])
        fx.wait_until(
            lambda: client.status(snap["job_id"])["state"] == "running")
        cancelled = client.cancel(snap["job_id"])
        assert cancelled["state"] == "cancelled"
        doc = client.result(snap["job_id"])  # terminal: served, no 409
        assert doc["state"] == "cancelled"
        # the quota slot is released; the pool still serves new work
        after = client.submit([make_spec(seed=9)])
        assert client.wait(after["job_id"], timeout=60)["state"] == "done"


def test_cancel_queued_job_never_runs():
    with ServiceFixture(runner=slow_runner, workers=1,
                        job_slots=1) as fx:
        client = fx.client()
        running = client.submit([make_spec(seed=1, ncores=80)])
        queued = client.submit([make_spec(seed=2, ncores=80)])
        cancelled = client.cancel(queued["job_id"])
        assert cancelled["state"] == "cancelled"
        assert cancelled["started_at"] is None
        final = client.wait(running["job_id"], timeout=60)
        assert final["state"] == "done"
        kinds = [e["kind"] for e in client.events(queued["job_id"])["events"]]
        assert "started" not in kinds


# --------------------------------------------------------------------- #
# drain / shutdown
# --------------------------------------------------------------------- #
def test_drain_finishes_in_flight_and_rejects_new():
    with ServiceFixture(runner=slow_runner, workers=2,
                        job_slots=1) as fx:
        client = fx.client(tenant="alice")
        running = client.submit([make_spec(seed=1, ncores=60)])
        queued = client.submit([make_spec(seed=2, ncores=30)])
        fx.wait_until(
            lambda: client.status(running["job_id"])["state"] == "running")
        assert client.drain()["state"] == "draining"
        assert client.health()["state"] == "draining"
        with pytest.raises(ServiceDrainingError):
            client.submit([make_spec(seed=3)])
        # both the running and the already-queued job still complete
        assert client.wait(running["job_id"], timeout=60)["state"] == "done"
        assert client.wait(queued["job_id"], timeout=60)["state"] == "done"
        pids = fx.pool_pids()
    # after fixture teardown no pool worker survives
    for pid in pids:
        with pytest.raises(OSError):
            os.kill(pid, 0)


def test_stop_with_jobs_in_flight_leaves_no_orphans():
    fx = ServiceFixture(runner=slow_runner, workers=2)
    fx.start()
    try:
        client = fx.client()
        snaps = [client.submit([make_spec(seed=i, ncores=60)])
                 for i in range(2)]
        fx.wait_until(lambda: fx.pool_pids())
        pids = fx.pool_pids()
    finally:
        fx.stop()  # drain + join while jobs are mid-queue
    assert not fx._thread.is_alive()
    for pid in pids:
        with pytest.raises(OSError):
            os.kill(pid, 0)
    # the in-flight jobs were completed, not abandoned
    for snap in snaps:
        job = fx.service.jobs[snap["job_id"]]
        assert job.state == "done"


# --------------------------------------------------------------------- #
# fault injection: a pool worker dies mid-job
# --------------------------------------------------------------------- #
def test_worker_kill_fails_job_typed_and_server_survives():
    with ServiceFixture(runner=slow_runner, workers=1) as fx:
        client = fx.client(tenant="alice")
        snap = client.submit([make_spec(seed=1, ncores=400)])
        fx.wait_until(
            lambda: fx.pool_pids()
            and client.status(snap["job_id"])["state"] == "running")
        fx.kill_worker()
        final = client.wait(snap["job_id"], timeout=60)
        assert final["state"] == "failed"
        assert final["error"]["kind"] == "worker_crashed"
        with pytest.raises(WorkerCrashedError):
            client.result(snap["job_id"])
        # the server replaced the pool and keeps serving
        assert client.health()["state"] == "ok"
        retry = client.submit([make_spec(seed=2, ncores=5)])
        assert client.wait(retry["job_id"], timeout=60)["state"] == "done"
        assert "repro_worker_crashes_total 1" in client.metrics()


# --------------------------------------------------------------------- #
# metrics endpoint
# --------------------------------------------------------------------- #
def test_metrics_page_exposes_required_series(tmp_path):
    cache = ResultCache(str(tmp_path / "store"))
    with ServiceFixture(runner=echo_runner, cache=cache) as fx:
        client = fx.client(tenant="alice")
        job = client.submit(_specs(2))
        client.wait(job["job_id"], timeout=60)
        again = client.submit(_specs(2))
        client.wait(again["job_id"], timeout=60)
        page = client.metrics()
    assert "# TYPE repro_queue_depth gauge" in page
    assert "repro_queue_depth 0" in page
    assert "# TYPE repro_cache_events_total counter" in page
    assert 'repro_cache_events_total{event="hits"} 2' in page
    assert 'repro_cache_events_total{event="misses"} 2' in page
    assert 'repro_cache_events_total{event="writes"} 2' in page
    assert "repro_cache_hit_ratio 0.5" in page
    assert 'repro_jobs_total{state="done"} 2' in page
    assert 'repro_tenant_specs_submitted{tenant="alice"} 4' in page
    assert 'repro_sim_events_total{counter="recomputes"}' in page


# --------------------------------------------------------------------- #
# the real engine, end to end (slow: full simulations through the pool)
# --------------------------------------------------------------------- #
@pytest.mark.slow
def test_real_engine_end_to_end(tmp_path):
    cache = ResultCache(str(tmp_path / "store"))
    specs = [make_spec(seed=seed, ncores=24, kind=kind)
             for seed, kind in ((1, "damaris"), (2, "fpp"))]
    with ServiceFixture(workers=2, cache=cache) as fx:
        client = fx.client(tenant="alice")
        job = client.submit(specs, label="real")
        final = client.wait(job["job_id"], timeout=300)
        assert final["state"] == "done"
        doc = client.result(job["job_id"])
        for summary in doc["results"]:
            assert summary["run_time"] > 0
            assert summary["ncores"] == 24
        assert doc["results"][0]["strategy"] == "damaris"
        assert doc["counters"]["solver_flows_solved"] > 0
        # a second tenant re-running the sweep is pure cache
        warm = fx.client(tenant="bob").submit(specs)
        warm_final = fx.client(tenant="bob").wait(warm["job_id"],
                                                  timeout=300)
        assert warm_final["progress"]["cache_hits"] == len(specs)
